//! One patient's serving session: a resumable unit of work.
//!
//! The fleet serving layer (`scalo-fleet`) multiplexes many patients
//! over a shared worker pool, so a patient's implant network must be
//! steppable rather than run-to-completion: [`Session`] wraps a
//! [`SeizureApp`] plus an optional movement-intent decode mix into a
//! non-blocking [`Session::step`] that advances exactly one 4 ms window
//! and returns. Every step is wall-clock timed against the session's
//! response-time deadline (the paper's 10 ms seizure target scaled to
//! the 4 ms window cadence), so the serving layer can account deadline
//! misses without ever letting timing feed back into decisions: all
//! protocol outcomes are functions of the seed alone, which is what
//! makes fleet execution reproducible on any worker count.

use crate::apps::movement;
use crate::apps::seizure::{PropagationRun, RunState, SeizureApp, WindowPre, WINDOW_US};
use crate::config::ScaloConfig;
use crate::plan::{PlanConfig, PlanError, ProgramPlan};
use crate::snapshot::{fnv1a, Fnv64, SessionSnapshot, SnapshotError};
use crate::workspace::Workspace;
use scalo_data::ieeg::{generate, IeegConfig, MultiSiteRecording, SeizureEvent};
use scalo_trace::{Recorder, SpanEvent, Stage};
use std::time::Instant;

/// Everything that defines one patient's session: identity, seed,
/// deployment preset, and application mix.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// Fleet-unique session id.
    pub id: u64,
    /// Seed for the recording, detectors, and channel; decisions are a
    /// function of this alone.
    pub seed: u64,
    /// Admission priority: higher survives longer under budget pressure.
    pub priority: u8,
    /// Implants in this patient's deployment.
    pub nodes: usize,
    /// Electrodes per implant.
    pub electrodes: usize,
    /// Recording length in seconds (250 windows per second).
    pub duration_s: f64,
    /// Channel bit-error ratio.
    pub ber: f64,
    /// Whether hash broadcasts use the reliable transport.
    pub use_reliable_transport: bool,
    /// Run a movement-intent decode round every this many windows
    /// (0 = seizure-propagation only).
    pub movement_every: usize,
    /// Per-step wall-clock deadline in µs.
    pub step_deadline_us: u64,
    /// Modeled per-window device wait in µs (0 = none): the time a real
    /// serving step spends blocked on the implant radio before the
    /// window's samples are available. Realised as an actual sleep so
    /// serving-layer concurrency is measurable; it feeds wall-clock
    /// accounting only and never touches decision state.
    pub io_stall_us: u64,
    /// Span-recorder ring capacity in events (0 = tracing disabled, the
    /// default). When nonzero the session's `Workspace` carries an
    /// enabled `scalo-trace` recorder, pre-allocated at admission so
    /// steady-state recording stays allocation-free.
    pub trace_capacity: usize,
    /// The canonical query source this spec was compiled from, if the
    /// session is query-backed ([`SessionSpec::with_query`]). Carried
    /// through snapshots and the WAL so recovery and swap fault-in
    /// restore query-backed sessions as such. Decisions never read it —
    /// the compiled binding already set the fields that matter — so a
    /// query-backed spec digests identically to the equivalent
    /// hand-built one.
    pub query: Option<String>,
}

impl SessionSpec {
    /// A small focal-epilepsy preset: 2 implants × 4 electrodes over a
    /// 0.9 s recording with one propagating seizure.
    pub fn new(id: u64, seed: u64) -> Self {
        Self {
            id,
            seed,
            priority: 1,
            nodes: 2,
            electrodes: 4,
            duration_s: 0.9,
            ber: 0.0,
            use_reliable_transport: false,
            movement_every: 0,
            step_deadline_us: WINDOW_US,
            io_stall_us: 0,
            trace_capacity: 0,
            query: None,
        }
    }

    /// Compiles `source` ([`ProgramPlan::compile`] against this spec's
    /// deployment and seed) and binds the result: movement cadence and
    /// transport from the program, the canonical re-printed source
    /// stored as the spec's query.
    ///
    /// # Errors
    ///
    /// Any [`PlanError`] — the source must compile to a servable
    /// program.
    pub fn with_query(mut self, source: &str) -> Result<Self, PlanError> {
        let cfg = PlanConfig {
            channels: self.electrodes,
            seed: self.seed,
        };
        let plan = ProgramPlan::compile(source, &cfg)?;
        let binding = plan.binding();
        self.movement_every = binding.movement_every;
        self.use_reliable_transport = binding.use_reliable_transport;
        self.query = Some(plan.source().to_string());
        Ok(self)
    }

    /// Sets the admission priority.
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the deployment size.
    pub fn with_deployment(mut self, nodes: usize, electrodes: usize) -> Self {
        assert!(nodes >= 1 && electrodes >= 1, "degenerate deployment");
        self.nodes = nodes;
        self.electrodes = electrodes;
        self
    }

    /// Sets the recording length in seconds.
    pub fn with_duration_s(mut self, duration_s: f64) -> Self {
        assert!(duration_s > 0.0, "empty recording");
        self.duration_s = duration_s;
        self
    }

    /// Sets the channel bit-error ratio.
    pub fn with_ber(mut self, ber: f64) -> Self {
        self.ber = ber;
        self
    }

    /// Adds a movement-intent decode round every `every` windows.
    pub fn with_movement_every(mut self, every: usize) -> Self {
        self.movement_every = every;
        self
    }

    /// Sets the per-step wall-clock deadline.
    pub fn with_step_deadline_us(mut self, us: u64) -> Self {
        self.step_deadline_us = us;
        self
    }

    /// Sets the modeled per-window device wait.
    pub fn with_io_stall_us(mut self, us: u64) -> Self {
        self.io_stall_us = us;
        self
    }

    /// Enables per-window span tracing with a ring of `capacity` events
    /// (0 disables it again).
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// The session's compute cost in electrode-windows per step — the
    /// admission controller's budget unit (a proxy for sim-time per
    /// wall-time: per-step work scales with `nodes × electrodes`, plus
    /// the movement mix's share).
    pub fn cost_estimate(&self) -> f64 {
        let base = (self.nodes * self.electrodes) as f64;
        let mix = if self.movement_every > 0 {
            base / self.movement_every as f64
        } else {
            0.0
        };
        base + mix
    }
}

/// The decision-affecting knobs a reconfiguration can change, plus the
/// query they came from: one epoch of a session's binding timeline.
///
/// Restoration replays a session epoch by epoch — epoch 0's binding
/// from window 0, each later binding from its recorded window — so a
/// snapshot taken *after* a hot reconfiguration still verifies
/// digest-for-digest (see [`Session::restore`]).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryBinding {
    /// Movement-mix cadence in windows (0 = none).
    pub movement_every: usize,
    /// Whether hash broadcasts ride the reliable transport.
    pub use_reliable_transport: bool,
    /// The canonical query source behind this binding, if any.
    pub query: Option<String>,
}

impl QueryBinding {
    /// The binding a spec currently pins down.
    pub fn of(spec: &SessionSpec) -> Self {
        Self {
            movement_every: spec.movement_every,
            use_reliable_transport: spec.use_reliable_transport,
            query: spec.query.clone(),
        }
    }
}

/// Why a hot reconfiguration was refused. The live session is untouched
/// on every variant — cutover is all-or-nothing by construction (the
/// new configuration is built on a restored twin and only swapped in
/// once the twin's replay digest-verified).
#[derive(Debug, Clone, PartialEq)]
pub enum ReconfigureError {
    /// The new spec changes an identity field (id, seed, deployment,
    /// duration, or BER) — that is a new patient, not a new query.
    Identity {
        /// Which field differed.
        field: &'static str,
    },
    /// The caller's expected digest did not match the live session at
    /// the cutover boundary.
    Digest {
        /// What the caller expected.
        expected: u64,
        /// What the live session digested to.
        actual: u64,
    },
    /// The pre-cutover replay failed to reproduce the live session.
    Restore(SnapshotError),
}

impl std::fmt::Display for ReconfigureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Identity { field } => {
                write!(f, "reconfiguration may not change identity field `{field}`")
            }
            Self::Digest { expected, actual } => write!(
                f,
                "cutover digest mismatch: expected {expected:016x}, live session is {actual:016x}"
            ),
            Self::Restore(e) => write!(f, "cutover replay failed: {e}"),
        }
    }
}

impl std::error::Error for ReconfigureError {}

/// What a successful [`Session::reconfigure`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigureOutcome {
    /// The window boundary the new binding took effect at.
    pub window: u64,
    /// Windows the digest-checking replay re-executed.
    pub replayed_windows: u64,
}

/// What one [`Session::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// The window index that was processed.
    pub window: usize,
    /// Wall-clock time the step took, in µs.
    pub wall_us: u64,
    /// Whether the step overran [`SessionSpec::step_deadline_us`].
    pub deadline_missed: bool,
    /// Whether the session has now processed every window.
    pub done: bool,
}

/// Aggregate accounting for a finished (or in-flight) session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// The session id.
    pub id: u64,
    /// Steps executed so far.
    pub steps: u64,
    /// Steps that overran the deadline.
    pub deadline_misses: u64,
    /// Total wall-clock time spent stepping, in µs.
    pub wall_us: u64,
    /// Simulated time covered, in µs.
    pub sim_us: u64,
    /// The propagation outcome so far.
    pub run: PropagationRun,
}

impl SessionReport {
    /// Simulated µs served per wall-clock µs spent — the admission
    /// controller's measured-load signal.
    pub fn sim_per_wall(&self) -> f64 {
        self.sim_us as f64 / self.wall_us.max(1) as f64
    }
}

/// A resumable patient session: seeded recording, trained detectors,
/// and mid-run protocol state, advanced one window per [`Session::step`].
#[derive(Debug)]
pub struct Session {
    spec: SessionSpec,
    app: SeizureApp,
    recording: MultiSiteRecording,
    state: RunState,
    movement: Option<movement::Session>,
    /// Decode-round results, in order: part of the decision digest.
    movement_results: Vec<(usize, f64)>,
    /// The session-lifetime scratch buffers: created at admission, warmed
    /// by the first window, then reused by every subsequent step — the
    /// steady-state window path allocates nothing. Workers carry the
    /// session (workspace included) across quantum switches.
    workspace: Workspace,
    steps: u64,
    deadline_misses: u64,
    wall_us: u64,
    /// The binding the session was admitted with (epoch 0 of the
    /// timeline).
    initial_binding: QueryBinding,
    /// Hot reconfigurations applied so far: `(window, binding)` pairs in
    /// application order. Snapshots carry the whole timeline so restore
    /// can replay it faithfully.
    reconfigures: Vec<(u64, QueryBinding)>,
}

impl Session {
    /// Builds the session: generates the recording, trains per-node
    /// detectors, and prepares the resumable run. This is the expensive
    /// part; admission control runs *before* it.
    pub fn new(spec: SessionSpec) -> Self {
        let recording = patient_recording(&spec, spec.seed);
        let mut app = SeizureApp::new(
            ScaloConfig::default()
                .with_nodes(spec.nodes)
                .with_electrodes(spec.electrodes)
                .with_ber(spec.ber)
                .with_seed(spec.seed),
        );
        app.train_detectors(&patient_recording(&spec, spec.seed ^ 1));
        app.use_reliable_transport = spec.use_reliable_transport;
        let state = app.begin(&recording);
        let movement =
            (spec.movement_every > 0).then(|| movement::generate_session(24, 8, spec.seed ^ 0x33));
        let mut workspace = Workspace::new();
        if spec.trace_capacity > 0 {
            // The ring is allocated here, at admission, so enabling the
            // recorder adds nothing to the steady-state window path.
            workspace.trace = Recorder::with_capacity(spec.trace_capacity, spec.electrodes);
        }
        let initial_binding = QueryBinding::of(&spec);
        Self {
            spec,
            app,
            recording,
            state,
            movement,
            movement_results: Vec::new(),
            workspace,
            steps: 0,
            deadline_misses: 0,
            wall_us: 0,
            initial_binding,
            reconfigures: Vec::new(),
        }
    }

    /// The session's spec.
    pub fn spec(&self) -> &SessionSpec {
        &self.spec
    }

    /// The session's synthetic recording — the cohort engine reads it to
    /// gather this member's lanes into the fused block.
    pub(crate) fn recording(&self) -> &MultiSiteRecording {
        &self.recording
    }

    /// The application harness (the cohort engine borrows a member's
    /// hasher; all members' hashers are identical by construction).
    pub(crate) fn app(&self) -> &SeizureApp {
        &self.app
    }

    /// Fleet-unique id.
    pub fn id(&self) -> u64 {
        self.spec.id
    }

    /// Admission priority.
    pub fn priority(&self) -> u8 {
        self.spec.priority
    }

    /// Whether every window has been processed.
    pub fn is_done(&self) -> bool {
        self.state.is_done()
    }

    /// The next window to be stepped (also the boundary a hot
    /// reconfiguration would cut over at).
    pub fn window(&self) -> u64 {
        self.state.window() as u64
    }

    /// Hot reconfigurations applied so far: `(window, binding)` pairs.
    pub fn reconfigure_log(&self) -> &[(u64, QueryBinding)] {
        &self.reconfigures
    }

    /// Applies a binding's decision-affecting knobs in place. The
    /// movement engine is created or dropped to match — created from
    /// the same seed derivation as admission, so a replayed transition
    /// reproduces the live one exactly.
    fn apply_binding(&mut self, binding: &QueryBinding) {
        self.spec.movement_every = binding.movement_every;
        self.spec.use_reliable_transport = binding.use_reliable_transport;
        self.spec.query = binding.query.clone();
        self.app.use_reliable_transport = binding.use_reliable_transport;
        if binding.movement_every > 0 {
            if self.movement.is_none() {
                self.movement = Some(movement::generate_session(24, 8, self.spec.seed ^ 0x33));
            }
        } else {
            self.movement = None;
        }
    }

    /// Hot-reconfigures the session to `new_spec` at the current window
    /// boundary, with digest-checked cutover and rollback on mismatch.
    ///
    /// Identity fields (id, seed, deployment, duration, BER) are
    /// immutable — changing the application means changing the query
    /// binding (movement cadence, transport) and forward-only serving
    /// knobs (priority, deadline, stall, trace capacity).
    ///
    /// Cutover builds the reconfigured session as a *twin*: snapshot
    /// the live session, restore the twin through the full binding
    /// timeline (which digest-verifies the replay), apply the new
    /// binding, and only then swap it in. The live session is untouched
    /// on any error — a failed cutover *is* the rollback. The replay
    /// makes cutover cost proportional to the session's age; the fleet
    /// reports that latency per reconfiguration.
    ///
    /// `expected_step_digest` optionally pins the live session's
    /// [`Self::step_digest`] at the boundary; a mismatch aborts before
    /// any work (the forced-mismatch rollback path).
    ///
    /// # Errors
    ///
    /// [`ReconfigureError`] — identity change, digest mismatch, or a
    /// replay that failed to reproduce the live session.
    pub fn reconfigure(
        &mut self,
        new_spec: SessionSpec,
        expected_step_digest: Option<u64>,
    ) -> Result<ReconfigureOutcome, ReconfigureError> {
        let identity: [(&'static str, bool); 6] = [
            ("id", new_spec.id == self.spec.id),
            ("seed", new_spec.seed == self.spec.seed),
            ("nodes", new_spec.nodes == self.spec.nodes),
            ("electrodes", new_spec.electrodes == self.spec.electrodes),
            ("duration_s", new_spec.duration_s == self.spec.duration_s),
            ("ber", new_spec.ber == self.spec.ber),
        ];
        for (field, same) in identity {
            if !same {
                return Err(ReconfigureError::Identity { field });
            }
        }
        if let Some(expected) = expected_step_digest {
            let actual = self.step_digest();
            if expected != actual {
                return Err(ReconfigureError::Digest { expected, actual });
            }
        }
        let snap = self.snapshot();
        let mut twin = Self::restore(&snap).map_err(ReconfigureError::Restore)?;
        let window = snap.window;
        twin.apply_binding(&QueryBinding::of(&new_spec));
        twin.reconfigures
            .push((window, QueryBinding::of(&new_spec)));
        // Forward-only serving knobs follow the new spec immediately;
        // none of them feed decisions.
        twin.spec.priority = new_spec.priority;
        twin.spec.step_deadline_us = new_spec.step_deadline_us;
        twin.spec.io_stall_us = new_spec.io_stall_us;
        if new_spec.trace_capacity != twin.spec.trace_capacity {
            twin.set_trace_capacity(new_spec.trace_capacity);
        }
        *self = twin;
        Ok(ReconfigureOutcome {
            window,
            replayed_windows: window,
        })
    }

    /// Total windows in this session's recording.
    pub fn windows_total(&self) -> usize {
        self.state.windows_total()
    }

    /// Advances the session by exactly one window (plus the movement
    /// mix when due) and accounts the step against the deadline. The
    /// call does a bounded slice of work and returns; wall-clock timing
    /// feeds metrics only, never decisions.
    pub fn step(&mut self) -> StepOutcome {
        self.step_inner(None)
    }

    /// [`Self::step`] as one member of a cohort ([`crate::cohort`]): the
    /// fused kernel results in `pre` replace this session's own Sketch
    /// and feature-extraction work, and the modeled radio stall — served
    /// once for the whole cohort before any member stepped — is recorded
    /// here as an externally timed [`Stage::RadioWait`] span
    /// (`stall_ns`, 0 when the spec has no stall) rather than slept
    /// again. Decisions are bit-identical to [`Self::step`]; wall-clock
    /// accounting covers only this member's own compute, so per-step
    /// deadlines measure work, not the shared wait.
    pub(crate) fn step_with_pre(&mut self, pre: &WindowPre<'_>, stall_ns: u64) -> StepOutcome {
        self.step_inner(Some((pre, stall_ns)))
    }

    fn step_inner(&mut self, pre: Option<(&WindowPre<'_>, u64)>) -> StepOutcome {
        let window = self.state.window();
        if self.state.is_done() {
            return StepOutcome {
                window,
                wall_us: 0,
                deadline_missed: false,
                done: true,
            };
        }
        let t0 = Instant::now();
        self.workspace.trace.set_window(window as u32);
        self.workspace.trace.begin(Stage::Window);
        match pre {
            None => {
                if self.spec.io_stall_us > 0 {
                    self.workspace.trace.begin(Stage::RadioWait);
                    std::thread::sleep(std::time::Duration::from_micros(self.spec.io_stall_us));
                    self.workspace.trace.end(Stage::RadioWait);
                }
            }
            Some((_, stall_ns)) => {
                if stall_ns > 0 {
                    self.workspace
                        .trace
                        .record_external(Stage::RadioWait, stall_ns);
                }
            }
        }
        let more = match pre {
            Some((p, _)) => {
                self.app
                    .step_window_pre(&self.recording, &mut self.state, &mut self.workspace, p)
            }
            None => self
                .app
                .step_window(&self.recording, &mut self.state, &mut self.workspace),
        };
        if let Some(ms) = &self.movement {
            let every = self.spec.movement_every;
            if every > 0 && self.state.window().is_multiple_of(every) {
                // Rotate through the three decode pipelines of §2.2 so
                // the mix exercises SVM, KF, and NN compute shapes.
                let round = self.movement_results.len();
                let tr = &mut self.workspace.trace;
                let value = match round % 3 {
                    0 => {
                        tr.begin(Stage::Svm);
                        let v = movement::svm_accuracy(ms, 2);
                        tr.end(Stage::Svm);
                        v
                    }
                    1 => {
                        tr.begin(Stage::Kalman);
                        // A singular fit is a function of the seeded
                        // features alone, so the sentinel is just as
                        // deterministic as a real decode — every
                        // replica and every replay lands on the same
                        // value, and digests cannot fork on it.
                        let v = movement::kalman_velocity_error(ms).unwrap_or(f64::MAX);
                        tr.end(Stage::Kalman);
                        v
                    }
                    _ => {
                        tr.begin(Stage::Nn);
                        let v = movement::nn_decomposition_error(ms, 2);
                        tr.end(Stage::Nn);
                        v
                    }
                };
                self.movement_results.push((round, value));
            }
        }
        self.workspace.trace.end(Stage::Window);
        let wall_us = t0.elapsed().as_micros() as u64;
        let deadline_missed = wall_us > self.spec.step_deadline_us;
        self.steps += 1;
        self.wall_us += wall_us;
        self.deadline_misses += u64::from(deadline_missed);
        StepOutcome {
            window,
            wall_us,
            deadline_missed,
            done: !more,
        }
    }

    /// The session's span recorder (disabled unless the spec set a
    /// [`SessionSpec::trace_capacity`]).
    pub fn trace(&self) -> &Recorder {
        &self.workspace.trace
    }

    /// Marks the session as picked up by a fleet worker: closes any
    /// pending run-queue gap as a [`Stage::Queue`] span stamped with the
    /// next window to be stepped. Called by the serving layer at the
    /// start of a scheduling quantum.
    pub fn note_scheduled(&mut self) {
        let next = self.state.window() as u32;
        self.workspace.trace.set_window(next);
        self.workspace.trace.mark_scheduled();
    }

    /// Marks the session as parked back on the fleet run queue. Called
    /// by the serving layer when a quantum yields with work remaining.
    pub fn note_yielded(&mut self) {
        self.workspace.trace.mark_queued();
    }

    /// Records an externally timed fault-in as a [`Stage::SwapIn`] span
    /// stamped with the next window to be stepped. The swap manager
    /// calls this right after [`Self::restore`] — the restore that
    /// rebuilt this session (and with it the recorder) *is* the
    /// operation being timed, so the span duration comes from outside.
    /// No-op when untraced.
    pub fn note_swapped_in(&mut self, dur_ns: u64) {
        let next = self.state.window() as u32;
        self.workspace.trace.set_window(next);
        self.workspace.trace.record_external(Stage::SwapIn, dur_ns);
    }

    /// Records an externally timed eviction as a [`Stage::SwapOut`]
    /// span stamped with the next (unserved) window. The swap manager
    /// calls this right before draining the trace and dropping the
    /// session — the snapshot encode and NVM program being timed happen
    /// outside any `step`. No-op when untraced.
    pub fn note_swapped_out(&mut self, dur_ns: u64) {
        let next = self.state.window() as u32;
        self.workspace.trace.set_window(next);
        self.workspace.trace.record_external(Stage::SwapOut, dur_ns);
    }

    /// Records an externally timed hot reconfiguration as a
    /// [`Stage::Reconfigure`] span stamped with the cutover window. The
    /// serving layer calls this right after [`Self::reconfigure`] — the
    /// snapshot/replay/swap being timed rebuilt this session (and with
    /// it the recorder), so the duration comes from outside. No-op when
    /// untraced.
    pub fn note_reconfigured(&mut self, dur_ns: u64) {
        let next = self.state.window() as u32;
        self.workspace.trace.set_window(next);
        self.workspace
            .trace
            .record_external(Stage::Reconfigure, dur_ns);
    }

    /// Drains the recorded spans (oldest first), leaving the recorder
    /// enabled with an empty ring. Used by the serving layer to export
    /// traces after a session finishes.
    pub fn take_trace_events(&mut self) -> Vec<SpanEvent> {
        let events = self.workspace.trace.events();
        self.workspace.trace.clear();
        events
    }

    /// Aggregate accounting so far.
    pub fn report(&self) -> SessionReport {
        SessionReport {
            id: self.spec.id,
            steps: self.steps,
            deadline_misses: self.deadline_misses,
            wall_us: self.wall_us,
            sim_us: self.app.system().now_us(),
            run: SeizureApp::snapshot(&self.state),
        }
    }

    /// A cheap, allocation-free fingerprint of every decision made so
    /// far: the run-state scalars, medium statistics, membership and
    /// scheduling history lengths, movement results, and the simulation
    /// clock, folded through FNV-1a. The write-ahead log records one of
    /// these per window, so recovery can verify deterministic replay
    /// window-by-window without formatting the full
    /// [`Self::decision_digest`] string on the hot path. Wall-clock
    /// values are excluded, exactly as in the full digest.
    pub fn step_digest(&self) -> u64 {
        let mut h = Fnv64::new();
        self.state.fold_digest(&mut h);
        let sys = self.app.system();
        let stats = sys.stats();
        h.write_u64(stats.transmissions as u64);
        h.write_u64(stats.corrupted as u64);
        h.write_u64(stats.dropped as u64);
        h.write_u64(stats.retransmissions as u64);
        h.write_u64(stats.duplicates as u64);
        h.write_u64(stats.acks_lost as u64);
        h.write_u64(stats.heartbeats as u64);
        h.write_u64(sys.membership_log().len() as u64);
        h.write_u64(sys.schedule_decisions().len() as u64);
        h.write_u64(sys.now_us());
        h.write_u64(self.movement_results.len() as u64);
        for &(round, value) in &self.movement_results {
            h.write_u64(round as u64);
            h.write_f64(value);
        }
        h.finish()
    }

    /// Captures a serializable image of the session at the current
    /// window boundary: spec, cursors, RNG position, movement results,
    /// and the digest cursor. Pair with [`Self::restore`].
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            spec: self.spec.clone(),
            window: self.state.window() as u64,
            steps: self.steps,
            deadline_misses: self.deadline_misses,
            wall_us: self.wall_us,
            rng_word_pos: self.app.rng_word_pos(),
            movement_results: self
                .movement_results
                .iter()
                .map(|&(r, v)| (r as u64, v))
                .collect(),
            step_digest: self.step_digest(),
            decisions_fnv: fnv1a(self.decision_digest().as_bytes()),
            initial_binding: self.initial_binding.clone(),
            reconfigures: self.reconfigures.clone(),
        }
    }

    /// Reconstructs a session at `snap`'s window cursor.
    ///
    /// Sessions are pure functions of their seed, so restoration is
    /// deterministic re-execution: rebuild from the spec (recording
    /// regenerated, detectors retrained) and fast-forward window by
    /// window to the cursor — with the modeled radio stall suppressed,
    /// so recovery runs at compute speed rather than simulated-radio
    /// speed. The snapshot's digest cursor and RNG position are then
    /// verified byte-for-byte; any divergence (a corrupted image that
    /// beat the checksum, or code whose decisions drifted from the
    /// logged run) is an error, never a silently different session.
    /// Wall-clock accounting (steps, misses, stepping time) is carried
    /// over from the snapshot, not from the fast-forward.
    ///
    /// Sessions that were hot-reconfigured replay their whole binding
    /// timeline: the rebuild starts from the *initial* binding, each
    /// recorded reconfiguration is re-applied at its window, and only
    /// then does the fast-forward reach the cursor — so a snapshot
    /// taken after any number of reconfigurations still verifies.
    pub fn restore(snap: &SessionSnapshot) -> Result<Self, SnapshotError> {
        let mut base = snap.spec.clone();
        base.movement_every = snap.initial_binding.movement_every;
        base.use_reliable_transport = snap.initial_binding.use_reliable_transport;
        base.query = snap.initial_binding.query.clone();
        let mut session = Self::new(base);
        session.spec.io_stall_us = 0;
        for (window, binding) in &snap.reconfigures {
            while (session.state.window() as u64) < *window && !session.state.is_done() {
                session.step();
            }
            session.apply_binding(binding);
            session.reconfigures.push((*window, binding.clone()));
        }
        while (session.state.window() as u64) < snap.window && !session.state.is_done() {
            session.step();
        }
        session.spec = snap.spec.clone();
        session.app.use_reliable_transport = snap.spec.use_reliable_transport;
        // Fast-forward spans are re-execution artifacts, not serving
        // history: drop them so post-recovery traces start clean.
        session.workspace.trace.clear();
        let replayed = session.step_digest();
        if replayed != snap.step_digest {
            return Err(SnapshotError::DigestMismatch {
                session: snap.spec.id,
                window: snap.window,
                stored: snap.step_digest,
                replayed,
            });
        }
        let decisions = fnv1a(session.decision_digest().as_bytes());
        if decisions != snap.decisions_fnv {
            return Err(SnapshotError::DigestMismatch {
                session: snap.spec.id,
                window: snap.window,
                stored: snap.decisions_fnv,
                replayed: decisions,
            });
        }
        if session.app.rng_word_pos() != snap.rng_word_pos {
            return Err(SnapshotError::DigestMismatch {
                session: snap.spec.id,
                window: snap.window,
                stored: snap.rng_word_pos,
                replayed: session.app.rng_word_pos(),
            });
        }
        session.steps = snap.steps;
        session.deadline_misses = snap.deadline_misses;
        session.wall_us = snap.wall_us;
        session.movement_results = snap
            .movement_results
            .iter()
            .map(|&(r, v)| (r as usize, v))
            .collect();
        Ok(session)
    }

    /// Re-arms (or disables, with 0) the span recorder with a ring of
    /// `capacity` events. Used by time-travel replay to trace sessions
    /// whose original serving run was untraced.
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.spec.trace_capacity = capacity;
        self.workspace.trace = if capacity > 0 {
            Recorder::with_capacity(capacity, self.spec.electrodes)
        } else {
            Recorder::disabled()
        };
    }

    /// A deterministic byte-for-byte digest of every decision the
    /// session made: propagation outcome, medium statistics, membership
    /// and scheduling history, and movement decode results. Two runs of
    /// the same spec must produce identical digests regardless of which
    /// worker (or how many workers) stepped them — wall-clock values are
    /// deliberately excluded.
    pub fn decision_digest(&self) -> String {
        let sys = self.app.system();
        format!(
            "run={:?} stats={:?} members={:?} sched={:?} movement={:?} sim_us={}",
            SeizureApp::snapshot(&self.state),
            sys.stats(),
            sys.membership_log(),
            sys.schedule_decisions(),
            self.movement_results,
            sys.now_us(),
        )
    }
}

/// The session's synthetic recording: one seizure propagating across
/// every implant, seeded per patient.
fn patient_recording(spec: &SessionSpec, seed: u64) -> MultiSiteRecording {
    generate(&IeegConfig {
        nodes: spec.nodes,
        electrodes_per_node: spec.electrodes,
        duration_s: spec.duration_s,
        seizures: vec![SeizureEvent::uniform(0.25, 0.6, 0, spec.nodes, 0.0)],
        seed,
        ..Default::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The fleet moves sessions between worker threads, so the whole
    /// stack must be (and stay) `Send`.
    #[test]
    fn scalo_and_session_are_send() {
        fn is_send<T: Send>() {}
        is_send::<crate::Scalo>();
        is_send::<SeizureApp>();
        is_send::<Session>();
    }

    #[test]
    fn stepped_session_matches_monolithic_run() {
        let spec = SessionSpec::new(1, 42);
        let mut session = Session::new(spec.clone());
        while !session.step().done {}
        let stepped = session.report().run;

        let recording = patient_recording(&spec, spec.seed);
        let mut app = SeizureApp::new(
            ScaloConfig::default()
                .with_nodes(spec.nodes)
                .with_electrodes(spec.electrodes)
                .with_ber(spec.ber)
                .with_seed(spec.seed),
        );
        app.train_detectors(&patient_recording(&spec, spec.seed ^ 1));
        let monolithic = app.run(&recording);
        assert_eq!(stepped, monolithic);
        assert!(stepped.origin_detect_window.is_some(), "{stepped:?}");
    }

    #[test]
    fn step_accounting_adds_up() {
        let mut session = Session::new(SessionSpec::new(2, 7).with_duration_s(0.5));
        let total = session.windows_total();
        assert!(total > 0);
        let mut steps = 0;
        while !session.is_done() {
            let out = session.step();
            assert_eq!(out.window, steps);
            steps += 1;
        }
        assert_eq!(steps, total);
        let report = session.report();
        assert_eq!(report.steps, total as u64);
        assert!(report.sim_us > 0);
        assert!(report.sim_per_wall() > 0.0);
        // Stepping a finished session is a no-op.
        let again = session.step();
        assert!(again.done);
        assert_eq!(session.report().run, report.run);
    }

    #[test]
    fn movement_mix_rotates_decoders() {
        let mut session = Session::new(
            SessionSpec::new(3, 9)
                .with_duration_s(0.5)
                .with_movement_every(25),
        );
        while !session.step().done {}
        let digest = session.decision_digest();
        assert!(digest.contains("movement=[(0,"), "{digest}");
        // 125 windows at one round per 25 ⇒ all three pipelines ran.
        assert!(digest.contains("(2,"), "{digest}");
    }

    #[test]
    fn digests_are_seed_deterministic() {
        let run = |seed| {
            let mut s = Session::new(SessionSpec::new(9, seed).with_movement_every(50));
            while !s.step().done {}
            s.decision_digest()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds must differ");
    }

    #[test]
    fn query_backed_spec_digests_like_the_hand_built_one() {
        let run = |spec: SessionSpec| {
            let mut s = Session::new(spec);
            while !s.step().done {}
            s.decision_digest()
        };
        let by_query = SessionSpec::new(11, 0x77)
            .with_duration_s(0.5)
            .with_query(crate::catalog::MOVEMENT_MIX)
            .unwrap();
        assert_eq!(by_query.movement_every, 25);
        let by_hand = SessionSpec::new(11, 0x77)
            .with_duration_s(0.5)
            .with_movement_every(25);
        assert_eq!(run(by_query), run(by_hand));
    }

    #[test]
    fn reconfigure_cuts_over_and_stays_restorable() {
        // Admit plain seizure watch, run a while, then hot-switch to
        // the movement mix.
        let spec = SessionSpec::new(21, 0x9a9)
            .with_duration_s(0.5)
            .with_query(crate::catalog::SEIZURE_WATCH)
            .unwrap();
        let mut session = Session::new(spec.clone());
        for _ in 0..40 {
            session.step();
        }
        let new_spec = SessionSpec::new(21, 0x9a9)
            .with_duration_s(0.5)
            .with_query(crate::catalog::MOVEMENT_MIX)
            .unwrap();
        let expected = session.step_digest();
        let outcome = session.reconfigure(new_spec, Some(expected)).unwrap();
        assert_eq!(outcome.window, 40);
        assert_eq!(session.reconfigure_log().len(), 1);
        assert_eq!(session.spec().movement_every, 25);
        for _ in 0..40 {
            session.step();
        }
        assert!(
            !session.movement_results.is_empty(),
            "the new binding's movement mix must actually run"
        );
        // A snapshot taken after the cutover must restore (timeline
        // replay) and keep digesting identically.
        let snap = session.snapshot();
        let restored = Session::restore(&snap).unwrap();
        assert_eq!(restored.step_digest(), session.step_digest());
        assert_eq!(restored.decision_digest(), session.decision_digest());
        // And a second reconfiguration on top still works.
        let mut session = restored;
        let back = SessionSpec::new(21, 0x9a9)
            .with_duration_s(0.5)
            .with_query(crate::catalog::SEIZURE_RELIABLE)
            .unwrap();
        session.reconfigure(back, None).unwrap();
        assert_eq!(session.reconfigure_log().len(), 2);
        assert!(session.spec().use_reliable_transport);
        while !session.step().done {}
        let snap = session.snapshot();
        assert!(Session::restore(&snap).is_ok());
    }

    #[test]
    fn reconfigure_rolls_back_on_digest_mismatch_and_identity_change() {
        let spec = SessionSpec::new(22, 0x5e5).with_duration_s(0.4);
        let mut session = Session::new(spec.clone());
        for _ in 0..20 {
            session.step();
        }
        let live = session.step_digest();
        // Forced mismatch: the caller pins a wrong digest; the live
        // session must be untouched.
        let err = session
            .reconfigure(spec.clone().with_movement_every(25), Some(live ^ 1))
            .unwrap_err();
        assert!(matches!(err, ReconfigureError::Digest { .. }));
        assert_eq!(session.step_digest(), live, "rollback must be total");
        assert_eq!(session.spec().movement_every, 0);
        assert!(session.reconfigure_log().is_empty());
        // Identity fields are immutable.
        let err = session
            .reconfigure(SessionSpec::new(22, 0x5e6).with_duration_s(0.4), None)
            .unwrap_err();
        assert_eq!(err, ReconfigureError::Identity { field: "seed" });
        assert_eq!(session.step_digest(), live);
    }

    #[test]
    fn cost_estimate_scales_with_deployment_and_mix() {
        let small = SessionSpec::new(0, 0).cost_estimate();
        let big = SessionSpec::new(0, 0).with_deployment(4, 8).cost_estimate();
        assert!(big > small);
        let mixed = SessionSpec::new(0, 0)
            .with_movement_every(10)
            .cost_estimate();
        assert!(mixed > small);
    }
}
