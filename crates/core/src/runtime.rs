//! The MC runtime (§3.7): compile a query, schedule it, configure the
//! fabric.
//!
//! "We also develop a lightweight runtime on the MC that listens to the
//! external radio for data and code, and reconfigures PEs and
//! pipelines." This module is that path: a query-language source string
//! goes through `scalo-query` (parse + lower), `scalo-sched`
//! (ILP scheduling), and lands as a configured pipeline on the node's
//! fabric.

use scalo_hw::fabric::{NodeFabric, PipelineId};
use scalo_hw::pipeline::{Pipeline, Stage};
use scalo_query::{compile, Dag, QueryError};
use scalo_sched::ilp_build::{schedule, Schedule, ScheduleError};
use scalo_sched::map::pes_for_dag;
use scalo_sched::Scenario;

/// A deployed application: its DAG, schedule, and fabric handle.
#[derive(Debug)]
pub struct DeployedApp {
    /// The compiled dataflow.
    pub dag: Dag,
    /// The ILP schedule.
    pub schedule: Schedule,
    /// Handle to the configured pipeline.
    pub pipeline: PipelineId,
}

/// Errors from deployment.
#[derive(Debug)]
pub enum DeployError {
    /// Query failed to compile.
    Compile(QueryError),
    /// Scheduling failed.
    Schedule(ScheduleError),
    /// The fabric rejected the pipeline.
    Fabric(scalo_hw::fabric::AllocationError),
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::Compile(e) => write!(f, "compile: {e}"),
            DeployError::Schedule(e) => write!(f, "schedule: {e}"),
            DeployError::Fabric(e) => write!(f, "fabric: {e}"),
        }
    }
}

impl std::error::Error for DeployError {}

/// The per-node MC runtime.
#[derive(Debug, Default)]
pub struct McRuntime {
    fabric: NodeFabric,
}

impl McRuntime {
    /// A runtime over a fresh standard fabric.
    pub fn new() -> Self {
        Self {
            fabric: NodeFabric::new(),
        }
    }

    /// The fabric state.
    pub fn fabric(&self) -> &NodeFabric {
        &self.fabric
    }

    /// Compiles, schedules and deploys a query.
    ///
    /// `deadline_ms` is the response-time target;
    /// `wire_bytes_per_electrode` the network cost per electrode (0 for
    /// local pipelines).
    ///
    /// # Errors
    ///
    /// See [`DeployError`].
    pub fn deploy(
        &mut self,
        source: &str,
        scenario: &Scenario,
        deadline_ms: f64,
        wire_bytes_per_electrode: f64,
    ) -> Result<DeployedApp, DeployError> {
        let dag = compile(source).map_err(DeployError::Compile)?;
        let sched = schedule(&dag, scenario, deadline_ms, wire_bytes_per_electrode)
            .map_err(DeployError::Schedule)?;
        let stages: Vec<Stage> = pes_for_dag(&dag)
            .into_iter()
            .map(|pe| Stage::new(pe, sched.electrodes as usize))
            .collect();
        let pipeline = self
            .fabric
            .configure(Pipeline::from_stages(stages))
            .map_err(DeployError::Fabric)?;
        Ok(DeployedApp {
            dag,
            schedule: sched,
            pipeline,
        })
    }

    /// Tears down every deployed pipeline (the reconfiguration path).
    pub fn reset(&mut self) {
        self.fabric.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deploys_listing_one() {
        let mut rt = McRuntime::new();
        let app = rt
            .deploy(
                "var movements = stream.window(wsize=50ms).sbp().kf(kf_params).call_runtime()",
                &Scenario::new(4, 15.0),
                50.0,
                4.0,
            )
            .unwrap();
        assert!(app.schedule.electrodes > 0);
        assert!(!rt.fabric().pipelines().is_empty());
    }

    #[test]
    fn conflicting_pipelines_are_rejected_then_reset_clears() {
        let mut rt = McRuntime::new();
        let src = "var q = stream.window(wsize=4ms).dtw()";
        rt.deploy(src, &Scenario::new(2, 15.0), 10.0, 0.0).unwrap();
        // Second deployment wants the same DTW PE instance.
        let err = rt
            .deploy(src, &Scenario::new(2, 15.0), 10.0, 0.0)
            .unwrap_err();
        assert!(matches!(err, DeployError::Fabric(_)), "{err}");
        rt.reset();
        rt.deploy(src, &Scenario::new(2, 15.0), 10.0, 0.0).unwrap();
    }

    #[test]
    fn bad_source_is_a_compile_error() {
        let mut rt = McRuntime::new();
        let err = rt
            .deploy(
                "var q = nonsense.window()",
                &Scenario::new(2, 15.0),
                10.0,
                0.0,
            )
            .unwrap_err();
        assert!(matches!(err, DeployError::Compile(_)));
    }

    #[test]
    fn impossible_deadline_is_a_schedule_error() {
        let mut rt = McRuntime::new();
        let err = rt
            .deploy(
                "var q = stream.window(wsize=4ms).select(w => w.seizure_detect())",
                &Scenario::new(2, 15.0),
                0.5,
                0.0,
            )
            .unwrap_err();
        assert!(matches!(err, DeployError::Schedule(_)));
    }
}
