//! Query → plan compilation: the middle layer between the language and
//! the serving fleet (ROADMAP item 3).
//!
//! `scalo-query` lowers fluent source into an untyped operator [`Dag`];
//! this module takes that DAG the rest of the way to something a
//! serving tier can run and budget:
//!
//! 1. **Validate** the chain into typed operator nodes — window first,
//!    hash before collision-check, collision-check before DTW confirm,
//!    a feature stage before any decoder, `call_runtime` terminal.
//! 2. **Bind** the typed nodes to the batched kernels the window hot
//!    path already uses — [`BandpassBank`],
//!    [`FftScratch`](scalo_signal::fft::FftScratch)-backed band
//!    power, the SSH sketcher, pruned DTW, and the three decoders —
//!    each with its scratch preallocated at compile time, producing a
//!    topo-ordered list of [`PlanStep`]s.
//! 3. **Derive the session binding**: which chain serves at the 4 ms
//!    seizure cadence, the movement-mix cadence (in serving windows),
//!    and whether hash broadcasts ride the reliable transport.
//! 4. **Budget** the placement with the `scalo-sched` seizure ILP
//!    ([`resolve_budget`]) so admission can refuse queries whose fixed
//!    overheads alone blow the per-node power limit.
//!
//! Executing a compiled [`WindowPlan`] over a [`ChannelBlock`] folds
//! every stage's outputs through FNV-1a into a window digest, so two
//! compilations of the same source are checkable for equivalence the
//! same way sessions are: byte-identical digests or it didn't happen.

use crate::apps::seizure::WINDOW_US;
use crate::snapshot::Fnv64;
use crate::workspace::Workspace;
use scalo_lsh::{HashConfig, Measure, SshHasher};
use scalo_ml::kalman::{KalmanFilter, KalmanModel, KalmanScratch};
use scalo_ml::nn::{NnScratch, ShallowNn};
use scalo_ml::svm::LinearSvm;
use scalo_ml::Matrix;
use scalo_query::{compile_program, Dag, Operator, QueryError};
use scalo_sched::map::pes_for_dag;
use scalo_sched::seizure::{solve, Priorities, SeizureSchedule};
use scalo_sched::Scenario;
use scalo_signal::block::ChannelBlock;
use scalo_signal::dtw::{dtw_distance_pruned, DtwParams};
use scalo_signal::fft::band_power_features_into;
use scalo_signal::filter::{BandpassBank, BandpassDesign};
use scalo_signal::spike::{spike_band_power, spike_threshold_with};
use scalo_signal::xcor::max_lagged_pearson;
use scalo_signal::SAMPLE_RATE_HZ;
use std::fmt;

/// The serving cadence every plan is scheduled against: the seizure
/// app's 4 ms window.
pub const SERVING_WINDOW_MS: f64 = WINDOW_US as f64 / 1_000.0;

/// Why a query could not be compiled to an executable plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The source failed to lex, parse, or lower.
    Query(QueryError),
    /// A chain never collected samples into windows.
    MissingWindow {
        /// The chain's bound name.
        chain: String,
    },
    /// A chain's window size cannot be served on the 4 ms cadence: the
    /// serving chain must run *at* [`SERVING_WINDOW_MS`] and auxiliary
    /// chains at a positive integer multiple of it.
    CadenceMismatch {
        /// The chain's bound name.
        chain: String,
        /// The offending window size, ms.
        window_ms: f64,
    },
    /// An operator appears somewhere its inputs do not exist.
    Misplaced {
        /// The chain's bound name.
        chain: String,
        /// The operator, as written in source.
        op: &'static str,
        /// What the validator wanted instead.
        message: &'static str,
    },
    /// A chain mixes detection and decode stages; roles are exclusive.
    AmbiguousRole {
        /// The chain's bound name.
        chain: String,
    },
    /// The program's chain mix is unservable (no serving chain, or
    /// more than one of a kind).
    BadProgram {
        /// What is wrong with the mix.
        message: String,
    },
    /// The seizure ILP found no feasible placement at this deployment
    /// and power budget.
    Infeasible {
        /// Implants in the deployment.
        nodes: usize,
        /// Per-node power budget, mW.
        power_limit_mw: f64,
    },
}

impl From<QueryError> for PlanError {
    fn from(e: QueryError) -> Self {
        PlanError::Query(e)
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Query(e) => write!(f, "query error: {e}"),
            Self::MissingWindow { chain } => {
                write!(f, "chain `{chain}` never windows the stream")
            }
            Self::CadenceMismatch { chain, window_ms } => write!(
                f,
                "chain `{chain}` windows at {window_ms} ms, which does not sit on the \
                 {SERVING_WINDOW_MS} ms serving cadence"
            ),
            Self::Misplaced { chain, op, message } => {
                write!(f, "chain `{chain}`: `{op}` {message}")
            }
            Self::AmbiguousRole { chain } => write!(
                f,
                "chain `{chain}` mixes seizure-detection and movement-decode stages"
            ),
            Self::BadProgram { message } => write!(f, "unservable program: {message}"),
            Self::Infeasible {
                nodes,
                power_limit_mw,
            } => write!(
                f,
                "no feasible placement for {nodes} nodes at {power_limit_mw} mW/node"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// What a validated chain is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainRole {
    /// The serving chain: seizure detection at the 4 ms cadence.
    Seizure,
    /// An auxiliary decode chain folded into the serving loop every
    /// N windows (the movement mix).
    Movement,
}

/// A typed operator node: what the untyped [`Operator`] becomes once
/// the validator has checked its inputs exist. Stream-shaping operators
/// (`map`, non-detect `select`) type to nothing — they shape the query,
/// not the window path.
#[derive(Debug, Clone, PartialEq)]
enum TypedNode {
    Detect,
    Filter { lo_hz: f64, hi_hz: f64 },
    Feature(FeatureKind),
    SpikeDetect,
    Hash(Measure),
    CollisionCheck { reliable: bool },
    Dtw,
    Classify(ClassifierKind),
    Stim,
    Emit,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FeatureKind {
    Sbp,
    Fft,
    Xcor,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClassifierKind {
    Svm,
    Nn,
    Kf,
}

/// Compile-time configuration: how many channels the bound kernels are
/// sized for and the seed deterministic decoder weights derive from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanConfig {
    /// Channels per window block (electrodes on the serving implant).
    pub channels: usize,
    /// Seed for deterministically generated decoder weights.
    pub seed: u64,
}

impl Default for PlanConfig {
    fn default() -> Self {
        Self {
            channels: 4,
            seed: 0x5ca1_0b1d,
        }
    }
}

/// One executable stage of a compiled window plan, kernels and scratch
/// bound at compile time.
#[derive(Debug)]
pub enum PlanStep {
    /// Fused Butterworth band-pass over every channel (in place).
    Bandpass {
        /// The bank, its state slabs preallocated for the plan's
        /// channel count.
        bank: BandpassBank,
    },
    /// Per-channel spectral band-power features (FFT PE path).
    FftFeatures,
    /// Per-channel spike-band power (SBP feature path).
    SpikeBandPower,
    /// Adjacent-channel lagged-correlation features (XCOR PE path).
    XcorFeatures {
        /// Maximum lag searched, in samples.
        max_lag: usize,
    },
    /// Per-channel threshold crossings (NEO + THR path).
    SpikeDetect {
        /// Threshold in robust standard deviations.
        threshold_k: f64,
    },
    /// Per-channel seizure vote: band-power features through a seeded
    /// linear SVM (the BBF→FFT→XCOR→SVM detection cluster).
    SeizureDetect {
        /// The detection SVM over the spectral feature bands.
        svm: LinearSvm,
    },
    /// SSH sketch of every channel window.
    Hash {
        /// The sketcher, configured for the query's measure.
        hasher: SshHasher,
    },
    /// Pairwise Hamming probe over the window's hashes.
    CollisionProbe {
        /// Hamming radius counted as a collision.
        tolerance: u32,
        /// Whether the broadcast rides the reliable transport (session
        /// binding; folded so plans differ when the transport does).
        reliable: bool,
    },
    /// Banded, pruned DTW confirm over adjacent channel pairs.
    DtwConfirm {
        /// Band parameters.
        params: DtwParams,
        /// Prune/decision cutoff.
        cutoff: f64,
    },
    /// Linear-SVM decode over the last feature vector.
    ClassifySvm {
        /// Seeded decoder.
        svm: LinearSvm,
    },
    /// Shallow-NN decode over the last feature vector. Boxed like
    /// [`PlanStep::ClassifyKf`]: weight matrices dominate the enum.
    ClassifyNn {
        /// Seeded decoder.
        nn: Box<ShallowNn>,
        /// Preallocated forward-pass scratch.
        scratch: Box<NnScratch>,
        /// Preallocated output vector.
        out: Vec<f64>,
    },
    /// Kalman decode treating the feature vector as the observation.
    /// Boxed: the filter's matrices dwarf every other variant, and the
    /// steady-state path only follows the pointer once per rotation.
    ClassifyKf {
        /// The filter (state carried across windows, like a real
        /// decoder).
        kf: Box<KalmanFilter>,
        /// Preallocated step scratch.
        scratch: Box<KalmanScratch>,
    },
    /// Stimulation command hand-off (DAC path; control decision only).
    Stim,
    /// Result hand-off to the MC runtime.
    Emit,
}

impl PlanStep {
    /// The step's name, for reports and tests.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Bandpass { .. } => "bandpass",
            Self::FftFeatures => "fft_features",
            Self::SpikeBandPower => "spike_band_power",
            Self::XcorFeatures { .. } => "xcor_features",
            Self::SpikeDetect { .. } => "spike_detect",
            Self::SeizureDetect { .. } => "seizure_detect",
            Self::Hash { .. } => "hash",
            Self::CollisionProbe { .. } => "collision_probe",
            Self::DtwConfirm { .. } => "dtw_confirm",
            Self::ClassifySvm { .. } => "classify_svm",
            Self::ClassifyNn { .. } => "classify_nn",
            Self::ClassifyKf { .. } => "classify_kf",
            Self::Stim => "stim",
            Self::Emit => "emit",
        }
    }
}

/// One chain compiled to an executable, topo-ordered step list.
#[derive(Debug)]
pub struct WindowPlan {
    name: String,
    role: ChainRole,
    window_ms: f64,
    cadence: usize,
    predicted_window_ms: f64,
    steps: Vec<PlanStep>,
}

impl WindowPlan {
    /// Validates and binds one lowered chain against `cfg`.
    ///
    /// # Errors
    ///
    /// Any [`PlanError`] except `Query`/`BadProgram`/`Infeasible`.
    pub fn compile(dag: &Dag, cfg: &PlanConfig) -> Result<Self, PlanError> {
        let (window_ms, nodes) = typecheck(dag)?;
        let role = chain_role(dag, &nodes)?;
        let cadence = cadence_of(dag, role, window_ms)?;
        let steps = bind(&nodes, cfg);
        let predicted_window_ms = pes_for_dag(dag)
            .into_iter()
            .map(|pe| scalo_hw::pe::spec(pe).latency.worst_ms(SERVING_WINDOW_MS))
            .sum();
        Ok(Self {
            name: dag.name.clone(),
            role,
            window_ms,
            cadence,
            predicted_window_ms,
            steps,
        })
    }

    /// The chain's bound name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// What the chain is for.
    pub fn role(&self) -> ChainRole {
        self.role
    }

    /// The chain's window size, ms.
    pub fn window_ms(&self) -> f64 {
        self.window_ms
    }

    /// How often the chain runs, in 4 ms serving windows (1 for the
    /// serving chain itself).
    pub fn cadence(&self) -> usize {
        self.cadence
    }

    /// Serial worst-case PE latency of the chain's fabric mapping, ms —
    /// what admission compares against the response deadline.
    pub fn predicted_window_ms(&self) -> f64 {
        self.predicted_window_ms
    }

    /// The bound steps, in execution order.
    pub fn steps(&self) -> &[PlanStep] {
        &self.steps
    }

    /// Step names in execution order, for reports.
    pub fn step_names(&self) -> Vec<&'static str> {
        self.steps.iter().map(PlanStep::name).collect()
    }

    /// Runs every bound step over one window `block`, reusing the
    /// session workspace's scratch, and returns the FNV-1a digest of
    /// everything the stages produced. Deterministic: same plan, same
    /// block, same digest — on any host, any thread.
    pub fn execute_window(&mut self, block: &mut ChannelBlock, ws: &mut Workspace) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(block.channels() as u64);
        h.write_u64(block.samples() as u64);
        for step in &mut self.steps {
            execute_step(step, block, ws, &mut h);
        }
        h.finish()
    }
}

fn execute_step(step: &mut PlanStep, block: &mut ChannelBlock, ws: &mut Workspace, h: &mut Fnv64) {
    let channels = block.channels();
    match step {
        PlanStep::Bandpass { bank } => {
            bank.process_block(block);
            for &x in block.data() {
                h.write_f64(x);
            }
        }
        PlanStep::FftFeatures => {
            for c in 0..channels {
                block.copy_channel_into(c, &mut ws.chan);
                band_power_features_into(&ws.chan, &mut ws.fft, &mut ws.features);
                for &f in &ws.features {
                    h.write_f64(f);
                }
            }
            // Leave the last channel's features in `ws.features` for a
            // downstream decoder — matches the per-implant serving path
            // where the decoder consumes the final electrode's features.
        }
        PlanStep::SpikeBandPower => {
            ws.features.clear();
            for c in 0..channels {
                block.copy_channel_into(c, &mut ws.chan);
                ws.features.push(spike_band_power(&ws.chan));
            }
            for &f in &ws.features {
                h.write_f64(f);
            }
        }
        PlanStep::XcorFeatures { max_lag } => {
            ws.features.clear();
            for c in 0..channels {
                block.copy_channel_into(c, &mut ws.znorm_a);
                block.copy_channel_into((c + 1) % channels, &mut ws.znorm_b);
                let (lag, r) = max_lagged_pearson(&ws.znorm_a, &ws.znorm_b, *max_lag);
                h.write_u64(lag as u64);
                ws.features.push(r);
            }
            for &f in &ws.features {
                h.write_f64(f);
            }
        }
        PlanStep::SpikeDetect { threshold_k } => {
            for c in 0..channels {
                block.copy_channel_into(c, &mut ws.chan);
                let thr = spike_threshold_with(&mut ws.znorm_a, &ws.chan, *threshold_k);
                let crossings = ws.chan.iter().filter(|&&x| x.abs() > thr).count();
                h.write_u64(crossings as u64);
            }
        }
        PlanStep::SeizureDetect { svm } => {
            for c in 0..channels {
                block.copy_channel_into(c, &mut ws.chan);
                band_power_features_into(&ws.chan, &mut ws.fft, &mut ws.features);
                h.write_u64(u64::from(svm.predict(&ws.features)));
            }
        }
        PlanStep::Hash { hasher } => {
            hasher.hash_block_into(block, &mut ws.block_hash, &mut ws.hashes);
            for hash in &ws.hashes {
                h.write_bytes(&hash.0);
            }
        }
        PlanStep::CollisionProbe {
            tolerance,
            reliable,
        } => {
            let mut collisions = 0u64;
            for a in 0..ws.hashes.len() {
                for b in (a + 1)..ws.hashes.len() {
                    if ws.hashes[a].hamming(&ws.hashes[b]) <= *tolerance {
                        collisions += 1;
                    }
                }
            }
            h.write_u64(collisions);
            h.write_u64(u64::from(*reliable));
        }
        PlanStep::DtwConfirm { params, cutoff } => {
            for c in 0..channels.saturating_sub(1) {
                block.copy_channel_into(c, &mut ws.znorm_a);
                block.copy_channel_into(c + 1, &mut ws.znorm_b);
                let out =
                    dtw_distance_pruned(&mut ws.dtw, &ws.znorm_a, &ws.znorm_b, *params, *cutoff);
                h.write_u64(u64::from(out.distance < *cutoff));
            }
        }
        PlanStep::ClassifySvm { svm } => {
            h.write_f64(svm.decision(&ws.features));
        }
        PlanStep::ClassifyNn { nn, scratch, out } => {
            nn.forward_into(&ws.features, scratch, out);
            for &y in out.iter() {
                h.write_f64(y);
            }
        }
        PlanStep::ClassifyKf { kf, scratch } => {
            // A singular innovation covariance is a function of the
            // seeded model alone; the sentinel is as deterministic as a
            // real decode (same convention as the movement mix).
            match kf.step_with(&ws.features, scratch) {
                Ok(state) => {
                    for &x in state {
                        h.write_f64(x);
                    }
                }
                Err(_) => h.write_f64(f64::MAX),
            }
        }
        PlanStep::Stim => h.write_u64(0x5717),
        PlanStep::Emit => h.write_u64(0xca11),
    }
}

/// First pass: untyped operators → typed nodes, with input/order
/// checking. Returns the chain's window size alongside the nodes.
fn typecheck(dag: &Dag) -> Result<(f64, Vec<TypedNode>), PlanError> {
    let chain = || dag.name.clone();
    let misplaced = |op: &'static str, message: &'static str| PlanError::Misplaced {
        chain: chain(),
        op,
        message,
    };
    let mut window_ms: Option<f64> = None;
    let mut nodes = Vec::with_capacity(dag.operators.len());
    let mut hashed = false;
    let mut checked = false;
    let mut detected = false;
    let mut confirmed = false;
    let mut featured = false;
    let mut classified = false;
    let mut emitted = false;
    for op in &dag.operators {
        if emitted {
            return Err(misplaced("call_runtime", "must terminate the chain"));
        }
        // Everything below the match is a compute stage; stream shaping
        // (`map`, plain `select`) passes through without a typed node.
        let typed = match op {
            Operator::Window { ms } => {
                if window_ms.is_some() {
                    return Err(misplaced("window", "appears twice; chains take one window"));
                }
                window_ms = Some(*ms);
                continue;
            }
            Operator::Map { .. } => continue,
            Operator::Select {
                seizure_detect: false,
                ..
            } => continue,
            Operator::Select { .. } => {
                detected = true;
                TypedNode::Detect
            }
            Operator::Bbf { lo_hz, hi_hz } => TypedNode::Filter {
                lo_hz: *lo_hz,
                hi_hz: *hi_hz,
            },
            Operator::Sbp => {
                featured = true;
                TypedNode::Feature(FeatureKind::Sbp)
            }
            Operator::Fft => {
                featured = true;
                TypedNode::Feature(FeatureKind::Fft)
            }
            Operator::Xcor => {
                featured = true;
                TypedNode::Feature(FeatureKind::Xcor)
            }
            Operator::SpikeDetect => TypedNode::SpikeDetect,
            Operator::Hash { measure } => {
                hashed = true;
                TypedNode::Hash(match measure.as_str() {
                    "euclidean" => Measure::Euclidean,
                    "xcor" => Measure::Xcor,
                    "emd" => Measure::Emd,
                    _ => Measure::Dtw,
                })
            }
            Operator::CollisionCheck { reliable } => {
                if !hashed {
                    return Err(misplaced("ccheck", "needs a `hash` stage to probe"));
                }
                checked = true;
                TypedNode::CollisionCheck {
                    reliable: *reliable,
                }
            }
            Operator::Dtw => {
                if !checked {
                    return Err(misplaced(
                        "dtw",
                        "confirms collision-check candidates; add `ccheck` first",
                    ));
                }
                confirmed = true;
                TypedNode::Dtw
            }
            Operator::Svm | Operator::Nn | Operator::Kf { .. } => {
                if !featured {
                    return Err(misplaced(
                        "decoder",
                        "classifies features; add a feature stage (sbp/fft/xcor) first",
                    ));
                }
                if classified {
                    return Err(misplaced("decoder", "appears twice; chains carry one"));
                }
                classified = true;
                TypedNode::Classify(match op {
                    Operator::Svm => ClassifierKind::Svm,
                    Operator::Nn => ClassifierKind::Nn,
                    _ => ClassifierKind::Kf,
                })
            }
            Operator::Stim => {
                if !detected && !confirmed {
                    return Err(misplaced("stim", "needs a detection stage upstream"));
                }
                TypedNode::Stim
            }
            Operator::CallRuntime => {
                emitted = true;
                TypedNode::Emit
            }
        };
        nodes.push(typed);
    }
    let window_ms = window_ms.ok_or_else(|| PlanError::MissingWindow { chain: chain() })?;
    if nodes.is_empty() {
        return Err(PlanError::BadProgram {
            message: format!(
                "chain `{}` windows the stream but computes nothing",
                dag.name
            ),
        });
    }
    Ok((window_ms, nodes))
}

/// Second pass: the chain's role, from which stages it carries.
fn chain_role(dag: &Dag, nodes: &[TypedNode]) -> Result<ChainRole, PlanError> {
    let seizure = nodes.iter().any(|n| {
        matches!(
            n,
            TypedNode::Detect
                | TypedNode::Hash(_)
                | TypedNode::CollisionCheck { .. }
                | TypedNode::Dtw
                | TypedNode::Stim
        )
    });
    let movement = nodes.iter().any(|n| matches!(n, TypedNode::Classify(_)));
    match (seizure, movement) {
        (true, true) => Err(PlanError::AmbiguousRole {
            chain: dag.name.clone(),
        }),
        (true, false) => Ok(ChainRole::Seizure),
        (false, true) => Ok(ChainRole::Movement),
        (false, false) => Err(PlanError::BadProgram {
            message: format!(
                "chain `{}` has neither a detection nor a decode stage",
                dag.name
            ),
        }),
    }
}

/// Third pass: cadence in serving windows. The serving chain must sit
/// exactly on the 4 ms cadence; auxiliary chains on a positive integer
/// multiple of it (this is where Listing 1's 50 ms movement chain is
/// rejected with a precise error — 50/4 is not integral).
fn cadence_of(dag: &Dag, role: ChainRole, window_ms: f64) -> Result<usize, PlanError> {
    let mismatch = || PlanError::CadenceMismatch {
        chain: dag.name.clone(),
        window_ms,
    };
    match role {
        ChainRole::Seizure => {
            if window_ms != SERVING_WINDOW_MS {
                return Err(mismatch());
            }
            Ok(1)
        }
        ChainRole::Movement => {
            let ratio = window_ms / SERVING_WINDOW_MS;
            if ratio < 1.0 || ratio.fract() != 0.0 {
                return Err(mismatch());
            }
            Ok(ratio as usize)
        }
    }
}

/// Final pass: typed nodes → executable steps with kernels and scratch
/// bound. Infallible — validation already ran.
fn bind(nodes: &[TypedNode], cfg: &PlanConfig) -> Vec<PlanStep> {
    let channels = cfg.channels.max(1);
    let mut feature_dim = 0usize;
    let mut steps = Vec::with_capacity(nodes.len());
    for node in nodes {
        steps.push(match node {
            TypedNode::Detect => PlanStep::SeizureDetect {
                svm: seeded_svm(cfg.seed, 0xd3, scalo_signal::fft::FEATURE_BANDS.len()),
            },
            TypedNode::Filter { lo_hz, hi_hz } => {
                let design = BandpassDesign::new(2, *lo_hz, *hi_hz, SAMPLE_RATE_HZ);
                PlanStep::Bandpass {
                    bank: BandpassBank::new(&design, channels),
                }
            }
            TypedNode::Feature(kind) => match kind {
                FeatureKind::Fft => {
                    feature_dim = scalo_signal::fft::FEATURE_BANDS.len();
                    PlanStep::FftFeatures
                }
                FeatureKind::Sbp => {
                    feature_dim = channels;
                    PlanStep::SpikeBandPower
                }
                FeatureKind::Xcor => {
                    feature_dim = channels;
                    PlanStep::XcorFeatures { max_lag: 8 }
                }
            },
            TypedNode::SpikeDetect => PlanStep::SpikeDetect { threshold_k: 4.0 },
            TypedNode::Hash(measure) => PlanStep::Hash {
                hasher: SshHasher::new(HashConfig::for_measure(*measure)),
            },
            TypedNode::CollisionCheck { reliable } => PlanStep::CollisionProbe {
                tolerance: 8,
                reliable: *reliable,
            },
            TypedNode::Dtw => PlanStep::DtwConfirm {
                params: DtwParams::with_band(8),
                cutoff: 25.0,
            },
            TypedNode::Classify(kind) => {
                let dim = feature_dim.max(1);
                match kind {
                    ClassifierKind::Svm => PlanStep::ClassifySvm {
                        svm: seeded_svm(cfg.seed, 0x57, dim),
                    },
                    ClassifierKind::Nn => PlanStep::ClassifyNn {
                        nn: Box::new(seeded_nn(cfg.seed, dim, 8, 3)),
                        scratch: Box::new(NnScratch::new()),
                        out: Vec::with_capacity(3),
                    },
                    ClassifierKind::Kf => PlanStep::ClassifyKf {
                        kf: Box::new(seeded_kf(cfg.seed, dim)),
                        scratch: Box::new(KalmanScratch::new()),
                    },
                }
            }
            TypedNode::Stim => PlanStep::Stim,
            TypedNode::Emit => PlanStep::Emit,
        });
    }
    steps
}

/// SplitMix64: the deterministic weight stream decoder binding draws
/// from. Same seed, same weights, on every host.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `n` deterministic weights in `[-1, 1)`.
fn seeded_weights(seed: u64, tag: u64, n: usize) -> Vec<f64> {
    let mut state = seed ^ tag.wrapping_mul(0x2545_f491_4f6c_dd1d);
    (0..n)
        .map(|_| (splitmix(&mut state) >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0)
        .collect()
}

fn seeded_svm(seed: u64, tag: u64, dim: usize) -> LinearSvm {
    LinearSvm::new(seeded_weights(seed, tag, dim), 0.0)
}

fn seeded_nn(seed: u64, input: usize, hidden: usize, output: usize) -> ShallowNn {
    let w1 = Matrix::from_vec(hidden, input, seeded_weights(seed, 0x11, hidden * input));
    let b1 = Matrix::from_vec(hidden, 1, seeded_weights(seed, 0x12, hidden));
    let w2 = Matrix::from_vec(output, hidden, seeded_weights(seed, 0x13, output * hidden));
    let b2 = Matrix::from_vec(output, 1, seeded_weights(seed, 0x14, output));
    ShallowNn::new(w1, b1, w2, b2)
}

fn seeded_kf(seed: u64, obs: usize) -> KalmanFilter {
    // Constant-velocity state over a seeded observation projection; Q is
    // diagonally dominated so the innovation covariance stays regular.
    let a = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]);
    let w = Matrix::identity(2).scale(0.01);
    let h = Matrix::from_vec(obs, 2, seeded_weights(seed, 0x15, obs * 2));
    let q = Matrix::identity(obs).scale(0.1);
    KalmanFilter::new(KalmanModel::new(a, w, h, q))
}

/// The session-level knobs a compiled program pins down: everything a
/// [`crate::session::SessionSpec`] needs beyond its identity fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionBinding {
    /// Movement-mix cadence in serving windows (0 = none).
    pub movement_every: usize,
    /// Whether hash broadcasts ride the reliable transport.
    pub use_reliable_transport: bool,
}

/// A whole program compiled: one [`WindowPlan`] per chain, the derived
/// session binding, and the canonical re-printed source (whose
/// recompilation is the identity — pinned by proptest in `scalo-query`).
#[derive(Debug)]
pub struct ProgramPlan {
    source: String,
    chains: Vec<WindowPlan>,
    binding: SessionBinding,
}

impl ProgramPlan {
    /// Compiles fluent source into an executable program plan.
    ///
    /// # Errors
    ///
    /// Any [`PlanError`]: the source must lex/parse/lower, every chain
    /// must validate, and the mix must be exactly one serving chain
    /// plus at most one movement chain.
    pub fn compile(source: &str, cfg: &PlanConfig) -> Result<Self, PlanError> {
        let dags = compile_program(source)?;
        let mut chains = Vec::with_capacity(dags.len());
        for dag in &dags {
            chains.push(WindowPlan::compile(dag, cfg)?);
        }
        let seizure = chains
            .iter()
            .filter(|c| c.role() == ChainRole::Seizure)
            .count();
        if seizure != 1 {
            return Err(PlanError::BadProgram {
                message: format!(
                    "programs serve exactly one seizure-detection chain (found {seizure})"
                ),
            });
        }
        let movement: Vec<&WindowPlan> = chains
            .iter()
            .filter(|c| c.role() == ChainRole::Movement)
            .collect();
        if movement.len() > 1 {
            return Err(PlanError::BadProgram {
                message: format!(
                    "programs fold in at most one movement chain (found {})",
                    movement.len()
                ),
            });
        }
        let reliable = dags
            .iter()
            .flat_map(|d| &d.operators)
            .any(|op| matches!(op, Operator::CollisionCheck { reliable: true }));
        let binding = SessionBinding {
            movement_every: movement.first().map_or(0, |c| c.cadence()),
            use_reliable_transport: reliable,
        };
        let source = dags
            .iter()
            .map(Dag::to_query)
            .collect::<Vec<_>>()
            .join("\n");
        Ok(Self {
            source,
            chains,
            binding,
        })
    }

    /// The canonical (re-printed) source; recompiling it reproduces
    /// this plan exactly.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The program's name: its serving chain's bound name.
    pub fn name(&self) -> &str {
        self.serving_chain().name()
    }

    /// The session-level binding the program pins down.
    pub fn binding(&self) -> SessionBinding {
        self.binding
    }

    /// Every compiled chain, serving chain first among equals.
    pub fn chains(&self) -> &[WindowPlan] {
        &self.chains
    }

    /// Mutable access, for executing chains.
    pub fn chains_mut(&mut self) -> &mut [WindowPlan] {
        &mut self.chains
    }

    /// The 4 ms serving chain.
    pub fn serving_chain(&self) -> &WindowPlan {
        self.chains
            .iter()
            .find(|c| c.role() == ChainRole::Seizure)
            .expect("ProgramPlan::compile guarantees one serving chain")
    }
}

/// The solved placement budget for a compiled program on a deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleBudget {
    /// The seizure ILP's solved flows.
    pub schedule: SeizureSchedule,
    /// Serial worst-case PE latency of the serving chain, ms.
    pub predicted_window_ms: f64,
}

/// Re-solves the seizure ILP for `plan` on a `nodes`-implant deployment
/// under `power_limit_mw` per node — the admission gate for
/// query-backed sessions and the re-solve step of hot reconfiguration.
///
/// # Errors
///
/// [`PlanError::Infeasible`] when the solver finds no placement (fixed
/// overheads alone exceed the budget).
///
/// # Panics
///
/// Panics if `nodes` is zero or `power_limit_mw` is not positive
/// (admission validates deployments before budgeting them).
pub fn resolve_budget(
    plan: &ProgramPlan,
    nodes: usize,
    power_limit_mw: f64,
) -> Result<ScheduleBudget, PlanError> {
    let scenario = Scenario::new(nodes, power_limit_mw);
    let schedule = solve(&scenario, Priorities::equal()).map_err(|_| PlanError::Infeasible {
        nodes,
        power_limit_mw,
    })?;
    Ok(ScheduleBudget {
        schedule,
        predicted_window_ms: plan.serving_chain().predicted_window_ms(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEIZURE: &str = "var watch = stream.window(wsize=4ms).seizure_detect().hash(dtw)\
                           .ccheck().dtw().stim().call_runtime()";
    const MIX: &str = "var watch = stream.window(wsize=4ms).seizure_detect().hash(dtw)\
                       .ccheck(reliable).dtw().stim().call_runtime()\n\
                       var decode = stream.window(wsize=100ms).sbp().kf(kf_params).call_runtime()";

    fn block(seed: u64, channels: usize) -> ChannelBlock {
        let mut b = ChannelBlock::new();
        b.reset(channels, crate::apps::seizure::WINDOW);
        let mut state = seed;
        for x in b.data_mut() {
            *x = (splitmix(&mut state) >> 11) as f64 / (1u64 << 52) as f64 - 0.5;
        }
        b
    }

    #[test]
    fn seizure_chain_compiles_to_ordered_steps() {
        let plan = ProgramPlan::compile(SEIZURE, &PlanConfig::default()).unwrap();
        assert_eq!(plan.name(), "watch");
        assert_eq!(plan.binding().movement_every, 0);
        assert!(!plan.binding().use_reliable_transport);
        let serving = plan.serving_chain();
        assert_eq!(serving.cadence(), 1);
        assert_eq!(
            serving.step_names(),
            [
                "seizure_detect",
                "hash",
                "collision_probe",
                "dtw_confirm",
                "stim",
                "emit"
            ]
        );
        assert!(serving.predicted_window_ms() > 0.0);
    }

    #[test]
    fn program_mix_derives_session_binding() {
        let plan = ProgramPlan::compile(MIX, &PlanConfig::default()).unwrap();
        assert_eq!(plan.chains().len(), 2);
        assert_eq!(
            plan.binding(),
            SessionBinding {
                movement_every: 25,
                use_reliable_transport: true,
            }
        );
        // Canonical source recompiles to the same binding.
        let again = ProgramPlan::compile(plan.source(), &PlanConfig::default()).unwrap();
        assert_eq!(again.binding(), plan.binding());
        assert_eq!(again.source(), plan.source());
    }

    #[test]
    fn execution_digest_is_deterministic_and_input_sensitive() {
        let cfg = PlanConfig::default();
        let mut a = ProgramPlan::compile(SEIZURE, &cfg).unwrap();
        let mut b = ProgramPlan::compile(SEIZURE, &cfg).unwrap();
        let mut ws = Workspace::new();
        let d1 = a.chains_mut()[0].execute_window(&mut block(7, cfg.channels), &mut ws);
        let d2 = b.chains_mut()[0].execute_window(&mut block(7, cfg.channels), &mut ws);
        assert_eq!(d1, d2, "two compilations of one source must agree");
        let d3 = a.chains_mut()[0].execute_window(&mut block(8, cfg.channels), &mut ws);
        assert_ne!(d1, d3, "different windows must digest differently");
    }

    #[test]
    fn every_decoder_shape_executes() {
        let cfg = PlanConfig::default();
        for decoder in ["svm()", "nn()", "kf(kf_params)"] {
            let src =
                format!("var decode = stream.window(wsize=8ms).fft().{decoder}.call_runtime()");
            let mut plan = ProgramPlan::compile(
                &format!("var watch = stream.window(wsize=4ms).seizure_detect()\n{src}"),
                &cfg,
            )
            .unwrap();
            let mut ws = Workspace::new();
            let movement = &mut plan.chains_mut()[1];
            assert_eq!(movement.cadence(), 2);
            let d = movement.execute_window(&mut block(3, cfg.channels), &mut ws);
            assert_ne!(d, 0, "decoder {decoder} must fold outputs");
        }
    }

    #[test]
    fn validation_rejects_misordered_chains() {
        let cfg = PlanConfig::default();
        let compile = |src: &str| ProgramPlan::compile(src, &cfg);
        // ccheck without a hash.
        assert!(matches!(
            compile("var q = stream.window(wsize=4ms).ccheck()"),
            Err(PlanError::Misplaced { op: "ccheck", .. })
        ));
        // dtw without a ccheck.
        assert!(matches!(
            compile("var q = stream.window(wsize=4ms).hash(dtw).dtw()"),
            Err(PlanError::Misplaced { op: "dtw", .. })
        ));
        // A decoder without features.
        assert!(matches!(
            compile("var q = stream.window(wsize=8ms).svm()"),
            Err(PlanError::Misplaced { op: "decoder", .. })
        ));
        // stim with nothing to act on.
        assert!(matches!(
            compile("var q = stream.window(wsize=4ms).hash(dtw).stim()"),
            Err(PlanError::Misplaced { op: "stim", .. })
        ));
        // No window at all.
        assert!(matches!(
            compile("var q = stream.seizure_detect()"),
            Err(PlanError::MissingWindow { .. })
        ));
        // Listing 1 alone: 50 ms does not sit on the 4 ms cadence.
        assert!(matches!(
            compile("var movements = stream.window(wsize=50ms).sbp().kf(kf_params).call_runtime()"),
            Err(PlanError::CadenceMismatch { .. })
        ));
        // Detection and decode in one chain.
        assert!(matches!(
            compile("var q = stream.window(wsize=4ms).seizure_detect().fft().svm()"),
            Err(PlanError::AmbiguousRole { .. })
        ));
        // Two serving chains.
        assert!(matches!(
            compile(
                "var a = stream.window(wsize=4ms).seizure_detect()\n\
                 var b = stream.window(wsize=4ms).seizure_detect()"
            ),
            Err(PlanError::BadProgram { .. })
        ));
    }

    #[test]
    fn budget_resolves_on_default_deployment() {
        let plan = ProgramPlan::compile(SEIZURE, &PlanConfig::default()).unwrap();
        let budget = resolve_budget(&plan, 4, 15.0).unwrap();
        assert!(budget.schedule.weighted_mbps > 0.0);
        assert!(budget.predicted_window_ms > 0.0);
        // A starvation budget is infeasible, typed as such.
        assert!(matches!(
            resolve_budget(&plan, 4, 1e-3),
            Err(PlanError::Infeasible { nodes: 4, .. })
        ));
    }
}
