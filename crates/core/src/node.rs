//! One SCALO implant.

use crate::config::ScaloConfig;
use crate::workspace::Workspace;
use scalo_lsh::ccheck::{CollisionChecker, HashMatch};
use scalo_lsh::eval::MeasureHasher;
use scalo_lsh::SignalHash;
use scalo_ml::svm::LinearSvm;
use scalo_signal::fft::{band_power_features_into, FftScratch};
use scalo_signal::stats::rms;
use scalo_storage::partition::{FailoverReport, PartitionKind, PartitionSet};
use scalo_trace::Stage;

/// Errors a node can report instead of panicking mid-protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeError {
    /// Seizure detection was requested before a detector was installed.
    DetectorMissing {
        /// The node asked to detect.
        node: usize,
    },
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::DetectorMissing { node } => {
                write!(f, "node {node}: no seizure detector installed")
            }
        }
    }
}

impl std::error::Error for NodeError {}

/// One implant: processing fabric state, local storage, hashers, and the
/// locally-trained seizure detector.
#[derive(Debug, Clone)]
pub struct Node {
    id: usize,
    hasher: MeasureHasher,
    ccheck: CollisionChecker,
    storage: PartitionSet,
    detector: Option<LinearSvm>,
    /// Local clock offset from true time, in µs (corrected by SNTP).
    pub clock_offset_us: i64,
    window_samples: usize,
    /// Whether [`Node::prepare_steady_state`] has already pre-sized the
    /// hash SRAM and NVM rings.
    prepared: bool,
}

impl Node {
    /// Builds a node per the system config.
    pub fn new(id: usize, config: &ScaloConfig) -> Self {
        Self {
            id,
            hasher: MeasureHasher::for_measure(config.measure, 120),
            ccheck: CollisionChecker::new(16 * 1024),
            storage: PartitionSet::standard(),
            detector: None,
            clock_offset_us: 0,
            window_samples: 120,
            prepared: false,
        }
    }

    /// Sizes the CCHECK SRAM and the signal/hash NVM partitions to the
    /// session's working set — `electrodes × windows_back` records — and
    /// prefills them with recyclable placeholder buffers, so steady-state
    /// ingest never allocates. `windows_back` must generously exceed the
    /// collision horizon in windows (evictions must stay strictly older
    /// than anything CCHECK or `stored_window` can still reference).
    /// Idempotent; call before the first ingest.
    ///
    /// # Panics
    ///
    /// Panics if called after windows have already been ingested.
    pub fn prepare_steady_state(&mut self, electrodes: usize, windows_back: usize) {
        if self.prepared {
            return;
        }
        self.prepared = true;
        let ring = (electrodes * windows_back).max(1);
        let hash_bytes = self.hasher.wire_bytes();
        self.ccheck.set_capacity(ring);
        self.ccheck.prefill(hash_bytes);
        self.storage
            .get_mut(PartitionKind::Signals)
            .prefill_ring(ring, self.window_samples * 2);
        self.storage
            .get_mut(PartitionKind::Hashes)
            .prefill_ring(ring, hash_bytes);
    }

    /// This node's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The node's hash function.
    pub fn hasher(&self) -> &MeasureHasher {
        &self.hasher
    }

    /// Local storage partitions.
    pub fn storage(&self) -> &PartitionSet {
        &self.storage
    }

    /// Mutable access to the local storage partitions.
    pub fn storage_mut(&mut self) -> &mut PartitionSet {
        &mut self.storage
    }

    /// Fails `bytes` of this node's NVM partition `kind` and remaps the
    /// partition's append window around the dead blocks (capacity is
    /// borrowed from lower-priority partitions).
    pub fn fail_nvm_block(&mut self, kind: PartitionKind, bytes: usize) -> FailoverReport {
        self.storage.fail_block(kind, bytes)
    }

    /// Installs a trained seizure detector.
    pub fn install_detector(&mut self, svm: LinearSvm) {
        self.detector = Some(svm);
    }

    /// Extracts the seizure-detection feature vector of a window (the
    /// BBF/FFT feature path of Figure 5: band powers + an amplitude
    /// feature).
    pub fn detection_features(window: &[f64]) -> Vec<f64> {
        let mut f = Vec::new();
        Self::detection_features_into(window, &mut FftScratch::new(), &mut f);
        f
    }

    /// [`Node::detection_features`] using caller-provided scratch, writing
    /// the feature vector into `out` (cleared first). Bit-identical to the
    /// allocating form; allocation-free once the buffers are warm.
    pub fn detection_features_into(window: &[f64], fft: &mut FftScratch, out: &mut Vec<f64>) {
        band_power_features_into(window, fft, out);
        out.push(rms(window));
    }

    /// Runs local seizure detection on a window. Returns
    /// [`NodeError::DetectorMissing`] if no detector is installed —
    /// callers decide whether that is fatal (a query) or just a
    /// non-vote (the propagation protocol).
    pub fn detect_seizure(&self, window: &[f64]) -> Result<bool, NodeError> {
        self.detect_seizure_ws(window, &mut FftScratch::new(), &mut Vec::new())
    }

    /// [`Node::detect_seizure`] using caller-provided scratch. Same
    /// decision bit-for-bit; allocation-free once the buffers are warm.
    pub fn detect_seizure_ws(
        &self,
        window: &[f64],
        fft: &mut FftScratch,
        features: &mut Vec<f64>,
    ) -> Result<bool, NodeError> {
        let detector = self
            .detector
            .as_ref()
            .ok_or(NodeError::DetectorMissing { node: self.id })?;
        Self::detection_features_into(window, fft, features);
        Ok(detector.predict(features))
    }

    /// [`Node::detect_seizure_ws`] with the feature extraction and the
    /// SVM vote recorded as separate [`Stage::Filter`] / [`Stage::Detect`]
    /// spans on the workspace recorder. Same decision bit-for-bit.
    pub fn detect_seizure_traced(
        &self,
        window: &[f64],
        ws: &mut Workspace,
    ) -> Result<bool, NodeError> {
        let detector = self
            .detector
            .as_ref()
            .ok_or(NodeError::DetectorMissing { node: self.id })?;
        ws.trace.begin(Stage::Filter);
        Self::detection_features_into(window, &mut ws.fft, &mut ws.features);
        ws.trace.end(Stage::Filter);
        ws.trace.begin(Stage::Detect);
        let vote = detector.predict(&ws.features);
        ws.trace.end(Stage::Detect);
        Ok(vote)
    }

    /// Ingests one electrode window: stores the signal, hashes it, and
    /// records the hash both in the NVM hash partition and the CCHECK
    /// SRAM.
    pub fn ingest_window(
        &mut self,
        electrode: usize,
        timestamp_us: u64,
        window: &[f64],
    ) -> SignalHash {
        let mut ws = Workspace::new();
        self.ingest_window_ws(electrode, timestamp_us, window, &mut ws);
        ws.hash
    }

    /// [`Node::ingest_window`] through a [`Workspace`]: quantised bytes,
    /// hash intermediates, and the hash itself land in reused buffers, and
    /// the NVM/SRAM stores recycle their evicted records' allocations.
    /// Stored records and the resulting hash (left in `ws.hash`) are
    /// byte-identical to the allocating form's; zero heap allocations once
    /// the node is prepared ([`Node::prepare_steady_state`]) and the
    /// workspace is warm.
    pub fn ingest_window_ws(
        &mut self,
        electrode: usize,
        timestamp_us: u64,
        window: &[f64],
        ws: &mut Workspace,
    ) {
        assert_eq!(window.len(), self.window_samples, "window length");
        ws.trace.begin(Stage::StorageWrite);
        ws.quantized.clear();
        for &x in window {
            ws.quantized
                .extend_from_slice(&((x * 8_192.0) as i16).to_le_bytes());
        }
        self.storage.get_mut(PartitionKind::Signals).append_bytes(
            timestamp_us,
            electrode as u32,
            &ws.quantized,
        );
        ws.trace.end(Stage::StorageWrite);
        ws.trace.begin(Stage::Sketch);
        match &self.hasher {
            MeasureHasher::Ssh(h) => h.hash_into(window, &mut ws.hash_scratch, &mut ws.hash),
            // The EMDH pipeline has no scratch entry point; the default
            // deployments hash via SSH, so this branch stays allocating.
            MeasureHasher::Emd(h) => ws.hash = h.hash(window),
        }
        ws.trace.end(Stage::Sketch);
        ws.trace.begin(Stage::StorageWrite);
        self.storage.get_mut(PartitionKind::Hashes).append_bytes(
            timestamp_us,
            electrode as u32,
            &ws.hash.0,
        );
        self.ccheck.record_copy(electrode, timestamp_us, &ws.hash);
        ws.trace.end(Stage::StorageWrite);
    }

    /// [`Node::ingest_window_ws`] batched over every electrode at once:
    /// the caller stages the window's channel-major block in `ws.block`
    /// (one channel per electrode) and this ingests all of them —
    /// quantised signal appends, one fused block hash, then hash appends
    /// and CCHECK staging, each phase in electrode order. Per-electrode
    /// hashes are left in `ws.hashes`.
    ///
    /// Stored records, CCHECK state, and hashes are byte-identical to
    /// looping [`Node::ingest_window_ws`] over the electrodes: the NVM
    /// partitions are independent, each sees its appends in the same
    /// order, and nothing reads them mid-loop — phase-batching reorders
    /// work *across* stores, never within one.
    pub fn ingest_block_ws(&mut self, timestamp_us: u64, ws: &mut Workspace) {
        let electrodes = ws.block.channels();
        assert_eq!(ws.block.samples(), self.window_samples, "window length");
        ws.trace.begin(Stage::StorageWrite);
        for e in 0..electrodes {
            ws.quantized.clear();
            ws.block.copy_channel_into(e, &mut ws.chan);
            for &x in &ws.chan {
                ws.quantized
                    .extend_from_slice(&((x * 8_192.0) as i16).to_le_bytes());
            }
            self.storage.get_mut(PartitionKind::Signals).append_bytes(
                timestamp_us,
                e as u32,
                &ws.quantized,
            );
        }
        ws.trace.end(Stage::StorageWrite);
        ws.trace.begin(Stage::Sketch);
        match &self.hasher {
            MeasureHasher::Ssh(h) => {
                h.hash_block_into(&ws.block, &mut ws.block_hash, &mut ws.hashes)
            }
            // The EMDH pipeline has no batched entry point; the default
            // deployments hash via SSH, so this branch stays per-channel
            // (and allocating), exactly like the legacy path.
            MeasureHasher::Emd(h) => {
                ws.hashes.clear();
                for e in 0..electrodes {
                    ws.block.copy_channel_into(e, &mut ws.chan);
                    ws.hashes.push(h.hash(&ws.chan));
                }
            }
        }
        ws.trace.end(Stage::Sketch);
        ws.trace.begin(Stage::StorageWrite);
        for (e, hash) in ws.hashes.iter().enumerate() {
            self.storage.get_mut(PartitionKind::Hashes).append_bytes(
                timestamp_us,
                e as u32,
                &hash.0,
            );
            self.ccheck.record_copy(e, timestamp_us, hash);
        }
        ws.trace.end(Stage::StorageWrite);
    }

    /// [`Node::ingest_block_ws`] with the Sketch phase precomputed by the
    /// cohort engine ([`crate::cohort`]): quantised signal appends still
    /// run from `ws.block` exactly as in the batched form, but the
    /// per-electrode hashes arrive in `hashes` — this node's lanes of a
    /// fused cross-session block hash — and are copied into `ws.hashes`
    /// instead of recomputed. Hashers are config-deterministic (no
    /// per-node or per-session seed) and every per-channel kernel is
    /// width-independent, so the fused lanes are bit-identical to what
    /// [`Node::ingest_block_ws`] would have computed: stored records and
    /// CCHECK state match byte for byte.
    ///
    /// # Panics
    ///
    /// Panics if `hashes` does not hold one hash per block channel.
    pub fn ingest_block_prehashed(
        &mut self,
        timestamp_us: u64,
        ws: &mut Workspace,
        hashes: &[SignalHash],
    ) {
        let electrodes = ws.block.channels();
        assert_eq!(ws.block.samples(), self.window_samples, "window length");
        assert_eq!(hashes.len(), electrodes, "one hash per electrode");
        ws.trace.begin(Stage::StorageWrite);
        for e in 0..electrodes {
            ws.quantized.clear();
            ws.block.copy_channel_into(e, &mut ws.chan);
            for &x in &ws.chan {
                ws.quantized
                    .extend_from_slice(&((x * 8_192.0) as i16).to_le_bytes());
            }
            self.storage.get_mut(PartitionKind::Signals).append_bytes(
                timestamp_us,
                e as u32,
                &ws.quantized,
            );
        }
        ws.trace.end(Stage::StorageWrite);
        // The hashes keep landing in `ws.hashes` (slots recycled) so the
        // workspace contract matches the self-hashing form.
        ws.hashes.resize_with(electrodes, || SignalHash(Vec::new()));
        for (slot, h) in ws.hashes.iter_mut().zip(hashes) {
            slot.0.clear();
            slot.0.extend_from_slice(&h.0);
        }
        ws.trace.begin(Stage::StorageWrite);
        for (e, hash) in ws.hashes.iter().enumerate() {
            self.storage.get_mut(PartitionKind::Hashes).append_bytes(
                timestamp_us,
                e as u32,
                &hash.0,
            );
            self.ccheck.record_copy(e, timestamp_us, hash);
        }
        ws.trace.end(Stage::StorageWrite);
    }

    /// The SVM vote on an already-extracted feature vector — the
    /// detection tail of [`Node::detect_seizure_ws`] when the cohort
    /// engine computed the features in a fused lane walk. Same decision
    /// bit-for-bit for the same features.
    pub fn detect_with_features(&self, features: &[f64]) -> Result<bool, NodeError> {
        let detector = self
            .detector
            .as_ref()
            .ok_or(NodeError::DetectorMissing { node: self.id })?;
        Ok(detector.predict(features))
    }

    /// Retrieves a stored signal window (dequantised).
    pub fn stored_window(&self, electrode: usize, timestamp_us: u64) -> Option<Vec<f64>> {
        let mut out = Vec::new();
        self.stored_window_into(electrode, timestamp_us, &mut out)
            .then_some(out)
    }

    /// [`Node::stored_window`] written into a caller-provided buffer
    /// (cleared first). Returns whether the window was found; byte-identical
    /// samples, allocation-free once `out` is warm.
    pub fn stored_window_into(
        &self,
        electrode: usize,
        timestamp_us: u64,
        out: &mut Vec<f64>,
    ) -> bool {
        let Some(rec) = self
            .storage
            .get(PartitionKind::Signals)
            .record_at(electrode as u32, timestamp_us)
        else {
            return false;
        };
        out.clear();
        out.extend(
            rec.data
                .chunks_exact(2)
                .map(|b| i16::from_le_bytes([b[0], b[1]]) as f64 / 8_192.0),
        );
        true
    }

    /// Matches received hashes against recent local hashes (CCHECK),
    /// probing within Hamming distance 1 (the PE's fixed probe set:
    /// `1 + 8·bytes` patterns per received hash), so near-identical
    /// cross-site hashes collide as the similarity semantics intend.
    pub fn check_collisions(
        &self,
        received: &[SignalHash],
        now_us: u64,
        horizon_us: u64,
    ) -> Vec<HashMatch> {
        if received.is_empty() {
            return Vec::new();
        }
        // Each received hash expands to `1 + 8·bytes` probes, so hashes
        // of different byte lengths expand to different probe counts —
        // the mapping back must use cumulative per-hash offsets, not a
        // uniform divisor.
        let mut probes = Vec::new();
        let mut probe_owner = Vec::new();
        for (i, h) in received.iter().enumerate() {
            let neighbors = h.neighbors(1);
            probe_owner.resize(probe_owner.len() + neighbors.len(), i);
            probes.extend(neighbors);
        }
        let mut matches = self.ccheck.matches(&probes, now_us, horizon_us);
        // Map probe indices back to the original received batch.
        for m in &mut matches {
            m.received_index = probe_owner[m.received_index];
        }
        matches
    }

    /// The **last** collision [`Node::check_collisions`] would report for
    /// `received`, as plain copyable fields `(received index, local
    /// electrode, local timestamp µs)` — the only fields the propagation
    /// exchange consumes. Same Hamming-1 probe expansion and match order
    /// as the allocating form, but the probe set, owner map, and sort
    /// scratch live in caller-provided buffers (slots recycled), so a warm
    /// call performs zero heap allocations and clones no records.
    pub fn last_collision_ws(
        &self,
        received: &[SignalHash],
        now_us: u64,
        horizon_us: u64,
        probes: &mut Vec<SignalHash>,
        probe_owner: &mut Vec<usize>,
        probe_order: &mut Vec<usize>,
    ) -> Option<(usize, usize, u64)> {
        if received.is_empty() {
            return None;
        }
        // Expand the whole batch into one probe list, recycling slot byte
        // buffers. Per hash the probe order matches `neighbors(1)`:
        // identity first, then byte-major single-bit flips.
        fn stage(probes: &mut Vec<SignalHash>, used: &mut usize, bytes: &[u8]) {
            if *used < probes.len() {
                let slot = &mut probes[*used].0;
                slot.clear();
                slot.extend_from_slice(bytes);
            } else {
                probes.push(SignalHash(bytes.to_vec()));
            }
            *used += 1;
        }
        let mut used = 0;
        probe_owner.clear();
        for (i, h) in received.iter().enumerate() {
            stage(probes, &mut used, &h.0);
            probe_owner.push(i);
            for byte in 0..h.0.len() {
                for bit in 0..8 {
                    stage(probes, &mut used, &h.0);
                    probes[used - 1].0[byte] ^= 1 << bit;
                    probe_owner.push(i);
                }
            }
        }
        probes.truncate(used);
        let mut last = None;
        self.ccheck
            .for_each_match(probes, now_us, horizon_us, probe_order, |idx, rec| {
                last = Some((probe_owner[idx], rec.electrode, rec.timestamp_us));
            });
        last
    }

    /// Number of hash records currently in the CCHECK SRAM.
    pub fn ccheck_len(&self) -> usize {
        self.ccheck.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_window(phase: f64) -> Vec<f64> {
        (0..120).map(|i| (i as f64 * 0.2 + phase).sin()).collect()
    }

    #[test]
    fn ingest_stores_signal_and_hash() {
        let cfg = ScaloConfig::default().with_nodes(1);
        let mut node = Node::new(0, &cfg);
        let h = node.ingest_window(3, 1_000, &test_window(0.0));
        assert!(!h.0.is_empty());
        assert_eq!(node.ccheck_len(), 1);
        let back = node.stored_window(3, 1_000).unwrap();
        assert_eq!(back.len(), 120);
        // Quantisation error bounded.
        for (a, b) in test_window(0.0).iter().zip(&back) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn identical_windows_collide_across_nodes() {
        let cfg = ScaloConfig::default().with_nodes(2);
        let mut a = Node::new(0, &cfg);
        let b = Node::new(1, &cfg);
        let w = test_window(0.3);
        let hash = a.ingest_window(0, 500, &w);
        // Node b computes the same hash for the same signal...
        let hash_b = match b.hasher() {
            MeasureHasher::Ssh(h) => h.hash(&w),
            MeasureHasher::Emd(h) => h.hash(&w),
        };
        assert_eq!(hash, hash_b, "hashers are system-wide deterministic");
        // ...and a's CCHECK finds the received hash.
        let matches = a.check_collisions(&[hash_b], 600, 100_000);
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn detector_roundtrip() {
        let cfg = ScaloConfig::default();
        let mut node = Node::new(0, &cfg);
        // A detector that fires on high RMS (last feature).
        let n_features = Node::detection_features(&test_window(0.0)).len();
        let mut w = vec![0.0; n_features];
        w[n_features - 1] = 1.0;
        node.install_detector(LinearSvm::new(w, -0.5));
        let quiet: Vec<f64> = vec![0.01; 120];
        let loud: Vec<f64> = test_window(0.0).iter().map(|x| x * 3.0).collect();
        assert!(!node.detect_seizure(&quiet).unwrap());
        assert!(node.detect_seizure(&loud).unwrap());
    }

    #[test]
    fn missing_detector_is_an_error_not_a_panic() {
        let cfg = ScaloConfig::default();
        let node = Node::new(7, &cfg);
        let err = node.detect_seizure(&test_window(0.0)).unwrap_err();
        assert_eq!(err, NodeError::DetectorMissing { node: 7 });
        assert!(err.to_string().contains("node 7"));
    }

    #[test]
    fn mixed_width_hashes_map_to_correct_received_index() {
        // Regression: with received hashes of differing byte lengths the
        // old uniform-divisor mapping pointed matches at the wrong hash.
        let cfg = ScaloConfig::default().with_nodes(1);
        let mut node = Node::new(0, &cfg);
        let wide = SignalHash(vec![0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77]);
        node.ccheck.record(5, 1_000, wide.clone());
        // A 1-byte hash first (9 probes), then the wide one (57 probes):
        // the wide hash's exact probe sits at probe index 9, which the
        // old `/ 33` mapping collapsed to received index 0.
        let narrow = SignalHash(vec![0xAB]);
        let matches = node.check_collisions(&[narrow, wide], 1_500, 100_000);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].received_index, 1, "must map to the wide hash");
        assert_eq!(matches[0].local.electrode, 5);
    }

    #[test]
    fn block_ingest_matches_per_electrode_ingest() {
        // The batched entry point must leave byte-identical NVM records
        // and CCHECK state: same stored windows, same hashes, same
        // collision responses, across several windows of drift.
        let cfg = ScaloConfig::default().with_nodes(1).with_electrodes(4);
        let mut per = Node::new(0, &cfg);
        let mut batched = Node::new(0, &cfg);
        let mut ws_per = Workspace::new();
        let mut ws_blk = Workspace::new();
        for w in 0..5u64 {
            let ts = 4_000 * (w + 1);
            let windows: Vec<Vec<f64>> = (0..4)
                .map(|e| test_window(w as f64 + e as f64 * 0.7))
                .collect();
            for (e, win) in windows.iter().enumerate() {
                per.ingest_window_ws(e, ts, win, &mut ws_per);
            }
            ws_blk.block.reset(4, 120);
            for (e, win) in windows.iter().enumerate() {
                ws_blk.block.fill_channel(e, win);
            }
            batched.ingest_block_ws(ts, &mut ws_blk);
            for e in 0..4 {
                assert_eq!(
                    per.stored_window(e, ts),
                    batched.stored_window(e, ts),
                    "window {w} electrode {e} stored signal"
                );
            }
        }
        assert_eq!(per.ccheck_len(), batched.ccheck_len());
        // Both CCHECKs answer a probe batch identically.
        let probe = match per.hasher() {
            MeasureHasher::Ssh(h) => h.hash(&test_window(2.0)),
            MeasureHasher::Emd(h) => h.hash(&test_window(2.0)),
        };
        let a = per.check_collisions(std::slice::from_ref(&probe), 25_000, 100_000);
        let b = batched.check_collisions(std::slice::from_ref(&probe), 25_000, 100_000);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "the probe must actually collide");
    }

    #[test]
    fn last_collision_ws_matches_check_collisions_last() {
        // Reuse the mixed-width regression scenario: the recycled-slot
        // form must report exactly the final match of the allocating
        // form, including the cumulative received-index mapping.
        let cfg = ScaloConfig::default().with_nodes(1);
        let mut node = Node::new(0, &cfg);
        let wide = SignalHash(vec![0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77]);
        node.ccheck.record(5, 1_000, wide.clone());
        node.ccheck.record(2, 1_200, SignalHash(vec![0xAB]));
        let narrow = SignalHash(vec![0xAB]);
        let received = vec![narrow, wide];

        let legacy = node.check_collisions(&received, 1_500, 100_000);
        // Dirty, undersized scratch: warm reuse must still agree.
        let mut probes = vec![SignalHash(vec![0xFF; 3]); 2];
        let mut owner = vec![9usize; 40];
        let mut order = Vec::new();
        for _ in 0..2 {
            let got = node.last_collision_ws(
                &received,
                1_500,
                100_000,
                &mut probes,
                &mut owner,
                &mut order,
            );
            let want = legacy
                .last()
                .map(|m| (m.received_index, m.local.electrode, m.local.timestamp_us));
            assert_eq!(got, want);
            assert!(got.is_some(), "scenario must produce a collision");
        }
        // And the empty batch degenerates the same way.
        assert_eq!(
            node.last_collision_ws(&[], 1_500, 100_000, &mut probes, &mut owner, &mut order),
            None
        );
    }

    #[test]
    fn nvm_block_failure_remaps_and_keeps_ingesting() {
        let cfg = ScaloConfig::default().with_nodes(1);
        let mut node = Node::new(0, &cfg);
        node.ingest_window(0, 1_000, &test_window(0.0));
        let report = node.fail_nvm_block(PartitionKind::Signals, 8 * 1024 * 1024);
        assert_eq!(report.failed_bytes, 8 * 1024 * 1024);
        assert_eq!(report.recovered_bytes(), 8 * 1024 * 1024);
        // Ingest keeps working against the remapped partition.
        node.ingest_window(0, 2_000, &test_window(0.1));
        assert!(node.stored_window(0, 2_000).is_some());
    }
}
