//! Cohort-batched session stepping: cross-session kernel fusion.
//!
//! A fleet serving many patients admits sessions whose per-window work
//! is *structurally identical* — same deployment shape, same recording
//! length, same decode cadence and transport — differing only in seed.
//! Stepping them one at a time re-pays the window's fixed costs once
//! per session: the modeled radio stall, the hash-kernel setup, the FFT
//! plan walk. A [`Cohort`] steps all of them through one window at
//! once:
//!
//! * the modeled radio stall ([`SessionSpec::io_stall_us`]) is served
//!   **once** for the whole cohort — the implant radios are concurrent
//!   devices, so one wall-clock wait covers every member;
//! * each implant position's windows are gathered into one fused
//!   channel-major block of `members × electrodes` lanes and hashed
//!   with **one** batched SSH walk (`SshHasher::hash_block_into`);
//! * detection features for every lane run through **one** shared
//!   [`FftScratch`] (the plan is built once and walked lane by lane);
//! * only then does each member run its own window step, consuming its
//!   lanes of the fused results (`Session::step_with_pre`) — storage,
//!   CCHECK, the confirmation exchange, movement decode, and every RNG
//!   draw stay per-member.
//!
//! Fusion is bitwise-safe by construction: hashers are deterministic
//! functions of the measure config (no per-session seed, see
//! `MeasureHasher::for_measure`), and every per-channel kernel in the
//! block engine is width-independent — a lane's sketch, z-norm, and
//! band powers do not depend on how many other lanes share the block.
//! Members' simulation clocks may drift apart (reliable-transport
//! airtime advances them), but clocks only feed member-local ingest
//! timestamps and the member's own exchange, both of which run inside
//! the per-member step. The equivalence tests below (and the fleet's
//! digest guards) hold cohort-stepped decisions byte-identical to solo
//! stepping.

use crate::apps::seizure::{WindowPre, WINDOW};
use crate::node::Node;
use crate::session::{Session, SessionSpec, StepOutcome};
use scalo_lsh::eval::MeasureHasher;
use scalo_lsh::ssh::BlockHashScratch;
use scalo_lsh::SignalHash;
use scalo_signal::block::ChannelBlock;
use scalo_signal::fft::FftScratch;

/// The structural identity sessions must share to step as one cohort:
/// every spec field that shapes the per-window work. Seeds (and ids,
/// priorities, deadlines, trace capacities) are deliberately excluded —
/// members are *different patients* with the same workload shape.
///
/// Float fields are keyed by bit pattern, so two specs compare equal
/// exactly when their recordings and channels are generated alike. Keys
/// order lexicographically (field order), giving the fleet's grouping
/// pass a deterministic cohort order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CohortKey {
    /// Implants per deployment.
    pub nodes: usize,
    /// Electrodes per implant (the fused block's per-member lane count).
    pub electrodes: usize,
    /// Recording length, as `f64::to_bits` (fixes `windows_total`, so
    /// members finish in lockstep).
    pub duration_bits: u64,
    /// Channel bit-error ratio, as `f64::to_bits`.
    pub ber_bits: u64,
    /// Movement-mix cadence in windows.
    pub movement_every: usize,
    /// Whether hash broadcasts ride the reliable transport.
    pub use_reliable_transport: bool,
    /// Modeled per-window device wait in µs (shared by the cohort).
    pub io_stall_us: u64,
}

impl CohortKey {
    /// The cohort a spec would join.
    pub fn of(spec: &SessionSpec) -> Self {
        Self {
            nodes: spec.nodes,
            electrodes: spec.electrodes,
            duration_bits: spec.duration_s.to_bits(),
            ber_bits: spec.ber.to_bits(),
            movement_every: spec.movement_every,
            use_reliable_transport: spec.use_reliable_transport,
            io_stall_us: spec.io_stall_us,
        }
    }
}

/// Reusable scratch for stepping one cohort: the fused channel-major
/// block, the batched hash intermediates, and per-node lane results.
/// One `Cohort` serves any member count; buffers grow to the largest
/// cohort seen and are recycled window to window (steady-state cohort
/// windows allocate nothing).
#[derive(Debug, Default)]
pub struct Cohort {
    /// `members × electrodes` lanes of the current window, per implant
    /// position in turn.
    fused: ChannelBlock,
    /// Batched SSH intermediates for the fused block.
    scratch: BlockHashScratch,
    /// Fused ingest hashes, indexed `[node][lane]`.
    hashes: Vec<Vec<SignalHash>>,
    /// Fused detection features, indexed `[node]`, `n_feat` per lane.
    features: Vec<Vec<f64>>,
    /// The shared FFT scratch — one plan, walked over every lane.
    fft: FftScratch,
    /// One gathered lane (contiguous) for per-lane kernels.
    chan: Vec<f64>,
    /// One lane's feature vector before it lands in the flat buffer.
    feat_tmp: Vec<f64>,
    /// Features per lane.
    n_feat: usize,
}

impl Cohort {
    /// An empty cohort scratch; the first window sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Steps every session in `sessions` through exactly one window,
    /// pushing one [`StepOutcome`] per member (in order) onto `out`
    /// (cleared first). Members must share a [`CohortKey`] and sit at
    /// the same window cursor — the cohort steps in lockstep from
    /// admission, and a shared `duration_bits` makes them finish
    /// together. Decisions are bit-identical to calling
    /// [`Session::step`] on each member.
    ///
    /// # Panics
    ///
    /// Panics if `sessions` is empty, or if members disagree on the
    /// cohort key or window cursor.
    pub fn step_window(&mut self, sessions: &mut [Session], out: &mut Vec<StepOutcome>) {
        out.clear();
        let first = &sessions[0];
        let key = CohortKey::of(first.spec());
        let cursor = first.window();
        for s in sessions.iter() {
            assert_eq!(CohortKey::of(s.spec()), key, "cohort member shape drift");
            assert_eq!(s.window(), cursor, "cohort member cursor drift");
        }
        if first.is_done() {
            // Lockstep: everyone is done; per-member step() returns the
            // no-op "done" outcome without touching the recording.
            for s in sessions.iter_mut() {
                out.push(s.step());
            }
            return;
        }
        let members = sessions.len();
        let electrodes = key.electrodes;
        let lanes = members * electrodes;
        let w = cursor as usize;
        let t0 = w * WINDOW;

        // One wall-clock radio wait covers the whole cohort: the modeled
        // implant radios stream concurrently. Each member records its
        // share as an external RadioWait span so traces keep attributing
        // the wait.
        let stall_ns = key.io_stall_us * 1_000;
        if key.io_stall_us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(key.io_stall_us));
        }

        let Self {
            fused,
            scratch,
            hashes,
            features,
            fft,
            chan,
            feat_tmp,
            n_feat,
        } = self;
        if hashes.len() < key.nodes {
            hashes.resize_with(key.nodes, Vec::new);
        }
        if features.len() < key.nodes {
            features.resize_with(key.nodes, Vec::new);
        }
        for node_id in 0..key.nodes {
            // Gather every member's window at this implant position into
            // the fused block: lane `m * electrodes + e` is member m's
            // electrode e.
            fused.reset(lanes, WINDOW);
            for (m, s) in sessions.iter().enumerate() {
                let rec = s.recording();
                for e in 0..electrodes {
                    fused.fill_channel(
                        m * electrodes + e,
                        &rec.nodes[node_id].channels[e][t0..t0 + WINDOW],
                    );
                }
            }
            // One batched hash over all members' lanes. Any member's
            // hasher works: they are identical functions of the measure
            // config.
            let node_hashes = &mut hashes[node_id];
            match sessions[0].app().system().node(node_id).hasher() {
                MeasureHasher::Ssh(h) => h.hash_block_into(fused, scratch, node_hashes),
                // EMDH has no batched entry point; fall back to the
                // per-lane walk (still one loop for the whole cohort).
                MeasureHasher::Emd(h) => {
                    node_hashes.clear();
                    for lane in 0..lanes {
                        fused.copy_channel_into(lane, chan);
                        node_hashes.push(h.hash(chan));
                    }
                }
            }
            // One FFT-plan walk over every lane for the detection
            // features.
            let node_feats = &mut features[node_id];
            node_feats.clear();
            for lane in 0..lanes {
                fused.copy_channel_into(lane, chan);
                Node::detection_features_into(chan, fft, feat_tmp);
                *n_feat = feat_tmp.len();
                node_feats.extend_from_slice(feat_tmp);
            }
        }

        // Fan out: each member consumes its lanes and runs its own
        // protocol step (storage, CCHECK, exchange, movement, RNG).
        for (m, s) in sessions.iter_mut().enumerate() {
            let pre = WindowPre {
                hashes,
                features,
                n_feat: *n_feat,
                lane0: m * electrodes,
            };
            out.push(s.step_with_pre(&pre, stall_ns));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(id: u64, seed: u64) -> SessionSpec {
        SessionSpec::new(id, seed).with_duration_s(0.4)
    }

    /// Steps `specs` solo and as one cohort; both runs must agree on
    /// every decision digest, step digest, and RNG cursor.
    fn assert_cohort_matches_solo(specs: &[SessionSpec]) {
        let mut solo: Vec<Session> = specs.iter().cloned().map(Session::new).collect();
        for s in solo.iter_mut() {
            while !s.step().done {}
        }
        let mut batched: Vec<Session> = specs.iter().cloned().map(Session::new).collect();
        let mut cohort = Cohort::new();
        let mut out = Vec::new();
        loop {
            cohort.step_window(&mut batched, &mut out);
            if out.iter().all(|o| o.done) {
                break;
            }
        }
        for (a, b) in solo.iter().zip(&batched) {
            assert_eq!(a.step_digest(), b.step_digest(), "session {}", a.id());
            assert_eq!(
                a.decision_digest(),
                b.decision_digest(),
                "session {}",
                a.id()
            );
        }
    }

    #[test]
    fn singleton_cohort_matches_solo() {
        assert_cohort_matches_solo(&[shape(0, 0x11)]);
    }

    #[test]
    fn prime_cohort_matches_solo() {
        let specs: Vec<SessionSpec> = (0..3).map(|i| shape(i, 0x40 + 7 * i)).collect();
        assert_cohort_matches_solo(&specs);
    }

    #[test]
    fn movement_mix_cohort_matches_solo() {
        let specs: Vec<SessionSpec> = (0..2)
            .map(|i| shape(i, 0x90 + i).with_movement_every(25))
            .collect();
        assert_cohort_matches_solo(&specs);
    }

    #[test]
    fn reliable_noisy_cohort_matches_solo() {
        // Reliable transport advances member clocks by per-member
        // airtime — the case where members' `now_us` drift apart while
        // the fused kernels stay legal.
        let specs: Vec<SessionSpec> = (0..4)
            .map(|i| {
                let mut s = shape(i, 0x23 + i).with_ber(1e-3);
                s.use_reliable_transport = true;
                s
            })
            .collect();
        assert_cohort_matches_solo(&specs);
    }

    #[test]
    fn membership_churn_keeps_digests() {
        // Four members step together for a while; one leaves mid-run
        // (continues solo), the remaining three keep cohort-stepping.
        // Everyone must still match an all-solo twin.
        let specs: Vec<SessionSpec> = (0..4).map(|i| shape(i, 0x77 + 3 * i)).collect();
        let mut solo: Vec<Session> = specs.iter().cloned().map(Session::new).collect();
        for s in solo.iter_mut() {
            while !s.step().done {}
        }

        let mut members: Vec<Session> = specs.iter().cloned().map(Session::new).collect();
        let mut cohort = Cohort::new();
        let mut out = Vec::new();
        for _ in 0..40 {
            cohort.step_window(&mut members, &mut out);
        }
        let mut leaver = members.remove(1);
        while !leaver.step().done {}
        loop {
            cohort.step_window(&mut members, &mut out);
            if out.iter().all(|o| o.done) {
                break;
            }
        }
        members.insert(1, leaver);
        for (a, b) in solo.iter().zip(&members) {
            assert_eq!(
                a.decision_digest(),
                b.decision_digest(),
                "session {}",
                a.id()
            );
        }
    }

    #[test]
    fn key_separates_shapes_and_ignores_seeds() {
        let a = CohortKey::of(&shape(0, 1));
        assert_eq!(a, CohortKey::of(&shape(9, 2)), "seed and id are not shape");
        assert_ne!(a, CohortKey::of(&shape(0, 1).with_movement_every(25)));
        assert_ne!(a, CohortKey::of(&shape(0, 1).with_deployment(4, 4)));
        assert_ne!(a, CohortKey::of(&shape(0, 1).with_ber(1e-3)));
        assert_ne!(a, CohortKey::of(&shape(0, 1).with_io_stall_us(100)));
        assert_ne!(
            a,
            CohortKey::of(&SessionSpec::new(0, 1).with_duration_s(0.8))
        );
    }
}
