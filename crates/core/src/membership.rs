//! Failure detection and membership.
//!
//! Each node keeps a local view of its peers, refreshed by heartbeats
//! piggybacked on the TDMA rounds ([`crate::Scalo`] runs one heartbeat
//! exchange per interval). Silence moves a peer through a two-stage
//! state machine — `Alive → Suspect → Evicted` — with thresholds wide
//! enough that ordinary packet loss (a missed heartbeat or two at the
//! nominal BER) never evicts a healthy node. On eviction the system
//! re-solves its schedule over the survivors so applications degrade to
//! the live quorum instead of silently waiting on dead peers.

/// Timing thresholds of the failure detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipConfig {
    /// Gap between heartbeat rounds, in µs (defaults to the 4 ms
    /// analysis-window cadence so heartbeats ride existing slots).
    pub heartbeat_interval_us: u64,
    /// Silence before a peer is suspected, in µs.
    pub suspect_after_us: u64,
    /// Silence before a suspected peer is evicted, in µs.
    pub evict_after_us: u64,
}

impl Default for MembershipConfig {
    /// Suspect after 4 missed heartbeats, evict after 10: at BER 1e-4 a
    /// heartbeat frame is lost ~2% of the time, so four consecutive
    /// losses from a live peer have probability ~1e-7 per interval.
    fn default() -> Self {
        Self {
            heartbeat_interval_us: 4_000,
            suspect_after_us: 16_000,
            evict_after_us: 40_000,
        }
    }
}

/// A peer's state in one node's local view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerState {
    /// Heard from recently.
    Alive,
    /// Silent past the suspicion threshold.
    Suspect,
    /// Silent past the eviction threshold; excluded from schedules.
    Evicted,
}

/// A state transition observed by one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipEvent {
    /// `peer` crossed the suspicion threshold.
    Suspected { peer: usize },
    /// `peer` crossed the eviction threshold.
    Evicted { peer: usize },
    /// An evicted `peer` was heard from again.
    Rejoined { peer: usize },
}

/// One node's local membership view.
#[derive(Debug, Clone, PartialEq)]
pub struct MembershipView {
    owner: usize,
    cfg: MembershipConfig,
    last_heard_us: Vec<u64>,
    states: Vec<PeerState>,
}

impl MembershipView {
    /// A fresh view at `owner` over `nodes` peers, all alive as of
    /// `now_us`.
    ///
    /// # Panics
    ///
    /// Panics unless `owner < nodes`.
    pub fn new(owner: usize, nodes: usize, cfg: MembershipConfig, now_us: u64) -> Self {
        assert!(owner < nodes, "owner out of range");
        Self {
            owner,
            cfg,
            last_heard_us: vec![now_us; nodes],
            states: vec![PeerState::Alive; nodes],
        }
    }

    /// The node holding this view.
    pub fn owner(&self) -> usize {
        self.owner
    }

    /// The detector's thresholds.
    pub fn config(&self) -> MembershipConfig {
        self.cfg
    }

    /// Current state of `peer` (the owner is always `Alive` to itself).
    pub fn state(&self, peer: usize) -> PeerState {
        self.states[peer]
    }

    /// Records a heartbeat (or any packet) from `peer` at `now_us`.
    /// Returns a [`MembershipEvent::Rejoined`] if the peer had been
    /// evicted.
    pub fn observe(&mut self, peer: usize, now_us: u64) -> Option<MembershipEvent> {
        self.last_heard_us[peer] = self.last_heard_us[peer].max(now_us);
        let was = self.states[peer];
        self.states[peer] = PeerState::Alive;
        (was == PeerState::Evicted).then_some(MembershipEvent::Rejoined { peer })
    }

    /// Advances the detector to `now_us`, returning every transition
    /// taken (suspicions before evictions, in peer order).
    pub fn tick(&mut self, now_us: u64) -> Vec<MembershipEvent> {
        let mut events = Vec::new();
        for peer in 0..self.states.len() {
            if peer == self.owner {
                continue;
            }
            let silent_us = now_us.saturating_sub(self.last_heard_us[peer]);
            match self.states[peer] {
                PeerState::Alive if silent_us >= self.cfg.suspect_after_us => {
                    self.states[peer] = PeerState::Suspect;
                    events.push(MembershipEvent::Suspected { peer });
                    if silent_us >= self.cfg.evict_after_us {
                        self.states[peer] = PeerState::Evicted;
                        events.push(MembershipEvent::Evicted { peer });
                    }
                }
                PeerState::Suspect if silent_us >= self.cfg.evict_after_us => {
                    self.states[peer] = PeerState::Evicted;
                    events.push(MembershipEvent::Evicted { peer });
                }
                _ => {}
            }
        }
        events
    }

    /// Members not evicted (the owner included), ascending.
    pub fn live_members(&self) -> Vec<usize> {
        (0..self.states.len())
            .filter(|&p| p == self.owner || self.states[p] != PeerState::Evicted)
            .collect()
    }

    /// Whether the live members form a strict majority of the full
    /// membership.
    pub fn has_quorum(&self) -> bool {
        self.live_members().len() * 2 > self.states.len()
    }

    /// Whether the owner is the lowest-id live member of its own view —
    /// the (deterministic) coordinator that triggers re-scheduling.
    pub fn is_coordinator(&self) -> bool {
        self.live_members().first() == Some(&self.owner)
    }

    /// Resets the view to all-alive as of `now_us` (a recovered node
    /// rejoins with no memory of past silence).
    pub fn reset(&mut self, now_us: u64) {
        self.last_heard_us.fill(now_us);
        self.states.fill(PeerState::Alive);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view() -> MembershipView {
        MembershipView::new(0, 4, MembershipConfig::default(), 0)
    }

    #[test]
    fn silence_walks_suspect_then_evict() {
        let mut v = view();
        assert!(v.tick(15_999).is_empty());
        let ev = v.tick(16_000);
        assert_eq!(ev.len(), 3, "{ev:?}"); // peers 1..3 all suspected
        assert_eq!(v.state(1), PeerState::Suspect);
        assert!(v.tick(39_999).is_empty());
        let ev = v.tick(40_000);
        assert!(ev
            .iter()
            .all(|e| matches!(e, MembershipEvent::Evicted { .. })));
        assert_eq!(v.state(2), PeerState::Evicted);
        assert_eq!(v.live_members(), vec![0]);
        assert!(!v.has_quorum());
    }

    #[test]
    fn heartbeats_keep_peers_alive() {
        let mut v = view();
        for t in (0..100_000).step_by(4_000) {
            for p in 1..4 {
                v.observe(p, t);
            }
            assert!(v.tick(t).is_empty(), "at {t}");
        }
        assert_eq!(v.live_members(), vec![0, 1, 2, 3]);
        assert!(v.has_quorum());
    }

    #[test]
    fn one_silent_peer_evicted_others_stay() {
        let mut v = view();
        for t in (0..60_000).step_by(4_000) {
            v.observe(1, t);
            v.observe(2, t);
            // peer 3 is silent
            v.tick(t);
        }
        assert_eq!(v.state(3), PeerState::Evicted);
        assert_eq!(v.live_members(), vec![0, 1, 2]);
        assert!(v.has_quorum(), "3 of 4 is a quorum");
    }

    #[test]
    fn long_gap_emits_suspect_and_evict_together() {
        let mut v = view();
        let ev = v.tick(100_000);
        let about_1: Vec<_> = ev
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    MembershipEvent::Suspected { peer: 1 } | MembershipEvent::Evicted { peer: 1 }
                )
            })
            .collect();
        assert_eq!(about_1.len(), 2, "{ev:?}");
        assert_eq!(v.state(1), PeerState::Evicted);
    }

    #[test]
    fn rejoin_after_eviction() {
        let mut v = view();
        v.tick(50_000);
        assert_eq!(v.state(1), PeerState::Evicted);
        let ev = v.observe(1, 55_000);
        assert_eq!(ev, Some(MembershipEvent::Rejoined { peer: 1 }));
        assert_eq!(v.state(1), PeerState::Alive);
        assert!(v.tick(55_000).is_empty());
    }

    #[test]
    fn coordinator_is_lowest_live_member() {
        let mut v = MembershipView::new(2, 4, MembershipConfig::default(), 0);
        assert!(!v.is_coordinator(), "node 0 outranks node 2");
        // Nodes 0 and 1 go silent; 3 keeps talking.
        for t in (0..60_000).step_by(4_000) {
            v.observe(3, t);
            v.tick(t);
        }
        assert_eq!(v.live_members(), vec![2, 3]);
        assert!(v.is_coordinator());
    }

    #[test]
    fn observe_ignores_stale_timestamps() {
        let mut v = view();
        v.observe(1, 10_000);
        v.observe(1, 2_000); // late, out-of-order packet
        v.tick(20_000);
        assert_eq!(v.state(1), PeerState::Alive, "fresh observation holds");
    }
}
