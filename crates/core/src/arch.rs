//! Alternative BCI architectures (Table 2) and the Figure 8a comparison.
//!
//! Five designs share the component models:
//!
//! * **SCALO** — distributed, hash-filtered, wireless (this system);
//! * **SCALO No-Hash** — distributed but exact-comparison only;
//! * **Central** — one wired processor with hash PEs;
//! * **Central No-Hash** — one wired processor, exact comparison;
//! * **HALO+NVM** — one wired HALO (no SCALO PEs): hashing and linear
//!   algebra fall back to the 20 MHz RISC-V MC.
//!
//! Derating constants encode the structural differences: exact
//! comparison must score *every* candidate pair the hash filter would
//! have pruned (≈250× more similarity work; ≈25 template comparisons
//! per spike), and MC software emulation of a missing PE runs ~10–100×
//! slower than the PE (20 MHz, ~100 cycles/sample vs single-cycle
//! pipelines).

use scalo_sched::throughput::max_aggregate_throughput_mbps;
use scalo_sched::{Scenario, TaskKind};
use serde::Serialize;

/// Candidate pairs the hash filter prunes before exact comparison; an
/// exact-only design performs all of them (§6.1's ~250× gap).
pub const CANDIDATE_FILTER_FACTOR: f64 = 250.0;

/// Templates each spike must be exactly compared against without hash
/// lookup (§6.1's 24.5× gap: ~25 stored templates).
pub const TEMPLATE_COMPARE_FACTOR: f64 = 24.5;

/// MC software slowdown for hash generation/matching vs the LSH PEs.
pub const MC_HASH_SLOWDOWN: f64 = 100.0;

/// MC software slowdown for dense linear algebra vs the LIN ALG PEs.
pub const MC_LINALG_SLOWDOWN: f64 = 10.0;

/// HALO+NVM spike sorting: hashing on the MC is *slower* than exact
/// matching on a PE (§6.1: 40% lower than Central No-Hash).
pub const MC_SORT_VS_EXACT_PE: f64 = 0.6;

/// The five designs of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Architecture {
    /// The proposed distributed, hash-filtered system.
    Scalo,
    /// Distributed, exact comparison only.
    ScaloNoHash,
    /// Centralised wired processor with SCALO's PEs.
    Central,
    /// Centralised wired processor, exact comparison only.
    CentralNoHash,
    /// Prior-work HALO plus an NVM (no SCALO PEs).
    HaloNvm,
}

impl Architecture {
    /// All five, in Table 2 order.
    pub const ALL: [Architecture; 5] = [
        Architecture::Scalo,
        Architecture::ScaloNoHash,
        Architecture::CentralNoHash,
        Architecture::Central,
        Architecture::HaloNvm,
    ];

    /// Paper name.
    pub fn name(self) -> &'static str {
        match self {
            Architecture::Scalo => "SCALO",
            Architecture::ScaloNoHash => "SCALO No-Hash",
            Architecture::Central => "Central",
            Architecture::CentralNoHash => "Central No-Hash",
            Architecture::HaloNvm => "HALO+NVM",
        }
    }

    /// Whether this design distributes processing across implants.
    pub fn is_distributed(self) -> bool {
        matches!(self, Architecture::Scalo | Architecture::ScaloNoHash)
    }

    /// Whether this design can hash on dedicated PEs.
    pub fn has_hash_pes(self) -> bool {
        matches!(self, Architecture::Scalo | Architecture::Central)
    }
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The six Figure 8a task columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Fig8Task {
    /// Local seizure detection.
    SeizureDetection,
    /// Distributed signal similarity.
    SignalSimilarity,
    /// Movement intent, SVM.
    MiSvm,
    /// Movement intent, Kalman filter.
    MiKf,
    /// Movement intent, shallow NN.
    MiNn,
    /// Spike sorting.
    SpikeSorting,
}

impl Fig8Task {
    /// All six, in Figure 8a order.
    pub const ALL: [Fig8Task; 6] = [
        Fig8Task::SeizureDetection,
        Fig8Task::SignalSimilarity,
        Fig8Task::MiSvm,
        Fig8Task::MiKf,
        Fig8Task::MiNn,
        Fig8Task::SpikeSorting,
    ];

    /// Figure label.
    pub fn name(self) -> &'static str {
        match self {
            Fig8Task::SeizureDetection => "Seizure Detection",
            Fig8Task::SignalSimilarity => "Signal Similarity",
            Fig8Task::MiSvm => "MI SVM",
            Fig8Task::MiKf => "MI KF",
            Fig8Task::MiNn => "MI NN",
            Fig8Task::SpikeSorting => "Spike Sorting",
        }
    }
}

impl std::fmt::Display for Fig8Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Maximum aggregate throughput of `arch` on `task` with `nodes` sensor
/// sites at `power_mw` per implant (the Figure 8a y-axis).
pub fn architecture_throughput(
    arch: Architecture,
    task: Fig8Task,
    nodes: usize,
    power_mw: f64,
) -> f64 {
    let distributed = Scenario::new(nodes, power_mw);
    // Centralised designs: one wired processor (no intra radio, so the
    // radio's 1.71 mW returns to compute — approximated by the 1-node
    // scenario, whose network bound never binds thanks to wires).
    let central = Scenario::new(1, power_mw);
    match (arch, task) {
        // ---- Seizure detection: local everywhere; every design has the
        // HALO feature PEs.
        (a, Fig8Task::SeizureDetection) => {
            let per_node = max_aggregate_throughput_mbps(TaskKind::SeizureDetection, &central);
            if a.is_distributed() {
                per_node * nodes as f64
            } else {
                per_node
            }
        }

        // ---- Signal similarity.
        (Architecture::Scalo, Fig8Task::SignalSimilarity) => {
            max_aggregate_throughput_mbps(TaskKind::HashAllAll, &distributed)
        }
        (Architecture::ScaloNoHash, Fig8Task::SignalSimilarity) => {
            max_aggregate_throughput_mbps(TaskKind::DtwAllAll, &distributed)
        }
        (Architecture::Central, Fig8Task::SignalSimilarity) => {
            max_aggregate_throughput_mbps(TaskKind::HashAllAll, &central)
        }
        (Architecture::CentralNoHash, Fig8Task::SignalSimilarity) => {
            max_aggregate_throughput_mbps(TaskKind::HashAllAll, &central) / CANDIDATE_FILTER_FACTOR
        }
        (Architecture::HaloNvm, Fig8Task::SignalSimilarity) => {
            max_aggregate_throughput_mbps(TaskKind::HashAllAll, &central) / MC_HASH_SLOWDOWN
        }

        // ---- MI SVM: every design has SVM + feature PEs.
        (a, Fig8Task::MiSvm) => {
            let scenario = if a.is_distributed() {
                &distributed
            } else {
                &central
            };
            max_aggregate_throughput_mbps(TaskKind::MiSvm, scenario)
        }

        // ---- MI KF: SCALO centralises anyway (§6.1: similar throughput
        // to Central); HALO+NVM runs the linear algebra on the MC.
        (Architecture::Scalo | Architecture::ScaloNoHash, Fig8Task::MiKf) => {
            max_aggregate_throughput_mbps(TaskKind::MiKf, &distributed)
        }
        (Architecture::Central | Architecture::CentralNoHash, Fig8Task::MiKf) => {
            max_aggregate_throughput_mbps(TaskKind::MiKf, &Scenario::new(4, power_mw))
        }
        (Architecture::HaloNvm, Fig8Task::MiKf) => {
            max_aggregate_throughput_mbps(TaskKind::MiKf, &Scenario::new(4, power_mw))
                / MC_LINALG_SLOWDOWN
        }

        // ---- MI NN.
        (Architecture::Scalo | Architecture::ScaloNoHash, Fig8Task::MiNn) => {
            max_aggregate_throughput_mbps(TaskKind::MiNn, &distributed)
        }
        (Architecture::Central | Architecture::CentralNoHash, Fig8Task::MiNn) => {
            max_aggregate_throughput_mbps(TaskKind::MiNn, &central)
        }
        (Architecture::HaloNvm, Fig8Task::MiNn) => {
            max_aggregate_throughput_mbps(TaskKind::MiNn, &central) / MC_LINALG_SLOWDOWN
        }

        // ---- Spike sorting: local; hashes vs exact template matching.
        (Architecture::Scalo, Fig8Task::SpikeSorting) => {
            max_aggregate_throughput_mbps(TaskKind::SpikeSorting, &central) * nodes as f64
        }
        (Architecture::ScaloNoHash, Fig8Task::SpikeSorting) => {
            max_aggregate_throughput_mbps(TaskKind::SpikeSorting, &central) * nodes as f64
                / TEMPLATE_COMPARE_FACTOR
        }
        (Architecture::Central, Fig8Task::SpikeSorting) => {
            max_aggregate_throughput_mbps(TaskKind::SpikeSorting, &central)
        }
        (Architecture::CentralNoHash, Fig8Task::SpikeSorting) => {
            max_aggregate_throughput_mbps(TaskKind::SpikeSorting, &central)
                / TEMPLATE_COMPARE_FACTOR
        }
        (Architecture::HaloNvm, Fig8Task::SpikeSorting) => {
            max_aggregate_throughput_mbps(TaskKind::SpikeSorting, &central)
                / TEMPLATE_COMPARE_FACTOR
                * MC_SORT_VS_EXACT_PE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NODES: usize = 11;
    const POWER: f64 = 15.0;

    fn thr(a: Architecture, t: Fig8Task) -> f64 {
        architecture_throughput(a, t, NODES, POWER)
    }

    #[test]
    fn scalo_wins_every_task() {
        for task in Fig8Task::ALL {
            let scalo = thr(Architecture::Scalo, task);
            for arch in [
                Architecture::ScaloNoHash,
                Architecture::Central,
                Architecture::CentralNoHash,
                Architecture::HaloNvm,
            ] {
                assert!(
                    scalo >= thr(arch, task) * 0.99,
                    "{task}: SCALO {scalo} vs {arch} {}",
                    thr(arch, task)
                );
            }
        }
    }

    #[test]
    fn scalo_is_order_of_magnitude_over_central_except_kf() {
        // §6.1: "Central has 10× lower throughput than SCALO for all
        // applications. One exception is MI KF."
        for task in [
            Fig8Task::SeizureDetection,
            Fig8Task::MiSvm,
            Fig8Task::MiNn,
            Fig8Task::SpikeSorting,
        ] {
            let ratio = thr(Architecture::Scalo, task) / thr(Architecture::Central, task);
            assert!(ratio > 5.0, "{task}: ratio {ratio}");
        }
        // Distributed similarity still wins clearly, though the pairwise
        // exchange keeps the gap below the local tasks' full k×.
        let sim = thr(Architecture::Scalo, Fig8Task::SignalSimilarity)
            / thr(Architecture::Central, Fig8Task::SignalSimilarity);
        assert!(sim > 3.0, "similarity ratio {sim}");
        let kf_ratio =
            thr(Architecture::Scalo, Fig8Task::MiKf) / thr(Architecture::Central, Fig8Task::MiKf);
        assert!(kf_ratio < 1.5, "KF parity: ratio {kf_ratio}");
    }

    #[test]
    fn central_no_hash_collapses_on_similarity() {
        // §6.1: 250× lower than Central for signal similarity.
        let ratio = thr(Architecture::Central, Fig8Task::SignalSimilarity)
            / thr(Architecture::CentralNoHash, Fig8Task::SignalSimilarity);
        assert!((ratio - 250.0).abs() < 1.0, "{ratio}");
    }

    #[test]
    fn central_no_hash_spike_sorting_gap() {
        // §6.1: 24.5× lower than Central for spike sorting.
        let ratio = thr(Architecture::Central, Fig8Task::SpikeSorting)
            / thr(Architecture::CentralNoHash, Fig8Task::SpikeSorting);
        assert!((ratio - 24.5).abs() < 0.1, "{ratio}");
    }

    #[test]
    fn halo_nvm_matches_central_on_pe_covered_tasks() {
        // §6.1: HALO+NVM equals Central for seizure detection and MI SVM.
        for task in [Fig8Task::SeizureDetection, Fig8Task::MiSvm] {
            let h = thr(Architecture::HaloNvm, task);
            let c = thr(Architecture::Central, task);
            assert!((h - c).abs() / c < 1e-9, "{task}: {h} vs {c}");
        }
    }

    #[test]
    fn halo_nvm_sorting_is_worse_than_exact_on_pe() {
        // §6.1: hashing on the MC loses to exact matching on a PE by 40%.
        let h = thr(Architecture::HaloNvm, Fig8Task::SpikeSorting);
        let c = thr(Architecture::CentralNoHash, Fig8Task::SpikeSorting);
        assert!((h / c - 0.6).abs() < 1e-9, "{h} vs {c}");
    }

    #[test]
    fn scalo_similarity_processing_rate_band() {
        // §6.1: SCALO's processing rates are 10–385× HALO+NVM's.
        for task in [
            Fig8Task::SignalSimilarity,
            Fig8Task::SpikeSorting,
            Fig8Task::MiNn,
        ] {
            let ratio = thr(Architecture::Scalo, task) / thr(Architecture::HaloNvm, task);
            assert!((10.0..2_000.0).contains(&ratio), "{task}: {ratio}");
        }
    }
}
