//! The distributed system: nodes plus the TDMA wireless medium.
//!
//! Beyond the happy-path broadcast medium, the system carries the
//! fault-tolerance machinery of the robustness studies:
//!
//! * a [`FaultPlan`] drained as simulated time
//!   advances — crashes, recoveries, BER spikes, clock drift, NVM block
//!   failures — all deterministic per seed;
//! * heartbeat-driven failure detection
//!   ([`crate::membership::MembershipView`] per node): silence walks a
//!   peer through suspicion to eviction, at which point the
//!   lowest-id live node re-solves the TDMA schedule over the
//!   survivors and re-runs the ILP so throughput planning matches the
//!   shrunken membership;
//! * optional reliable delivery ([`scalo_net::reliable`]) with per-flow
//!   sequence numbers, ACKs, bounded retransmission, and duplicate
//!   suppression, its airtime charged against the simulation clock.

use crate::config::ScaloConfig;
use crate::fault::{Fault, FaultEvent, FaultPlan};
use crate::membership::{MembershipConfig, MembershipEvent, MembershipView};
use crate::node::Node;
use scalo_net::ber::ErrorChannel;
use scalo_net::packet::{
    frame_into, receive, receive_ref, Header, Packet, PayloadKind, Received, ReceivedRef,
};
use scalo_net::reliable::{FlowStats, LinkScratch, ReliableLink, ReliablePolicy, SendOutcome};
use scalo_net::tdma::TdmaSchedule;
use scalo_sched::seizure::{solve as solve_seizure, Priorities};
use scalo_sched::Scenario;
use std::collections::BTreeMap;

/// Delivery outcome of a broadcast, per receiver.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// Receiving node id.
    pub to: usize,
    /// What the receiver's UNPACK produced.
    pub received: Received,
}

/// Delivery outcome of a reliable broadcast, per receiver.
#[derive(Debug, Clone, PartialEq)]
pub struct ReliableDelivery {
    /// Receiving node id.
    pub to: usize,
    /// The full exchange outcome (delivery flag, attempts, airtime).
    pub outcome: SendOutcome,
}

/// Per-receiver delivery classification of a scratch broadcast. Payload
/// indices resolve through [`BroadcastScratch::payload`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalWs {
    /// Header and payload verified; slot holds the payload bytes.
    Clean(usize),
    /// Payload checksum failed but the kind's policy delivers anyway
    /// (signal packets); slot holds the corrupted bytes.
    Corrupt(usize),
    /// Nothing delivered (checksum drop, truncation, or a reliable
    /// exchange that exhausted its attempts).
    Dropped,
}

/// Recycled buffers for [`Scalo::broadcast_ws`] and
/// [`Scalo::reliable_broadcast_ws`]: the framed wire, the per-receiver
/// corrupted copy, a pool of payload slots, and the reliable link's frame
/// scratch. One scratch serves any packet size and receiver count; buffers
/// grow to the largest broadcast seen.
#[derive(Debug, Clone, Default)]
pub struct BroadcastScratch {
    wire: Vec<u8>,
    rx: Vec<u8>,
    payloads: Vec<Vec<u8>>,
    used: usize,
    link: LinkScratch,
    /// `(receiver, arrival)` per live receiver, in ascending receiver
    /// order — the same order the allocating broadcasts return.
    pub arrivals: Vec<(usize, ArrivalWs)>,
}

impl BroadcastScratch {
    /// An empty scratch; the first broadcast sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// The payload bytes behind an [`ArrivalWs::Clean`] /
    /// [`ArrivalWs::Corrupt`] slot index. Valid until the next broadcast
    /// through this scratch.
    pub fn payload(&self, slot: usize) -> &[u8] {
        &self.payloads[slot]
    }
}

/// Copies `bytes` into the next recycled payload slot, returning its index.
fn stash(payloads: &mut Vec<Vec<u8>>, used: &mut usize, bytes: &[u8]) -> usize {
    if *used == payloads.len() {
        payloads.push(Vec::new());
    }
    let slot = &mut payloads[*used];
    slot.clear();
    slot.extend_from_slice(bytes);
    *used += 1;
    *used - 1
}

/// Statistics of the medium since construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MediumStats {
    /// Packets transmitted (per receiver), heartbeats excluded.
    pub transmissions: usize,
    /// Deliveries with any bit error.
    pub corrupted: usize,
    /// Deliveries dropped by the error policy.
    pub dropped: usize,
    /// Retransmissions by the reliable transport.
    pub retransmissions: usize,
    /// Receiver-side duplicates suppressed by the reliable transport.
    pub duplicates: usize,
    /// ACK frames lost in flight.
    pub acks_lost: usize,
    /// Heartbeat frames transmitted (tracked separately so protocol
    /// accounting is not polluted by the failure detector).
    pub heartbeats: usize,
}

/// First payload byte of a heartbeat frame.
const HEARTBEAT_MAGIC: u8 = 0x4B;

/// A fault that has been applied, for post-run analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRecord {
    /// When it was applied, in µs.
    pub at_us: u64,
    /// The fault.
    pub fault: Fault,
}

/// A membership transition observed by one node, for post-run analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipRecord {
    /// When the observer's detector transitioned, in µs.
    pub at_us: u64,
    /// The node whose view changed.
    pub observer: usize,
    /// The transition.
    pub event: MembershipEvent,
}

/// One coordinator-triggered schedule re-solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleDecision {
    /// When the re-solve ran, in µs.
    pub at_us: u64,
    /// The live membership the schedule was solved for.
    pub live: Vec<usize>,
    /// The ILP's weighted seizure-propagation throughput for the
    /// surviving deployment, if it solved.
    pub weighted_mbps: Option<f64>,
}

/// The SCALO system of Figure 2a.
#[derive(Debug)]
pub struct Scalo {
    config: ScaloConfig,
    nodes: Vec<Node>,
    channel: ErrorChannel,
    tdma: TdmaSchedule,
    time_us: u64,
    stats: MediumStats,
    alive: Vec<bool>,
    membership_cfg: MembershipConfig,
    views: Vec<MembershipView>,
    last_heartbeat_us: u64,
    fault_plan: FaultPlan,
    ber_spike_until_us: Option<u64>,
    reliable_policy: ReliablePolicy,
    /// One reliable link per (src, dst, flow); `BTreeMap` so iteration
    /// (and therefore reporting) is deterministic.
    links: BTreeMap<(usize, usize, u8), ReliableLink>,
    fault_log: Vec<FaultRecord>,
    membership_log: Vec<MembershipRecord>,
    schedule_decisions: Vec<ScheduleDecision>,
    /// Heartbeat wire/receive scratch: heartbeat rounds fire every window
    /// (the interval matches the 4 ms analysis cadence), so they sit on
    /// the zero-allocation hot path.
    hb_wire: Vec<u8>,
    hb_rx: Vec<u8>,
}

impl Scalo {
    /// Builds the system.
    pub fn new(config: ScaloConfig) -> Self {
        let nodes: Vec<Node> = (0..config.nodes).map(|i| Node::new(i, &config)).collect();
        let channel = ErrorChannel::new(config.ber, config.seed);
        let tdma = TdmaSchedule::round_robin(config.nodes);
        let membership_cfg = MembershipConfig::default();
        let views = (0..config.nodes)
            .map(|i| MembershipView::new(i, config.nodes, membership_cfg, 0))
            .collect();
        Self {
            alive: vec![true; config.nodes],
            membership_cfg,
            views,
            last_heartbeat_us: 0,
            fault_plan: FaultPlan::new(),
            ber_spike_until_us: None,
            reliable_policy: ReliablePolicy::default(),
            links: BTreeMap::new(),
            fault_log: Vec::new(),
            membership_log: Vec::new(),
            schedule_decisions: Vec::new(),
            hb_wire: Vec::new(),
            hb_rx: Vec::new(),
            config,
            nodes,
            channel,
            tdma,
            time_us: 0,
            stats: MediumStats::default(),
        }
    }

    /// Number of implants.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The configuration.
    pub fn config(&self) -> &ScaloConfig {
        &self.config
    }

    /// The TDMA schedule.
    pub fn tdma(&self) -> &TdmaSchedule {
        &self.tdma
    }

    /// Medium statistics so far.
    pub fn stats(&self) -> MediumStats {
        self.stats
    }

    /// Borrow a node.
    pub fn node(&self, id: usize) -> &Node {
        &self.nodes[id]
    }

    /// Mutable borrow of a node.
    pub fn node_mut(&mut self, id: usize) -> &mut Node {
        &mut self.nodes[id]
    }

    /// Current simulation time in µs.
    pub fn now_us(&self) -> u64 {
        self.time_us
    }

    /// Whether `node` is up.
    pub fn is_alive(&self, node: usize) -> bool {
        self.alive[node]
    }

    /// Ids of the nodes currently up, ascending.
    pub fn live_nodes(&self) -> Vec<usize> {
        (0..self.nodes.len()).filter(|&i| self.alive[i]).collect()
    }

    /// Installs a fault schedule, replacing any previous one.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan;
    }

    /// Overrides the failure-detector thresholds (resets all views).
    pub fn set_membership_config(&mut self, cfg: MembershipConfig) {
        self.membership_cfg = cfg;
        let (n, now) = (self.nodes.len(), self.time_us);
        self.views = (0..n)
            .map(|i| MembershipView::new(i, n, cfg, now))
            .collect();
    }

    /// Overrides the reliable-transport policy for links created later.
    pub fn set_reliable_policy(&mut self, policy: ReliablePolicy) {
        self.reliable_policy = policy;
    }

    /// The membership view held by `node`.
    pub fn membership(&self, node: usize) -> &MembershipView {
        &self.views[node]
    }

    /// Faults applied so far.
    pub fn fault_log(&self) -> &[FaultRecord] {
        &self.fault_log
    }

    /// Membership transitions observed so far.
    pub fn membership_log(&self) -> &[MembershipRecord] {
        &self.membership_log
    }

    /// Schedule re-solves triggered by membership changes.
    pub fn schedule_decisions(&self) -> &[ScheduleDecision] {
        &self.schedule_decisions
    }

    /// Per-flow reliable-delivery statistics for the (src, dst, flow)
    /// link, if any traffic has used it.
    pub fn flow_stats(&self, from: usize, to: usize, flow: u8) -> Option<FlowStats> {
        self.links.get(&(from, to, flow)).map(|l| l.stats())
    }

    /// Advances simulated time, firing due faults and heartbeat rounds
    /// in timestamp order along the way.
    pub fn advance_us(&mut self, delta: u64) {
        let target = self.time_us + delta;
        loop {
            let next_hb = self
                .last_heartbeat_us
                .saturating_add(self.membership_cfg.heartbeat_interval_us);
            let due_fault = self.fault_plan.peek_at_us().filter(|&t| t <= target);
            let due_hb = (next_hb <= target).then_some(next_hb);
            let Some(at) = [due_fault, due_hb].into_iter().flatten().min() else {
                break;
            };
            self.time_us = self.time_us.max(at);
            self.expire_ber_spike();
            while let Some(ev) = self.fault_plan.pop_due(self.time_us) {
                self.apply_fault(ev);
            }
            if next_hb <= self.time_us {
                self.last_heartbeat_us = next_hb;
                self.heartbeat_round();
            }
        }
        self.time_us = target;
        self.expire_ber_spike();
    }

    /// Takes `node` down: it stops sending, receiving, and heartbeating.
    pub fn crash_node(&mut self, node: usize) {
        if self.alive[node] {
            self.alive[node] = false;
            self.fault_log.push(FaultRecord {
                at_us: self.time_us,
                fault: Fault::Crash { node },
            });
        }
    }

    /// Brings a crashed `node` back with a fresh membership view; peers
    /// re-admit it when its heartbeats resume.
    pub fn recover_node(&mut self, node: usize) {
        if !self.alive[node] {
            self.alive[node] = true;
            self.views[node].reset(self.time_us);
            self.fault_log.push(FaultRecord {
                at_us: self.time_us,
                fault: Fault::Recover { node },
            });
        }
    }

    fn apply_fault(&mut self, ev: FaultEvent) {
        match ev.fault {
            Fault::Crash { node } => self.crash_node(node),
            Fault::Recover { node } => self.recover_node(node),
            Fault::BerSpike { ber, duration_us } => {
                self.channel.set_ber(ber);
                self.ber_spike_until_us = Some(self.time_us.saturating_add(duration_us));
                self.fault_log.push(FaultRecord {
                    at_us: self.time_us,
                    fault: ev.fault,
                });
            }
            Fault::ClockDrift { node, offset_us } => {
                self.nodes[node].clock_offset_us += offset_us;
                self.fault_log.push(FaultRecord {
                    at_us: self.time_us,
                    fault: ev.fault,
                });
            }
            Fault::NvmBlockFail { node, kind, bytes } => {
                self.nodes[node].fail_nvm_block(kind, bytes);
                self.fault_log.push(FaultRecord {
                    at_us: self.time_us,
                    fault: ev.fault,
                });
            }
        }
    }

    fn expire_ber_spike(&mut self) {
        if let Some(until) = self.ber_spike_until_us {
            if self.time_us >= until {
                self.channel.set_ber(self.config.ber);
                self.ber_spike_until_us = None;
            }
        }
    }

    /// One heartbeat exchange: every live node sends a tiny `Control`
    /// frame in its TDMA slot; receivers refresh their views, then every
    /// detector ticks. If the coordinator's view evicts (or re-admits) a
    /// peer, it re-solves the schedule over its live membership.
    fn heartbeat_round(&mut self) {
        let n = self.nodes.len();
        let now = self.time_us;
        // Observers whose live membership changed this round (rejoins
        // observed during the exchange, evictions during the tick).
        let mut changed: Vec<usize> = Vec::new();
        for from in 0..n {
            if !self.alive[from] {
                continue;
            }
            frame_into(
                Header {
                    src: from as u8,
                    dst: scalo_net::packet::BROADCAST,
                    flow: 0,
                    seq: (now / self.membership_cfg.heartbeat_interval_us) as u16,
                    len: 0,
                    kind: PayloadKind::Control,
                    timestamp_us: now as u32,
                },
                &[HEARTBEAT_MAGIC, from as u8],
                &mut self.hb_wire,
            );
            for to in 0..n {
                if to == from || !self.alive[to] {
                    continue;
                }
                self.stats.heartbeats += 1;
                let _ = self.channel.transmit_into(&self.hb_wire, &mut self.hb_rx);
                if matches!(receive_ref(&self.hb_rx), ReceivedRef::Clean(..)) {
                    if let Some(event) = self.views[to].observe(from, now) {
                        self.membership_log.push(MembershipRecord {
                            at_us: now,
                            observer: to,
                            event,
                        });
                        changed.push(to);
                    }
                }
            }
        }
        for observer in 0..n {
            if !self.alive[observer] {
                continue;
            }
            for event in self.views[observer].tick(now) {
                self.membership_log.push(MembershipRecord {
                    at_us: now,
                    observer,
                    event,
                });
                if matches!(event, MembershipEvent::Evicted { .. }) {
                    changed.push(observer);
                }
            }
        }
        // The coordinator — lowest-id live member of its own view — is
        // the one that re-solves for its membership.
        if let Some(&observer) = changed.iter().find(|&&o| self.views[o].is_coordinator()) {
            let live = self.views[observer].live_members();
            self.resolve_schedule(live);
        }
    }

    /// Re-solves the TDMA slot allocation and the seizure ILP for the
    /// given live membership (the graceful-degradation step).
    fn resolve_schedule(&mut self, live: Vec<usize>) {
        if live.is_empty() {
            return;
        }
        self.tdma = TdmaSchedule::custom(self.config.nodes, live.clone());
        let scenario =
            Scenario::new(live.len(), self.config.power_limit_mw).with_radio(self.config.radio);
        let weighted_mbps = solve_seizure(&scenario, Priorities::equal()).map(|s| s.weighted_mbps);
        self.schedule_decisions.push(ScheduleDecision {
            at_us: self.time_us,
            live,
            weighted_mbps: weighted_mbps.ok(),
        });
    }

    /// Broadcasts a packet from `from` to every other *live* node
    /// through the bit-error channel, applying the receiver-side error
    /// policy. A crashed sender reaches nobody.
    pub fn broadcast(&mut self, from: usize, packet: &Packet) -> Vec<Delivery> {
        assert!(from < self.nodes.len(), "unknown sender {from}");
        if !self.alive[from] {
            return Vec::new();
        }
        let wire = packet.to_wire();
        let mut out = Vec::new();
        for to in 0..self.nodes.len() {
            if to == from || !self.alive[to] {
                continue;
            }
            let (corrupted_wire, flips) = self.channel.transmit(&wire);
            self.stats.transmissions += 1;
            if flips > 0 {
                self.stats.corrupted += 1;
            }
            let received = receive(&corrupted_wire);
            if matches!(
                received,
                Received::DroppedHeaderError | Received::DroppedPayloadError(_)
            ) {
                self.stats.dropped += 1;
            }
            out.push(Delivery { to, received });
        }
        out
    }

    /// [`Scalo::broadcast`] through recycled buffers: identical channel
    /// draws, error policy, and statistics, with per-receiver arrivals
    /// written into `ws` instead of allocating a delivery vector and
    /// payload copies. Allocation-free once `ws` is warm. Like
    /// [`scalo_net::packet::frame_into`], the header's `len` field is
    /// overwritten with the payload length.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range.
    pub fn broadcast_ws(
        &mut self,
        from: usize,
        header: Header,
        payload: &[u8],
        ws: &mut BroadcastScratch,
    ) {
        assert!(from < self.nodes.len(), "unknown sender {from}");
        ws.arrivals.clear();
        ws.used = 0;
        if !self.alive[from] {
            return;
        }
        frame_into(header, payload, &mut ws.wire);
        for to in 0..self.nodes.len() {
            if to == from || !self.alive[to] {
                continue;
            }
            let flips = self.channel.transmit_into(&ws.wire, &mut ws.rx);
            self.stats.transmissions += 1;
            if flips > 0 {
                self.stats.corrupted += 1;
            }
            let arrival = match receive_ref(&ws.rx) {
                ReceivedRef::Clean(_, pl) => {
                    ArrivalWs::Clean(stash(&mut ws.payloads, &mut ws.used, pl))
                }
                ReceivedRef::CorruptDelivered(_, pl) => {
                    ArrivalWs::Corrupt(stash(&mut ws.payloads, &mut ws.used, pl))
                }
                ReceivedRef::DroppedHeaderError | ReceivedRef::DroppedPayloadError(_) => {
                    self.stats.dropped += 1;
                    ArrivalWs::Dropped
                }
                ReceivedRef::Truncated => ArrivalWs::Dropped,
            };
            ws.arrivals.push((to, arrival));
        }
    }

    /// [`Scalo::reliable_broadcast`] through recycled buffers: identical
    /// channel draws, link state, statistics, and airtime charging, with
    /// per-receiver arrivals written into `ws`. A delivered arrival is
    /// reported [`ArrivalWs::Clean`] with **no payload slot filled** — the
    /// reliable path serves error-sensitive kinds whose delivered payload
    /// is byte-identical to `payload`, which the caller still holds (the
    /// slot index is `usize::MAX` to make an accidental lookup loud).
    /// Allocation-free once `ws` and the per-receiver links are warm.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range, or (debug builds) on a `Signal`
    /// header — corrupt-but-delivered signal payloads need
    /// [`Scalo::reliable_broadcast`].
    pub fn reliable_broadcast_ws(
        &mut self,
        from: usize,
        header: Header,
        payload: &[u8],
        ws: &mut BroadcastScratch,
    ) {
        assert!(from < self.nodes.len(), "unknown sender {from}");
        ws.arrivals.clear();
        ws.used = 0;
        if !self.alive[from] {
            return;
        }
        let rate = self.config.radio.data_rate_mbps;
        let policy = self.reliable_policy;
        let flow = header.flow;
        let mut airtime_ms = 0.0;
        for to in 0..self.nodes.len() {
            if to == from || !self.alive[to] {
                continue;
            }
            let link = self
                .links
                .entry((from, to, flow))
                .or_insert_with(|| ReliableLink::new(flow, policy));
            let mut h = header;
            h.dst = to as u8;
            let before = link.stats();
            let outcome = link.send_ws(&mut self.channel, rate, h, payload, &mut ws.link);
            let after = link.stats();
            self.stats.transmissions += after.transmissions - before.transmissions;
            self.stats.retransmissions += after.retransmissions - before.retransmissions;
            self.stats.duplicates += after.duplicates - before.duplicates;
            self.stats.acks_lost += after.acks_lost - before.acks_lost;
            if !outcome.delivered {
                self.stats.dropped += 1;
            }
            airtime_ms += outcome.airtime_ms;
            let arrival = if outcome.delivered {
                ArrivalWs::Clean(usize::MAX)
            } else {
                ArrivalWs::Dropped
            };
            ws.arrivals.push((to, arrival));
        }
        self.advance_us((airtime_ms * 1_000.0).round() as u64);
    }

    /// Broadcasts a packet reliably: each live receiver gets its own
    /// sequence/ACK/retransmission exchange on the (from, to, flow)
    /// link. The airtime of every attempt and ACK — the exchanges
    /// serialise on the single-frequency medium — is charged to the
    /// simulation clock.
    pub fn reliable_broadcast(&mut self, from: usize, packet: &Packet) -> Vec<ReliableDelivery> {
        assert!(from < self.nodes.len(), "unknown sender {from}");
        if !self.alive[from] {
            return Vec::new();
        }
        let rate = self.config.radio.data_rate_mbps;
        let policy = self.reliable_policy;
        let flow = packet.header.flow;
        let mut out = Vec::new();
        let mut airtime_ms = 0.0;
        for to in 0..self.nodes.len() {
            if to == from || !self.alive[to] {
                continue;
            }
            let link = self
                .links
                .entry((from, to, flow))
                .or_insert_with(|| ReliableLink::new(flow, policy));
            let mut header = packet.header;
            header.dst = to as u8;
            let before = link.stats();
            let outcome = link.send(&mut self.channel, rate, header, packet.payload.clone());
            let after = link.stats();
            self.stats.transmissions += after.transmissions - before.transmissions;
            self.stats.retransmissions += after.retransmissions - before.retransmissions;
            self.stats.duplicates += after.duplicates - before.duplicates;
            self.stats.acks_lost += after.acks_lost - before.acks_lost;
            if !outcome.delivered {
                self.stats.dropped += 1;
            }
            airtime_ms += outcome.airtime_ms;
            out.push(ReliableDelivery { to, outcome });
        }
        self.advance_us((airtime_ms * 1_000.0).round() as u64);
        out
    }

    /// Time in ms for `from` to put `bytes` of payload on the air under
    /// its TDMA share.
    pub fn transfer_ms(&self, from: usize, bytes: usize) -> f64 {
        self.tdma.transfer_ms(from, bytes, &self.config.radio)
    }

    /// Runs the daily SNTP round (§3.6): the lowest live node is the
    /// server, every other live node corrects its clock offset. The
    /// network-busy time is charged to the simulation clock;
    /// applications that do not need the network (e.g. local detection)
    /// are unaffected.
    pub fn synchronize_clocks(&mut self) -> crate::sntp::SyncReport {
        let live = self.live_nodes();
        let clients: Vec<usize> = live.iter().skip(1).copied().collect();
        let mut offsets: Vec<i64> = clients
            .iter()
            .map(|&i| self.nodes[i].clock_offset_us)
            .collect();
        let report = crate::sntp::synchronize(&mut offsets, &self.config.radio);
        for (&i, &offset) in clients.iter().zip(&offsets) {
            self.nodes[i].clock_offset_us = offset;
        }
        self.advance_us(saturating_ms_to_us(report.network_busy_ms));
        report
    }
}

/// Converts a millisecond duration to whole µs without truncation
/// surprises: negative and non-finite inputs clamp to zero, values past
/// `u64::MAX` µs saturate.
pub fn saturating_ms_to_us(ms: f64) -> u64 {
    if !ms.is_finite() || ms <= 0.0 {
        return 0;
    }
    // `as` saturates on overflow for float→int casts.
    (ms * 1_000.0).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalo_net::packet::{Header, PayloadKind, BROADCAST};
    use scalo_storage::partition::PartitionKind;

    fn packet(kind: PayloadKind) -> Packet {
        Packet::new(
            Header {
                src: 0,
                dst: BROADCAST,
                flow: 1,
                seq: 0,
                len: 0,
                kind,
                timestamp_us: 0,
            },
            vec![0xAB; 64],
        )
    }

    #[test]
    fn clean_broadcast_reaches_everyone() {
        let mut sys = Scalo::new(ScaloConfig::default().with_nodes(4).with_ber(0.0));
        let deliveries = sys.broadcast(0, &packet(PayloadKind::Hashes));
        assert_eq!(deliveries.len(), 3);
        assert!(deliveries
            .iter()
            .all(|d| matches!(d.received, Received::Clean(_))));
        assert_eq!(sys.stats().dropped, 0);
    }

    #[test]
    fn noisy_channel_drops_hash_packets() {
        let mut sys = Scalo::new(
            ScaloConfig::default()
                .with_nodes(8)
                .with_ber(5e-3)
                .with_seed(3),
        );
        let mut dropped = 0;
        for _ in 0..50 {
            let d = sys.broadcast(0, &packet(PayloadKind::Hashes));
            dropped += d
                .iter()
                .filter(|d| {
                    matches!(
                        d.received,
                        Received::DroppedPayloadError(_) | Received::DroppedHeaderError
                    )
                })
                .count();
        }
        assert!(dropped > 0, "expected some drops at BER 5e-3");
        assert_eq!(sys.stats().dropped, dropped);
    }

    #[test]
    fn signal_packets_survive_corruption() {
        let mut sys = Scalo::new(
            ScaloConfig::default()
                .with_nodes(2)
                .with_ber(2e-3)
                .with_seed(9),
        );
        let mut delivered_corrupt = 0;
        for _ in 0..200 {
            for d in sys.broadcast(0, &packet(PayloadKind::Signal)) {
                if matches!(d.received, Received::CorruptDelivered(_)) {
                    delivered_corrupt += 1;
                }
            }
        }
        assert!(
            delivered_corrupt > 0,
            "signals should pass through corrupted"
        );
    }

    #[test]
    fn scratch_broadcast_matches_allocating_draw_for_draw() {
        // Same config + seed ⇒ same channel draws; the scratch broadcast
        // must report the identical per-receiver classification, payload
        // bytes, and medium stats as the allocating one.
        let cfg = ScaloConfig::default()
            .with_nodes(6)
            .with_ber(2e-3)
            .with_seed(41);
        let mut a = Scalo::new(cfg.clone());
        let mut b = Scalo::new(cfg);
        let mut ws = BroadcastScratch::new();
        for kind in [PayloadKind::Hashes, PayloadKind::Signal] {
            for rep in 0..200 {
                let p = packet(kind);
                let deliveries = a.broadcast(0, &p);
                b.broadcast_ws(0, p.header, &p.payload, &mut ws);
                assert_eq!(deliveries.len(), ws.arrivals.len());
                for (d, &(to, arr)) in deliveries.iter().zip(&ws.arrivals) {
                    assert_eq!(d.to, to);
                    match (&d.received, arr) {
                        (Received::Clean(dp), ArrivalWs::Clean(s)) => {
                            assert_eq!(dp.payload, ws.payload(s));
                        }
                        (Received::CorruptDelivered(dp), ArrivalWs::Corrupt(s)) => {
                            assert_eq!(dp.payload, ws.payload(s));
                        }
                        (
                            Received::DroppedHeaderError
                            | Received::DroppedPayloadError(_)
                            | Received::Truncated,
                            ArrivalWs::Dropped,
                        ) => {}
                        other => panic!("classification mismatch at rep {rep}: {other:?}"),
                    }
                }
            }
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn scratch_reliable_broadcast_matches_allocating() {
        let cfg = ScaloConfig::default()
            .with_nodes(4)
            .with_ber(1e-3)
            .with_seed(5);
        let mut a = Scalo::new(cfg.clone());
        let mut b = Scalo::new(cfg);
        let mut ws = BroadcastScratch::new();
        for _ in 0..50 {
            let p = packet(PayloadKind::Hashes);
            let deliveries = a.reliable_broadcast(0, &p);
            b.reliable_broadcast_ws(0, p.header, &p.payload, &mut ws);
            assert_eq!(deliveries.len(), ws.arrivals.len());
            for (d, &(to, arr)) in deliveries.iter().zip(&ws.arrivals) {
                assert_eq!(d.to, to);
                match arr {
                    ArrivalWs::Clean(_) => {
                        assert!(d.outcome.delivered);
                        // A delivered hash payload is byte-identical to
                        // the sent one — the contract the scratch path's
                        // slotless Clean arrivals rely on.
                        assert_eq!(
                            d.outcome.packet.as_ref().map(|pk| pk.payload.as_slice()),
                            Some(p.payload.as_slice()),
                        );
                    }
                    ArrivalWs::Dropped => assert!(!d.outcome.delivered),
                    ArrivalWs::Corrupt(_) => panic!("reliable path never reports corrupt"),
                }
            }
            // Airtime charged to the clock must match draw-for-draw too.
            assert_eq!(a.now_us(), b.now_us());
            a.advance_us(4_000);
            b.advance_us(4_000);
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn time_advances() {
        let mut sys = Scalo::new(ScaloConfig::default().with_nodes(2));
        sys.advance_us(4_000);
        assert_eq!(sys.now_us(), 4_000);
    }

    #[test]
    fn clock_sync_corrects_drifted_nodes() {
        let mut sys = Scalo::new(ScaloConfig::default().with_nodes(4));
        sys.node_mut(1).clock_offset_us = 80_000;
        sys.node_mut(3).clock_offset_us = -12_345;
        let report = sys.synchronize_clocks();
        assert!(report.converged, "{report:?}");
        for id in 1..4 {
            assert!(sys.node(id).clock_offset_us.abs() <= 5);
        }
        assert!(sys.now_us() > 0, "network-busy time charged");
    }

    #[test]
    fn saturating_ms_to_us_is_total() {
        assert_eq!(saturating_ms_to_us(1.5), 1_500);
        assert_eq!(saturating_ms_to_us(0.0004), 0);
        assert_eq!(saturating_ms_to_us(-3.0), 0);
        assert_eq!(saturating_ms_to_us(f64::NAN), 0);
        assert_eq!(saturating_ms_to_us(f64::INFINITY), 0);
        // Values beyond u64 µs saturate instead of wrapping: the clock
        // jumps to the far future but stays monotone.
        assert_eq!(saturating_ms_to_us(1e40), u64::MAX);
    }

    #[test]
    fn clock_sync_busy_time_never_wraps_the_clock() {
        // Regression for the old `(ms * 1000.0) as u64` conversion: a
        // pathological busy time must not wrap time backwards.
        let mut sys = Scalo::new(ScaloConfig::default().with_nodes(4));
        let before = sys.now_us();
        sys.node_mut(1).clock_offset_us = i64::MAX / 2;
        let _ = sys.synchronize_clocks();
        assert!(sys.now_us() >= before, "clock must be monotone");
    }

    #[test]
    fn transfer_time_respects_tdma_share() {
        let sys = Scalo::new(ScaloConfig::default().with_nodes(4).with_ber(0.0));
        let t = sys.transfer_ms(0, 1_000);
        assert!(t > 0.0);
    }

    #[test]
    fn crashed_nodes_do_not_send_or_receive() {
        let mut sys = Scalo::new(ScaloConfig::default().with_nodes(4).with_ber(0.0));
        sys.crash_node(2);
        let deliveries = sys.broadcast(0, &packet(PayloadKind::Hashes));
        assert_eq!(deliveries.len(), 2, "crashed receiver skipped");
        assert!(deliveries.iter().all(|d| d.to != 2));
        assert!(sys.broadcast(2, &packet(PayloadKind::Hashes)).is_empty());
        assert_eq!(sys.live_nodes(), vec![0, 1, 3]);
    }

    #[test]
    fn fault_plan_crash_is_detected_and_schedule_resolved() {
        let mut sys = Scalo::new(ScaloConfig::default().with_nodes(4).with_ber(0.0));
        let mut plan = FaultPlan::new();
        plan.schedule(10_000, Fault::Crash { node: 3 });
        sys.set_fault_plan(plan);
        sys.advance_us(100_000);
        assert!(!sys.is_alive(3));
        // Survivors evicted the crashed node...
        let evictions: Vec<&MembershipRecord> = sys
            .membership_log()
            .iter()
            .filter(|r| r.event == MembershipEvent::Evicted { peer: 3 })
            .collect();
        assert_eq!(evictions.len(), 3, "{:?}", sys.membership_log());
        // ...within the configured detection window of the crash.
        let cfg = MembershipConfig::default();
        for e in &evictions {
            let latency = e.at_us - 10_000;
            assert!(
                latency <= cfg.evict_after_us + cfg.heartbeat_interval_us,
                "latency {latency}"
            );
        }
        // The coordinator re-solved for the survivors.
        let decision = sys.schedule_decisions().last().expect("re-solve ran");
        assert_eq!(decision.live, vec![0, 1, 2]);
        assert!(decision.weighted_mbps.is_some());
        // Dead node owns no TDMA slots; survivors share the round.
        assert_eq!(sys.tdma().slots_for(3), 0);
        assert_eq!(sys.tdma().slots_per_round(), 3);
    }

    #[test]
    fn recovered_node_rejoins_membership() {
        let mut sys = Scalo::new(ScaloConfig::default().with_nodes(3).with_ber(0.0));
        let mut plan = FaultPlan::new();
        plan.schedule(8_000, Fault::Crash { node: 2 });
        plan.schedule(80_000, Fault::Recover { node: 2 });
        sys.set_fault_plan(plan);
        sys.advance_us(150_000);
        assert!(sys.is_alive(2));
        assert!(sys
            .membership_log()
            .iter()
            .any(|r| r.event == MembershipEvent::Rejoined { peer: 2 }));
        // Everyone is live in the survivors' views again.
        assert_eq!(sys.membership(0).live_members(), vec![0, 1, 2]);
    }

    #[test]
    fn ber_spike_applies_and_expires() {
        let mut sys = Scalo::new(ScaloConfig::default().with_nodes(2).with_ber(1e-6));
        let mut plan = FaultPlan::new();
        plan.schedule(
            5_000,
            Fault::BerSpike {
                ber: 0.01,
                duration_us: 20_000,
            },
        );
        sys.set_fault_plan(plan);
        sys.advance_us(6_000);
        let mut dropped_during = 0;
        for _ in 0..30 {
            dropped_during += sys
                .broadcast(0, &packet(PayloadKind::Hashes))
                .iter()
                .filter(|d| !matches!(d.received, Received::Clean(_)))
                .count();
        }
        assert!(dropped_during > 0, "spike BER must bite");
        sys.advance_us(40_000); // spike expires at t=25 ms
        let mut dropped_after = 0;
        for _ in 0..30 {
            dropped_after += sys
                .broadcast(0, &packet(PayloadKind::Hashes))
                .iter()
                .filter(|d| !matches!(d.received, Received::Clean(_)))
                .count();
        }
        assert!(
            dropped_after < dropped_during,
            "baseline restored: {dropped_after} vs {dropped_during}"
        );
    }

    #[test]
    fn clock_drift_and_nvm_faults_apply() {
        let mut sys = Scalo::new(ScaloConfig::default().with_nodes(2).with_ber(0.0));
        let mut plan = FaultPlan::new();
        plan.schedule(
            1_000,
            Fault::ClockDrift {
                node: 1,
                offset_us: 70_000,
            },
        );
        plan.schedule(
            2_000,
            Fault::NvmBlockFail {
                node: 1,
                kind: PartitionKind::Signals,
                bytes: 1024,
            },
        );
        sys.set_fault_plan(plan);
        sys.advance_us(10_000);
        assert_eq!(sys.node(1).clock_offset_us, 70_000);
        assert_eq!(
            sys.node(1)
                .storage()
                .get(PartitionKind::Signals)
                .failed_bytes(),
            1024
        );
        assert_eq!(sys.fault_log().len(), 2);
        // SNTP corrects the drift.
        let report = sys.synchronize_clocks();
        assert!(report.converged);
        assert!(sys.node(1).clock_offset_us.abs() <= 5);
    }

    #[test]
    fn reliable_broadcast_delivers_under_harsh_ber() -> Result<(), String> {
        let mut sys = Scalo::new(
            ScaloConfig::default()
                .with_nodes(4)
                .with_ber(1e-3)
                .with_seed(5),
        );
        let mut delivered = 0;
        let total = 50 * 3;
        for _ in 0..50 {
            for d in sys.reliable_broadcast(0, &packet(PayloadKind::Hashes)) {
                delivered += usize::from(d.outcome.delivered);
            }
        }
        // 64 B payloads at BER 1e-3 lose ~half their frames; 8 attempts
        // still recover essentially everything.
        assert!(
            delivered as f64 >= 0.99 * total as f64,
            "reliable transport recovers ≥99%: {delivered}/{total}"
        );
        let s = sys.stats();
        assert!(s.retransmissions > 0, "{s:?}");
        let fs = sys
            .flow_stats(0, 1, 1)
            .ok_or("link (0, 1, flow 1) carried traffic but has no stats")?;
        assert_eq!(fs.data_packets, 50);
        // Only 50 packets on this one link — a single giving-up loss is
        // 2%, so bound per-link delivery a little looser than aggregate.
        assert!(fs.delivery_rate() >= 0.95, "{fs:?}");
        assert!(sys.now_us() > 0, "airtime charged to the clock");
        Ok(())
    }

    #[test]
    fn heartbeats_do_not_pollute_protocol_stats() {
        let mut sys = Scalo::new(ScaloConfig::default().with_nodes(3).with_ber(0.0));
        sys.advance_us(40_000);
        let s = sys.stats();
        assert!(s.heartbeats > 0);
        assert_eq!(s.transmissions, 0);
        assert_eq!(s.dropped, 0);
    }

    #[test]
    fn deterministic_fault_runs() {
        let run = || {
            let mut sys = Scalo::new(
                ScaloConfig::default()
                    .with_nodes(5)
                    .with_ber(1e-4)
                    .with_seed(77),
            );
            let mut plan = FaultPlan::new();
            plan.schedule(12_000, Fault::Crash { node: 4 });
            plan.schedule(20_000, Fault::Crash { node: 1 });
            sys.set_fault_plan(plan);
            for _ in 0..30 {
                let _ = sys.reliable_broadcast(0, &packet(PayloadKind::Hashes));
                sys.advance_us(4_000);
            }
            (
                sys.stats(),
                sys.membership_log().to_vec(),
                sys.schedule_decisions().to_vec(),
            )
        };
        let (a_stats, a_log, a_dec) = run();
        let (b_stats, b_log, b_dec) = run();
        assert_eq!(a_stats, b_stats);
        assert_eq!(a_log, b_log);
        assert_eq!(a_dec, b_dec);
    }
}
