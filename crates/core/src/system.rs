//! The distributed system: nodes plus the TDMA wireless medium.

use crate::config::ScaloConfig;
use crate::node::Node;
use scalo_net::ber::ErrorChannel;
use scalo_net::packet::{receive, Packet, Received};
use scalo_net::tdma::TdmaSchedule;

/// Delivery outcome of a broadcast, per receiver.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// Receiving node id.
    pub to: usize,
    /// What the receiver's UNPACK produced.
    pub received: Received,
}

/// Statistics of the medium since construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MediumStats {
    /// Packets transmitted (per receiver).
    pub transmissions: usize,
    /// Deliveries with any bit error.
    pub corrupted: usize,
    /// Deliveries dropped by the error policy.
    pub dropped: usize,
}

/// The SCALO system of Figure 2a.
#[derive(Debug)]
pub struct Scalo {
    config: ScaloConfig,
    nodes: Vec<Node>,
    channel: ErrorChannel,
    tdma: TdmaSchedule,
    time_us: u64,
    stats: MediumStats,
}

impl Scalo {
    /// Builds the system.
    pub fn new(config: ScaloConfig) -> Self {
        let nodes = (0..config.nodes).map(|i| Node::new(i, &config)).collect();
        let channel = ErrorChannel::new(config.ber, config.seed);
        let tdma = TdmaSchedule::round_robin(config.nodes);
        Self {
            config,
            nodes,
            channel,
            tdma,
            time_us: 0,
            stats: MediumStats::default(),
        }
    }

    /// Number of implants.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The configuration.
    pub fn config(&self) -> &ScaloConfig {
        &self.config
    }

    /// The TDMA schedule.
    pub fn tdma(&self) -> &TdmaSchedule {
        &self.tdma
    }

    /// Medium statistics so far.
    pub fn stats(&self) -> MediumStats {
        self.stats
    }

    /// Borrow a node.
    pub fn node(&self, id: usize) -> &Node {
        &self.nodes[id]
    }

    /// Mutable borrow of a node.
    pub fn node_mut(&mut self, id: usize) -> &mut Node {
        &mut self.nodes[id]
    }

    /// Current simulation time in µs.
    pub fn now_us(&self) -> u64 {
        self.time_us
    }

    /// Advances simulation time.
    pub fn advance_us(&mut self, delta: u64) {
        self.time_us += delta;
    }

    /// Broadcasts a packet from `from` to every other node through the
    /// bit-error channel, applying the receiver-side error policy.
    pub fn broadcast(&mut self, from: usize, packet: &Packet) -> Vec<Delivery> {
        assert!(from < self.nodes.len(), "unknown sender {from}");
        let wire = packet.to_wire();
        let mut out = Vec::new();
        for to in 0..self.nodes.len() {
            if to == from {
                continue;
            }
            let (corrupted_wire, flips) = self.channel.transmit(&wire);
            self.stats.transmissions += 1;
            if flips > 0 {
                self.stats.corrupted += 1;
            }
            let received = receive(&corrupted_wire);
            if matches!(
                received,
                Received::DroppedHeaderError | Received::DroppedPayloadError(_)
            ) {
                self.stats.dropped += 1;
            }
            out.push(Delivery { to, received });
        }
        out
    }

    /// Time in ms for `from` to put `bytes` of payload on the air under
    /// its TDMA share.
    pub fn transfer_ms(&self, from: usize, bytes: usize) -> f64 {
        self.tdma.transfer_ms(from, bytes, &self.config.radio)
    }

    /// Runs the daily SNTP round (§3.6): node 0 is the server, every
    /// other node corrects its clock offset. The network-busy time is
    /// charged to the simulation clock; applications that do not need
    /// the network (e.g. local detection) are unaffected.
    pub fn synchronize_clocks(&mut self) -> crate::sntp::SyncReport {
        let mut offsets: Vec<i64> = self.nodes[1..]
            .iter()
            .map(|n| n.clock_offset_us)
            .collect();
        let report = crate::sntp::synchronize(&mut offsets, &self.config.radio);
        for (node, &offset) in self.nodes[1..].iter_mut().zip(&offsets) {
            node.clock_offset_us = offset;
        }
        self.time_us += (report.network_busy_ms * 1_000.0) as u64;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalo_net::packet::{Header, PayloadKind, BROADCAST};

    fn packet(kind: PayloadKind) -> Packet {
        Packet::new(
            Header {
                src: 0,
                dst: BROADCAST,
                flow: 1,
                seq: 0,
                len: 0,
                kind,
                timestamp_us: 0,
            },
            vec![0xAB; 64],
        )
    }

    #[test]
    fn clean_broadcast_reaches_everyone() {
        let mut sys = Scalo::new(ScaloConfig::default().with_nodes(4).with_ber(0.0));
        let deliveries = sys.broadcast(0, &packet(PayloadKind::Hashes));
        assert_eq!(deliveries.len(), 3);
        assert!(deliveries
            .iter()
            .all(|d| matches!(d.received, Received::Clean(_))));
        assert_eq!(sys.stats().dropped, 0);
    }

    #[test]
    fn noisy_channel_drops_hash_packets() {
        let mut sys = Scalo::new(
            ScaloConfig::default()
                .with_nodes(8)
                .with_ber(5e-3)
                .with_seed(3),
        );
        let mut dropped = 0;
        for _ in 0..50 {
            let d = sys.broadcast(0, &packet(PayloadKind::Hashes));
            dropped += d
                .iter()
                .filter(|d| {
                    matches!(
                        d.received,
                        Received::DroppedPayloadError(_) | Received::DroppedHeaderError
                    )
                })
                .count();
        }
        assert!(dropped > 0, "expected some drops at BER 5e-3");
        assert_eq!(sys.stats().dropped, dropped);
    }

    #[test]
    fn signal_packets_survive_corruption() {
        let mut sys = Scalo::new(
            ScaloConfig::default()
                .with_nodes(2)
                .with_ber(2e-3)
                .with_seed(9),
        );
        let mut delivered_corrupt = 0;
        for _ in 0..200 {
            for d in sys.broadcast(0, &packet(PayloadKind::Signal)) {
                if matches!(d.received, Received::CorruptDelivered(_)) {
                    delivered_corrupt += 1;
                }
            }
        }
        assert!(delivered_corrupt > 0, "signals should pass through corrupted");
    }

    #[test]
    fn time_advances() {
        let mut sys = Scalo::new(ScaloConfig::default().with_nodes(2));
        sys.advance_us(4_000);
        assert_eq!(sys.now_us(), 4_000);
    }

    #[test]
    fn clock_sync_corrects_drifted_nodes() {
        let mut sys = Scalo::new(ScaloConfig::default().with_nodes(4));
        sys.node_mut(1).clock_offset_us = 80_000;
        sys.node_mut(3).clock_offset_us = -12_345;
        let report = sys.synchronize_clocks();
        assert!(report.converged, "{report:?}");
        for id in 1..4 {
            assert!(sys.node(id).clock_offset_us.abs() <= 5);
        }
        assert!(sys.now_us() > 0, "network-busy time charged");
    }

    #[test]
    fn transfer_time_respects_tdma_share() {
        let sys = Scalo::new(ScaloConfig::default().with_nodes(4).with_ber(0.0));
        let t = sys.transfer_ms(0, 1_000);
        assert!(t > 0.0);
    }
}
