//! The SCALO distributed BCI: nodes, the wireless network between them,
//! and the three application classes of §2.2 running end-to-end.
//!
//! This crate composes every lower layer into the system of Figure 2:
//!
//! * [`node`] — one implant: fabric, storage, hashers, detector, clock;
//! * [`system`] — the network of implants with a TDMA medium and
//!   bit-error injection;
//! * [`apps`] — functional applications on real (synthetic) signals:
//!   seizure propagation, movement intent (SVM/NN/KF), spike sorting,
//!   and interactive queries;
//! * [`arch`] — the alternative architectures of Table 2 for the
//!   Figure 8a comparison;
//! * [`fault`] — deterministic seeded fault injection (crashes, BER
//!   spikes, clock drift, NVM block failures);
//! * [`membership`] — heartbeat failure detection and the
//!   suspicion/eviction state machine driving graceful degradation;
//! * [`session`] — resumable per-patient serving sessions (the unit of
//!   work the `scalo-fleet` serving layer schedules);
//! * [`cohort`] — cohort-batched stepping: structurally identical
//!   sessions share one radio stall, one fused block hash, and one
//!   FFT-plan walk per window, with per-session decisions unchanged;
//! * [`plan`] — query → executable window-plan compilation: typed
//!   validation, kernel binding, and the ILP admission budget;
//! * [`catalog`] — named query registry with cached compiled plans and
//!   the three built-in applications;
//! * [`workspace`] — reusable per-session scratch buffers backing the
//!   zero-allocation steady-state window pipeline;
//! * [`sntp`] — daily clock synchronisation (§3.6);
//! * [`runtime`] — the MC runtime that compiles queries (via
//!   `scalo-query` + `scalo-sched`) and reconfigures node pipelines.
//!
//! # Quickstart
//!
//! ```
//! use scalo_core::{Scalo, ScaloConfig};
//!
//! let system = Scalo::new(ScaloConfig::default().with_nodes(4));
//! assert_eq!(system.node_count(), 4);
//! ```

pub mod apps;
pub mod arch;
pub mod catalog;
pub mod cohort;
pub mod config;
pub mod fault;
pub mod membership;
pub mod node;
pub mod plan;
pub mod runtime;
pub mod session;
pub mod snapshot;
pub mod sntp;
pub mod stim;
pub mod system;
pub mod workspace;

pub use catalog::{CatalogEntry, QueryCatalog};
pub use cohort::{Cohort, CohortKey};
pub use config::ScaloConfig;
pub use plan::{PlanConfig, PlanError, ProgramPlan, SessionBinding, WindowPlan};
pub use session::{Session, SessionSpec};
pub use snapshot::{SessionSnapshot, SnapshotError};
pub use system::Scalo;
pub use workspace::Workspace;
