//! Named query catalog: registered sources with cached compiled plans.
//!
//! The serving tier admits sessions *by query*: a clinician registers a
//! named program once, and every admission, swap fault-in, or WAL
//! recovery of that application recompiles (or reuses) the same
//! canonical source. The catalog is the registry half of that story —
//! [`QueryCatalog::register`] compiles and caches, [`CatalogEntry::spec`]
//! stamps out query-backed [`SessionSpec`]s without recompiling.
//!
//! The three built-in entries reconstruct the hard-coded application
//! pipelines the fleet and bench populations used to spell out by hand;
//! their compiled plans bind the same movement cadence and transport
//! flag, so query-admitted sessions produce decision digests
//! byte-identical to spec-constructed ones (pinned by fleet tests and
//! the `experiments query` smoke).

use crate::plan::{PlanConfig, PlanError, ProgramPlan, SessionBinding};
use crate::session::SessionSpec;
use std::collections::BTreeMap;
use std::time::Instant;

/// The plain seizure-watch pipeline every implant serves: detect, hash,
/// probe collisions over raw TDMA frames, DTW-confirm, stimulate.
pub const SEIZURE_WATCH: &str = "var seizure_watch = stream.window(wsize=4ms).seizure_detect()\
                                 .hash(dtw).ccheck().dtw().stim().call_runtime()";

/// Seizure watch with hash broadcasts on the reliable (seq/ACK)
/// transport — the lossy-network variant.
pub const SEIZURE_RELIABLE: &str = "var seizure_reliable = stream.window(wsize=4ms)\
                                    .seizure_detect().hash(dtw).ccheck(reliable).dtw().stim()\
                                    .call_runtime()";

/// The application mix: seizure watch plus a movement decode folded in
/// every 100 ms (25 serving windows).
pub const MOVEMENT_MIX: &str = "var movement_mix = stream.window(wsize=4ms).seizure_detect()\
                                .hash(dtw).ccheck().dtw().stim().call_runtime()\n\
                                var movement_decode = stream.window(wsize=100ms).sbp()\
                                .kf(kf_params).call_runtime()";

/// One registered query: its canonical source, cached compiled plan,
/// derived session binding, and how long compilation took.
#[derive(Debug)]
pub struct CatalogEntry {
    name: String,
    source: String,
    binding: SessionBinding,
    compile_us: u64,
    plan: ProgramPlan,
}

impl CatalogEntry {
    /// The entry's name: its serving chain's bound name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The canonical (re-printed) source.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The session binding the program pins down.
    pub fn binding(&self) -> SessionBinding {
        self.binding
    }

    /// Wall time the compile took, µs.
    pub fn compile_us(&self) -> u64 {
        self.compile_us
    }

    /// The cached compiled plan.
    pub fn plan(&self) -> &ProgramPlan {
        &self.plan
    }

    /// Stamps out a query-backed [`SessionSpec`] from this entry
    /// without recompiling: identity from `id`/`seed`, movement
    /// cadence and transport from the cached binding, the canonical
    /// source carried as the spec's query. Callers layer deployment,
    /// duration, priority, and fault knobs on top with the spec's
    /// builders.
    pub fn spec(&self, id: u64, seed: u64) -> SessionSpec {
        let mut spec = SessionSpec::new(id, seed).with_movement_every(self.binding.movement_every);
        spec.use_reliable_transport = self.binding.use_reliable_transport;
        spec.query = Some(self.source.clone());
        spec
    }
}

/// A registry of named queries with cached compiled plans.
#[derive(Debug)]
pub struct QueryCatalog {
    cfg: PlanConfig,
    entries: BTreeMap<String, CatalogEntry>,
}

impl QueryCatalog {
    /// An empty catalog compiling against `cfg`.
    pub fn new(cfg: PlanConfig) -> Self {
        Self {
            cfg,
            entries: BTreeMap::new(),
        }
    }

    /// A catalog preloaded with the three built-in applications:
    /// `seizure_watch`, `seizure_reliable`, and `movement_mix`.
    pub fn with_builtins(cfg: PlanConfig) -> Self {
        let mut cat = Self::new(cfg);
        for source in [SEIZURE_WATCH, SEIZURE_RELIABLE, MOVEMENT_MIX] {
            cat.register(source).expect("built-in queries compile");
        }
        cat
    }

    /// The compile-time configuration entries are compiled against.
    pub fn config(&self) -> PlanConfig {
        self.cfg
    }

    /// Compiles `source` and registers it under its serving chain's
    /// name, returning the entry. Re-registering a name replaces the
    /// cached plan (the invalidation path for edited queries).
    ///
    /// # Errors
    ///
    /// Any [`PlanError`] from [`ProgramPlan::compile`].
    pub fn register(&mut self, source: &str) -> Result<&CatalogEntry, PlanError> {
        let started = Instant::now();
        let plan = ProgramPlan::compile(source, &self.cfg)?;
        let compile_us = started.elapsed().as_micros() as u64;
        let name = plan.name().to_string();
        let entry = CatalogEntry {
            name: name.clone(),
            source: plan.source().to_string(),
            binding: plan.binding(),
            compile_us,
            plan,
        };
        self.entries.insert(name.clone(), entry);
        Ok(&self.entries[&name])
    }

    /// Looks up a registered entry.
    pub fn get(&self, name: &str) -> Option<&CatalogEntry> {
        self.entries.get(name)
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// How many queries are registered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in name order.
    pub fn entries(&self) -> impl Iterator<Item = &CatalogEntry> {
        self.entries.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_register_under_their_serving_chain_names() {
        let cat = QueryCatalog::with_builtins(PlanConfig::default());
        assert_eq!(
            cat.names(),
            ["movement_mix", "seizure_reliable", "seizure_watch"]
        );
        let watch = cat.get("seizure_watch").unwrap();
        assert_eq!(
            watch.binding(),
            SessionBinding {
                movement_every: 0,
                use_reliable_transport: false,
            }
        );
        let reliable = cat.get("seizure_reliable").unwrap();
        assert!(reliable.binding().use_reliable_transport);
        let mix = cat.get("movement_mix").unwrap();
        assert_eq!(mix.binding().movement_every, 25);
        assert!(!mix.binding().use_reliable_transport);
    }

    #[test]
    fn specs_carry_binding_and_canonical_query() {
        let cat = QueryCatalog::with_builtins(PlanConfig::default());
        let mix = cat.get("movement_mix").unwrap();
        let spec = mix.spec(7, 0xabc);
        assert_eq!(spec.id, 7);
        assert_eq!(spec.seed, 0xabc);
        assert_eq!(spec.movement_every, 25);
        assert!(!spec.use_reliable_transport);
        let query = spec.query.as_deref().unwrap();
        assert_eq!(query, mix.source());
        // The carried source is canonical: recompiling reproduces it.
        let again = ProgramPlan::compile(query, &PlanConfig::default()).unwrap();
        assert_eq!(again.source(), query);
    }

    #[test]
    fn reregistering_replaces_the_cached_plan() {
        let mut cat = QueryCatalog::new(PlanConfig::default());
        cat.register(SEIZURE_WATCH).unwrap();
        assert!(
            !cat.get("seizure_watch")
                .unwrap()
                .binding()
                .use_reliable_transport
        );
        let edited = SEIZURE_WATCH.replace(".ccheck()", ".ccheck(reliable)");
        cat.register(&edited).unwrap();
        assert_eq!(cat.len(), 1);
        assert!(
            cat.get("seizure_watch")
                .unwrap()
                .binding()
                .use_reliable_transport
        );
    }

    /// The equivalence the whole compilation path rests on: for every
    /// built-in app and a spread of seeds, a session built from the
    /// catalog's compiled plan decides byte-identically to one whose
    /// knobs were set by hand.
    #[test]
    fn every_builtin_digests_like_its_hand_built_twin_across_seeds() {
        let cat = QueryCatalog::with_builtins(PlanConfig::default());
        for seed in [0x1u64, 0xabc, 0xdead_beef] {
            for entry in cat.entries() {
                let mut queried =
                    crate::session::Session::new(entry.spec(3, seed).with_duration_s(0.2));
                let binding = entry.binding();
                let mut hand_spec = crate::session::SessionSpec::new(3, seed)
                    .with_duration_s(0.2)
                    .with_movement_every(binding.movement_every);
                hand_spec.use_reliable_transport = binding.use_reliable_transport;
                let mut hand = crate::session::Session::new(hand_spec);
                while !queried.step().done {}
                while !hand.step().done {}
                assert_eq!(
                    queried.decision_digest(),
                    hand.decision_digest(),
                    "{} diverged at seed {seed:#x}",
                    entry.name()
                );
            }
        }
    }

    #[test]
    fn bad_queries_do_not_register() {
        let mut cat = QueryCatalog::new(PlanConfig::default());
        let err = cat
            .register("var q = stream.window(wsize=4ms).ccheck()")
            .unwrap_err();
        assert!(matches!(err, PlanError::Misplaced { .. }));
        assert!(cat.is_empty());
    }
}
