//! Per-session scratch buffers for the per-window hot path.
//!
//! SCALO's compute fabric works out of fixed SRAM register files — PEs
//! never allocate mid-window (§3.2). This module is the software analogue:
//! a [`Workspace`] owns every intermediate buffer the steady-state window
//! pipeline (ingest → hash → detect → heartbeat) needs, so after a warm-up
//! window the hot path performs zero heap allocations. A
//! [`crate::session::Session`] owns one workspace for its lifetime; fleet
//! workers keep it attached to the session across quantum switches.
//!
//! The `*_into` APIs the workspace feeds are bit-identical to their
//! allocating counterparts, so decision digests are unchanged whichever
//! entry point runs.

use scalo_lsh::ssh::{BlockHashScratch, HashScratch};
use scalo_lsh::SignalHash;
use scalo_net::compress::CompressScratch;
use scalo_signal::block::ChannelBlock;
use scalo_signal::dtw::DtwScratch;
use scalo_signal::fft::FftScratch;
use scalo_signal::simd::SimdLevel;
use scalo_trace::Recorder;

/// Reusable buffers for one session's window pipeline. All fields are
/// scratch: contents are unspecified between calls, and no state leaks
/// from one window (or one session) to the next because every consumer
/// clears or re-shapes before writing.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// Quantised (i16 LE) window bytes staged for the NVM signal ring.
    pub quantized: Vec<u8>,
    /// SSH pipeline intermediates (z-normalised window, sketch bits, pools).
    pub hash_scratch: HashScratch,
    /// The current window's hash.
    pub hash: SignalHash,
    /// FFT intermediates for the detection feature path.
    pub fft: FftScratch,
    /// Detection feature vector (band powers + RMS).
    pub features: Vec<f64>,
    /// DTW band intermediates for exact confirmation.
    pub dtw: DtwScratch,
    /// Z-normalised copy of the remote window (DTW confirm).
    pub znorm_a: Vec<f64>,
    /// Z-normalised copy of the local window (DTW confirm).
    pub znorm_b: Vec<f64>,
    /// Concatenated hash bytes staged for HCOMP compression.
    pub hash_bytes: Vec<u8>,
    /// HCOMP intermediates (frequency dictionary, rank sort, γ bits).
    pub comp: CompressScratch,
    /// Compressed hash batch staged for the exchange broadcast.
    pub compressed: Vec<u8>,
    /// DCOMP output for a received hash batch (parsed once per window —
    /// every clean reliable delivery carries the same bytes).
    pub decompressed: Vec<u8>,
    /// Quantised (i16 LE) signal-response payload staged for framing.
    pub sig_bytes: Vec<u8>,
    /// Broadcast scratch (wire frame, per-receiver arrivals, payload
    /// slots) for the exchange-phase packet traffic.
    pub net: crate::system::BroadcastScratch,
    /// Channel-major block of the current window across all electrodes —
    /// the batched kernel engine's working set.
    pub block: ChannelBlock,
    /// Batched SSH intermediates for hashing the whole block at once.
    pub block_hash: BlockHashScratch,
    /// Per-electrode hashes of the current block (slots recycled).
    pub hashes: Vec<SignalHash>,
    /// One gathered channel (contiguous) for per-channel kernels.
    pub chan: Vec<f64>,
    /// Received hashes parsed from a hash packet (slots recycled).
    pub received: Vec<SignalHash>,
    /// Hamming-probe expansion of a received batch (slots recycled).
    pub probes: Vec<SignalHash>,
    /// Probe-index → received-index mapping for the expansion.
    pub probe_owner: Vec<usize>,
    /// CCHECK sorted-index scratch for collision matching.
    pub probe_order: Vec<usize>,
    /// Responder tuples `(node, origin electrode, local electrode,
    /// local timestamp µs)` staged during an exchange window.
    pub responders: Vec<(usize, usize, usize, u64)>,
    /// Sorted/deduped origin electrodes the responders want signals for.
    pub wanted: Vec<usize>,
    /// Dequantised local stored window (DTW confirm).
    pub local_win: Vec<f64>,
    /// Dequantised remote window from a signal packet (DTW confirm).
    pub remote_win: Vec<f64>,
    /// The session's span recorder (`scalo-trace`). Disabled — a
    /// branch-and-return no-op — by default; when enabled its ring is
    /// pre-allocated, so recording spans obeys the same zero-allocation
    /// discipline as the rest of the workspace. It lives here so every
    /// layer the window pipeline passes through (`ingest_window_ws`,
    /// `detect_seizure_traced`, the exchange) can emit spans without a
    /// new parameter on every hot-path signature.
    pub trace: Recorder,
    /// The SIMD dispatch level captured when this workspace was built.
    /// Every kernel scratch constructed alongside it (DTW, block stats,
    /// sketcher) resolves [`SimdLevel::active`] at the same moment, so
    /// this field is the single value to report in trace/bench metadata
    /// (`simd_isa`) — dispatch is decided once per workspace, never per
    /// call.
    simd: SimdLevel,
}

impl Workspace {
    /// An empty workspace; buffers grow to their working sizes during the
    /// first window and are reused thereafter. The SIMD dispatch level is
    /// captured here (see [`Workspace::simd_level`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The SIMD dispatch level this workspace's kernels run at.
    pub fn simd_level(&self) -> SimdLevel {
        self.simd
    }
}
