//! Electrical stimulation and wireless charging (§2.1, §3.6).
//!
//! Confirmed seizure propagation (or sensory feedback in the movement
//! loop) triggers electrical stimulation through the repurposed
//! electrodes after digital-to-analog conversion; the DAC draws ≈0.6 mW
//! while active. Charging is wireless and *exclusive*: "when charging
//! wirelessly, we pause all pipelines to avoid overheating", and recent
//! systems sustain 24-hour operation with 2 hours of charging.

use scalo_hw::adc::DAC_STIM_MW;
use serde::Serialize;

/// One stimulation command issued to a node's DAC.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StimCommand {
    /// Target electrode.
    pub electrode: usize,
    /// Pulse amplitude in µA (clinical range; validated).
    pub amplitude_ua: f64,
    /// Pulse train duration in ms.
    pub duration_ms: f64,
    /// Pulse frequency in Hz.
    pub frequency_hz: f64,
}

impl StimCommand {
    /// A standard responsive-neurostimulation burst (RNS-class
    /// parameters: 100 µA at 200 Hz for 100 ms).
    pub fn standard_burst(electrode: usize) -> Self {
        Self {
            electrode,
            amplitude_ua: 100.0,
            duration_ms: 100.0,
            frequency_hz: 200.0,
        }
    }

    /// Validates clinical safety bounds.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated bound.
    pub fn validate(&self) -> Result<(), String> {
        if !(1.0..=1_000.0).contains(&self.amplitude_ua) {
            return Err(format!(
                "amplitude {} µA outside 1–1000 µA",
                self.amplitude_ua
            ));
        }
        if !(1.0..=5_000.0).contains(&self.duration_ms) {
            return Err(format!(
                "duration {} ms outside 1–5000 ms",
                self.duration_ms
            ));
        }
        if !(1.0..=500.0).contains(&self.frequency_hz) {
            return Err(format!(
                "frequency {} Hz outside 1–500 Hz",
                self.frequency_hz
            ));
        }
        Ok(())
    }

    /// Energy drawn from the implant budget by this burst, in µJ
    /// (DAC power × active time).
    pub fn energy_uj(&self) -> f64 {
        DAC_STIM_MW * self.duration_ms
    }
}

/// The per-node stimulation engine: validates, logs, and accounts power.
#[derive(Debug, Clone, Default)]
pub struct StimEngine {
    log: Vec<(u64, StimCommand)>,
    total_energy_uj: f64,
}

impl StimEngine {
    /// A fresh engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Issues a command at `now_us`.
    ///
    /// # Errors
    ///
    /// Propagates validation failures without logging.
    pub fn stimulate(&mut self, now_us: u64, cmd: StimCommand) -> Result<(), String> {
        cmd.validate()?;
        self.total_energy_uj += cmd.energy_uj();
        self.log.push((now_us, cmd));
        Ok(())
    }

    /// Commands issued so far.
    pub fn log(&self) -> &[(u64, StimCommand)] {
        &self.log
    }

    /// Total stimulation energy drawn, µJ.
    pub fn total_energy_uj(&self) -> f64 {
        self.total_energy_uj
    }
}

/// The wireless-charging duty cycle (§3.6): 24-hour operation with
/// 2 hours of charging, pipelines paused while charging.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ChargingSchedule {
    /// Operating hours per cycle.
    pub operate_h: f64,
    /// Charging hours per cycle.
    pub charge_h: f64,
}

impl ChargingSchedule {
    /// The §3.6 reference point: 24 h of operation per 2 h charge.
    pub fn paper_reference() -> Self {
        Self {
            operate_h: 24.0,
            charge_h: 2.0,
        }
    }

    /// Fraction of wall-clock time the system is available.
    pub fn availability(&self) -> f64 {
        self.operate_h / (self.operate_h + self.charge_h)
    }

    /// Energy a cycle must deliver for `power_mw` of average draw, in J.
    pub fn energy_per_cycle_j(&self, power_mw: f64) -> f64 {
        power_mw / 1_000.0 * self.operate_h * 3_600.0
    }

    /// Required charging power in mW (ideal transfer).
    pub fn charge_power_mw(&self, power_mw: f64) -> f64 {
        self.energy_per_cycle_j(power_mw) / (self.charge_h * 3_600.0) * 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_burst_is_valid_and_costed() {
        let cmd = StimCommand::standard_burst(3);
        assert!(cmd.validate().is_ok());
        assert!((cmd.energy_uj() - 60.0).abs() < 1e-9); // 0.6 mW × 100 ms
    }

    #[test]
    fn out_of_range_commands_rejected() {
        let mut engine = StimEngine::new();
        let mut cmd = StimCommand::standard_burst(0);
        cmd.amplitude_ua = 5_000.0;
        assert!(engine.stimulate(0, cmd).is_err());
        assert!(engine.log().is_empty());
    }

    #[test]
    fn engine_accumulates_energy() {
        let mut engine = StimEngine::new();
        engine
            .stimulate(1_000, StimCommand::standard_burst(0))
            .unwrap();
        engine
            .stimulate(5_000, StimCommand::standard_burst(1))
            .unwrap();
        assert_eq!(engine.log().len(), 2);
        assert!((engine.total_energy_uj() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn paper_charging_cycle() {
        let c = ChargingSchedule::paper_reference();
        assert!((c.availability() - 24.0 / 26.0).abs() < 1e-12);
        // A 15 mW implant needs 1296 J per day ⇒ 180 mW of charge power.
        assert!((c.energy_per_cycle_j(15.0) - 1_296.0).abs() < 1e-9);
        assert!((c.charge_power_mw(15.0) - 180.0).abs() < 1e-9);
    }
}
