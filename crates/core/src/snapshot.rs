//! Compact binary session snapshots — the unit of fleet durability.
//!
//! A [`SessionSnapshot`] captures everything the durability layer needs
//! to reconstruct a [`crate::session::Session`] after a process death:
//! the full [`SessionSpec`], the window cursor and step accounting, the
//! application RNG's stream position, the movement decode results, and
//! a two-part digest cursor (the cheap per-window step digest plus the
//! FNV fingerprint of the full decision digest). The codec is a
//! hand-rolled little-endian byte format — fixed-width integers, IEEE
//! bit-patterns for floats, length-prefixed sequences — with a
//! versioned header and a trailing FNV-1a checksum, so a stale or
//! corrupted image is rejected cleanly instead of deserialising into
//! garbage.
//!
//! Restoration is *deterministic re-execution*: SCALO sessions are pure
//! functions of their seed, so the snapshot does not serialise the
//! multi-megabyte system image (NVM rings, CCHECK SRAM, detector
//! weights). Instead [`crate::session::Session::restore`] rebuilds the
//! session from the spec and fast-forwards to the snapshot's window
//! cursor, then *verifies* the checkpointed digest cursor and RNG
//! position byte-for-byte — divergence is an error, never silent.

use crate::session::{QueryBinding, SessionSpec};
use std::fmt;

/// Magic bytes opening every encoded snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"SCSS";

/// Current snapshot format version. Version 2 added the session's
/// query source and binding timeline (initial binding plus every hot
/// reconfiguration), so recovery replays reconfigured sessions epoch
/// by epoch.
pub const SNAPSHOT_VERSION: u16 = 2;

/// Incremental 64-bit FNV-1a hasher, allocation-free. Used for the
/// per-window step digests, the snapshot checksum, and the WAL record
/// checksums — one hash everywhere keeps the digest chain auditable.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    /// Folds raw bytes into the hash.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds one little-endian `u64` into the hash.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds an `f64`'s IEEE bit pattern into the hash.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The hash of everything written so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write_bytes(bytes);
    h.finish()
}

/// Why a snapshot could not be decoded or a session could not be
/// restored from one.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The buffer does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The header's version is not [`SNAPSHOT_VERSION`].
    BadVersion {
        /// The version found in the header.
        found: u16,
    },
    /// The trailing checksum does not match the body.
    BadChecksum {
        /// Checksum stored in the image.
        stored: u64,
        /// Checksum computed over the decoded bytes.
        computed: u64,
    },
    /// The buffer ended before the structure it claims to hold.
    Truncated {
        /// Byte offset at which the reader ran dry.
        offset: usize,
    },
    /// A decoded field failed validation (e.g. a zero-node deployment).
    Invalid(&'static str),
    /// Fast-forward replay reached the cursor with a different digest
    /// than the snapshot recorded — the log and the code disagree.
    DigestMismatch {
        /// Session id.
        session: u64,
        /// The cursor window the mismatch was detected at.
        window: u64,
        /// Digest recorded in the snapshot.
        stored: u64,
        /// Digest produced by re-execution.
        replayed: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "snapshot does not start with SCSS magic"),
            Self::BadVersion { found } => write!(
                f,
                "snapshot version {found} unsupported (expected {SNAPSHOT_VERSION})"
            ),
            Self::BadChecksum { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:016x}, computed {computed:016x}"
            ),
            Self::Truncated { offset } => {
                write!(f, "snapshot truncated at byte offset {offset}")
            }
            Self::Invalid(what) => write!(f, "snapshot field invalid: {what}"),
            Self::DigestMismatch {
                session,
                window,
                stored,
                replayed,
            } => write!(
                f,
                "session {session} replay diverged at window {window}: \
                 snapshot digest {stored:016x}, replayed {replayed:016x}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A serializable image of a session at a window boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// The full session spec — recovery rebuilds the session from it.
    pub spec: SessionSpec,
    /// Next window to process (everything before it is replayed).
    pub window: u64,
    /// Steps executed when the snapshot was taken.
    pub steps: u64,
    /// Deadline misses accumulated (wall-clock accounting carried
    /// across recovery; never part of any digest).
    pub deadline_misses: u64,
    /// Wall-clock µs spent stepping (accounting continuity only).
    pub wall_us: u64,
    /// The application RNG's word position — verified after
    /// fast-forward so silent RNG drift cannot survive recovery.
    pub rng_word_pos: u64,
    /// Movement decode results so far, `(round, value)` pairs.
    pub movement_results: Vec<(u64, f64)>,
    /// The cheap per-window step digest at the cursor
    /// ([`crate::session::Session::step_digest`]).
    pub step_digest: u64,
    /// FNV-1a of the full decision digest string at the cursor.
    pub decisions_fnv: u64,
    /// The binding the session was admitted with — epoch 0 of the
    /// replay timeline.
    pub initial_binding: QueryBinding,
    /// Hot reconfigurations applied before the snapshot, `(window,
    /// binding)` in application order, windows non-decreasing and at
    /// most the cursor.
    pub reconfigures: Vec<(u64, QueryBinding)>,
}

impl SessionSnapshot {
    /// Encodes the snapshot: versioned header, body, trailing FNV-1a
    /// checksum over header + body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + 12 * self.movement_results.len());
        self.encode_into(&mut out);
        out
    }

    /// Encodes into a caller-owned buffer (cleared first), so steady
    /// callers can reuse one allocation.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        let s = &self.spec;
        put_u64(out, s.id);
        put_u64(out, s.seed);
        out.push(s.priority);
        put_u64(out, s.nodes as u64);
        put_u64(out, s.electrodes as u64);
        put_f64(out, s.duration_s);
        put_f64(out, s.ber);
        out.push(u8::from(s.use_reliable_transport));
        put_u64(out, s.movement_every as u64);
        put_u64(out, s.step_deadline_us);
        put_u64(out, s.io_stall_us);
        put_u64(out, s.trace_capacity as u64);
        put_opt_str(out, s.query.as_deref());
        put_binding(out, &self.initial_binding);
        put_u64(out, self.reconfigures.len() as u64);
        for (window, binding) in &self.reconfigures {
            put_u64(out, *window);
            put_binding(out, binding);
        }
        put_u64(out, self.window);
        put_u64(out, self.steps);
        put_u64(out, self.deadline_misses);
        put_u64(out, self.wall_us);
        put_u64(out, self.rng_word_pos);
        put_u64(out, self.movement_results.len() as u64);
        for &(round, value) in &self.movement_results {
            put_u64(out, round);
            put_f64(out, value);
        }
        put_u64(out, self.step_digest);
        put_u64(out, self.decisions_fnv);
        let checksum = fnv1a(out);
        put_u64(out, checksum);
    }

    /// Decodes and validates an encoded snapshot.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        // Header first, checksum second: a stale version must be
        // reported as such even if the trailer happens to validate.
        if bytes.len() < SNAPSHOT_MAGIC.len() + 2 {
            return Err(SnapshotError::Truncated { offset: 0 });
        }
        if bytes[..4] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion { found: version });
        }
        if bytes.len() < 6 + 8 {
            return Err(SnapshotError::Truncated {
                offset: bytes.len(),
            });
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
        let computed = fnv1a(body);
        if stored != computed {
            return Err(SnapshotError::BadChecksum { stored, computed });
        }

        let mut r = Reader {
            bytes: body,
            pos: 6,
        };
        let id = r.u64()?;
        let seed = r.u64()?;
        let priority = r.u8()?;
        let nodes = r.u64()? as usize;
        let electrodes = r.u64()? as usize;
        let duration_s = r.f64()?;
        let ber = r.f64()?;
        let use_reliable_transport = r.u8()? != 0;
        let movement_every = r.u64()? as usize;
        let step_deadline_us = r.u64()?;
        let io_stall_us = r.u64()?;
        let trace_capacity = r.u64()? as usize;
        let query = r.opt_str()?;
        let initial_binding = r.binding()?;
        let n_reconfigures = r.u64()? as usize;
        // Each transition is at least 8 (window) + 9 (binding fixed
        // part) + 9 (opt-str header) bytes; bound the allocation by
        // what actually remains.
        if n_reconfigures > r.bytes.len().saturating_sub(r.pos) / 26 {
            return Err(SnapshotError::Invalid("reconfigure count"));
        }
        let mut reconfigures = Vec::with_capacity(n_reconfigures);
        let mut last_window = 0u64;
        for _ in 0..n_reconfigures {
            let at = r.u64()?;
            if at < last_window {
                return Err(SnapshotError::Invalid("reconfigure windows out of order"));
            }
            last_window = at;
            reconfigures.push((at, r.binding()?));
        }
        if nodes == 0 || electrodes == 0 {
            return Err(SnapshotError::Invalid("degenerate deployment"));
        }
        if !duration_s.is_finite() || duration_s <= 0.0 {
            return Err(SnapshotError::Invalid("non-positive duration"));
        }
        let spec = SessionSpec {
            id,
            seed,
            priority,
            nodes,
            electrodes,
            duration_s,
            ber,
            use_reliable_transport,
            movement_every,
            step_deadline_us,
            io_stall_us,
            trace_capacity,
            query,
        };
        let window = r.u64()?;
        if reconfigures.last().is_some_and(|&(at, _)| at > window) {
            return Err(SnapshotError::Invalid("reconfigure beyond the cursor"));
        }
        let steps = r.u64()?;
        let deadline_misses = r.u64()?;
        let wall_us = r.u64()?;
        let rng_word_pos = r.u64()?;
        let n_movement = r.u64()? as usize;
        // A corrupted length would otherwise drive a huge allocation;
        // every movement entry is 16 bytes, so bound by what remains.
        if n_movement > body.len().saturating_sub(r.pos) / 16 {
            return Err(SnapshotError::Invalid("movement result count"));
        }
        let mut movement_results = Vec::with_capacity(n_movement);
        for _ in 0..n_movement {
            let round = r.u64()?;
            let value = r.f64()?;
            movement_results.push((round, value));
        }
        let step_digest = r.u64()?;
        let decisions_fnv = r.u64()?;
        if r.pos != body.len() {
            return Err(SnapshotError::Invalid("trailing bytes after snapshot body"));
        }
        Ok(Self {
            spec,
            window,
            steps,
            deadline_misses,
            wall_us,
            rng_word_pos,
            movement_results,
            step_digest,
            decisions_fnv,
            initial_binding,
            reconfigures,
        })
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_opt_str(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_u64(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
    }
}

fn put_binding(out: &mut Vec<u8>, b: &QueryBinding) {
    put_u64(out, b.movement_every as u64);
    out.push(u8::from(b.use_reliable_transport));
    put_opt_str(out, b.query.as_deref());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], SnapshotError> {
        if self.pos + n > self.bytes.len() {
            return Err(SnapshotError::Truncated { offset: self.pos });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn opt_str(&mut self) -> Result<Option<String>, SnapshotError> {
        if self.u8()? == 0 {
            return Ok(None);
        }
        let len = self.u64()? as usize;
        // The length is attacker-controlled until the take() below
        // bounds it against the actual buffer.
        if len > self.bytes.len().saturating_sub(self.pos) {
            return Err(SnapshotError::Truncated { offset: self.pos });
        }
        let s = std::str::from_utf8(self.take(len)?)
            .map_err(|_| SnapshotError::Invalid("non-UTF-8 query"))?;
        Ok(Some(s.to_string()))
    }

    fn binding(&mut self) -> Result<QueryBinding, SnapshotError> {
        Ok(QueryBinding {
            movement_every: self.u64()? as usize,
            use_reliable_transport: self.u8()? != 0,
            query: self.opt_str()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SessionSnapshot {
        let spec = SessionSpec::new(7, 0xfeed)
            .with_priority(3)
            .with_deployment(3, 5)
            .with_duration_s(0.7)
            .with_ber(1e-4)
            .with_movement_every(25)
            .with_io_stall_us(400)
            .with_trace_capacity(1024);
        let initial_binding = QueryBinding::of(&spec);
        SessionSnapshot {
            spec,
            window: 42,
            steps: 42,
            deadline_misses: 3,
            wall_us: 123_456,
            rng_word_pos: 99,
            movement_results: vec![(0, 0.91), (1, -2.5)],
            step_digest: 0xdead_beef_cafe_f00d,
            decisions_fnv: 0x0123_4567_89ab_cdef,
            initial_binding,
            reconfigures: Vec::new(),
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let snap = sample();
        let bytes = snap.encode();
        assert_eq!(SessionSnapshot::decode(&bytes), Ok(snap));
    }

    #[test]
    fn roundtrip_with_query_and_timeline() {
        let mut snap = sample();
        snap.spec.query = Some("var q = stream.window(wsize=4ms).seizure_detect()".into());
        snap.initial_binding = QueryBinding {
            movement_every: 0,
            use_reliable_transport: false,
            query: snap.spec.query.clone(),
        };
        snap.reconfigures = vec![
            (
                10,
                QueryBinding {
                    movement_every: 25,
                    use_reliable_transport: true,
                    query: Some("var q2 = stream.window(wsize=4ms).seizure_detect()".into()),
                },
            ),
            (
                30,
                QueryBinding {
                    movement_every: 0,
                    use_reliable_transport: false,
                    query: None,
                },
            ),
        ];
        let bytes = snap.encode();
        assert_eq!(SessionSnapshot::decode(&bytes), Ok(snap));
    }

    #[test]
    fn out_of_order_or_overrunning_timeline_rejected() {
        let reconfigure = |at| {
            (
                at,
                QueryBinding {
                    movement_every: 5,
                    use_reliable_transport: false,
                    query: None,
                },
            )
        };
        let mut snap = sample();
        snap.reconfigures = vec![reconfigure(30), reconfigure(10)];
        assert_eq!(
            SessionSnapshot::decode(&snap.encode()),
            Err(SnapshotError::Invalid("reconfigure windows out of order"))
        );
        snap.reconfigures = vec![reconfigure(snap.window + 1)];
        assert_eq!(
            SessionSnapshot::decode(&snap.encode()),
            Err(SnapshotError::Invalid("reconfigure beyond the cursor"))
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert_eq!(
            SessionSnapshot::decode(&bytes),
            Err(SnapshotError::BadMagic)
        );
    }

    #[test]
    fn stale_version_rejected_before_checksum() {
        let mut bytes = sample().encode();
        bytes[4] = 0x63; // version 99
        bytes[5] = 0;
        assert_eq!(
            SessionSnapshot::decode(&bytes),
            Err(SnapshotError::BadVersion { found: 99 })
        );
    }

    #[test]
    fn flipped_bit_rejected() {
        let mut bytes = sample().encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        assert!(matches!(
            SessionSnapshot::decode(&bytes),
            Err(SnapshotError::BadChecksum { .. })
        ));
    }

    #[test]
    fn truncated_tail_rejected() {
        let bytes = sample().encode();
        for cut in [0, 3, 6, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                SessionSnapshot::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn fnv_matches_reference() {
        // FNV-1a of the empty string and of "a" (published vectors).
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
