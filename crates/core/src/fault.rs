//! Deterministic, seeded fault injection.
//!
//! A [`FaultPlan`] is a time-ordered queue of faults — node crashes and
//! recoveries, per-link BER escalation, clock-drift spikes, and NVM
//! block failures — that [`crate::Scalo::advance_us`] drains as
//! simulated time passes. Plans can be scripted event by event or
//! generated from a seeded RNG via [`FaultPlan::random`], so robustness
//! experiments are exactly reproducible: same seed, same faults, same
//! report.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use scalo_storage::partition::PartitionKind;
use std::collections::VecDeque;

/// One injectable fault.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// The node stops transmitting, receiving, and processing.
    Crash { node: usize },
    /// A previously crashed node comes back (fresh membership view).
    Recover { node: usize },
    /// The shared channel's BER jumps to `ber` for `duration_us`, then
    /// reverts to the configured baseline.
    BerSpike { ber: f64, duration_us: u64 },
    /// The node's local clock jumps by `offset_us` (corrected only by
    /// the next SNTP round).
    ClockDrift { node: usize, offset_us: i64 },
    /// `bytes` of the node's NVM partition `kind` fail; the partition
    /// set remaps its logical window around the dead blocks.
    NvmBlockFail {
        node: usize,
        kind: PartitionKind,
        bytes: usize,
    },
}

/// A fault scheduled at a simulated timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the fault strikes, in µs of simulated time.
    pub at_us: u64,
    /// What happens.
    pub fault: Fault,
}

/// A time-ordered fault schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Events sorted by `at_us`; equal timestamps keep insertion order.
    events: VecDeque<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `fault` at `at_us`, keeping the queue sorted. Events
    /// at the same timestamp fire in insertion order.
    pub fn schedule(&mut self, at_us: u64, fault: Fault) -> &mut Self {
        let idx = self.events.partition_point(|e| e.at_us <= at_us);
        self.events.insert(idx, FaultEvent { at_us, fault });
        self
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan has no pending events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Timestamp of the next pending event.
    pub fn peek_at_us(&self) -> Option<u64> {
        self.events.front().map(|e| e.at_us)
    }

    /// Pops the next event if it is due at or before `now_us`.
    pub fn pop_due(&mut self, now_us: u64) -> Option<FaultEvent> {
        if self.peek_at_us()? <= now_us {
            self.events.pop_front()
        } else {
            None
        }
    }

    /// The pending events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter()
    }

    /// Generates a random plan from `spec`, deterministically per
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec asks for more crashes than there are nodes,
    /// or has a zero horizon with events to place.
    pub fn random(spec: &RandomFaultSpec, seed: u64) -> Self {
        assert!(
            spec.crashes <= spec.nodes,
            "cannot crash {} of {} nodes",
            spec.crashes,
            spec.nodes
        );
        let total = spec.crashes + spec.ber_spikes + spec.clock_drifts + spec.nvm_failures;
        assert!(total == 0 || spec.horizon_us > 0, "zero horizon");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut plan = Self::new();

        // Crash victims: sampled without replacement so no node is
        // crashed twice.
        let mut victims: Vec<usize> = (0..spec.nodes).collect();
        for i in 0..spec.crashes {
            let j = rng.gen_range(i..victims.len());
            victims.swap(i, j);
        }
        for &node in victims.iter().take(spec.crashes) {
            let at = rng.gen_range(0..spec.horizon_us);
            plan.schedule(at, Fault::Crash { node });
            if let Some(after) = spec.recover_after_us {
                plan.schedule(at.saturating_add(after), Fault::Recover { node });
            }
        }
        for _ in 0..spec.ber_spikes {
            let at = rng.gen_range(0..spec.horizon_us);
            plan.schedule(
                at,
                Fault::BerSpike {
                    ber: spec.spike_ber,
                    duration_us: spec.spike_duration_us,
                },
            );
        }
        for _ in 0..spec.clock_drifts {
            let at = rng.gen_range(0..spec.horizon_us);
            let node = rng.gen_range(0..spec.nodes);
            let magnitude = rng.gen_range(1..=spec.max_drift_us.max(1));
            let offset_us = if rng.gen_bool(0.5) {
                magnitude
            } else {
                -magnitude
            };
            plan.schedule(at, Fault::ClockDrift { node, offset_us });
        }
        for _ in 0..spec.nvm_failures {
            let at = rng.gen_range(0..spec.horizon_us);
            let node = rng.gen_range(0..spec.nodes);
            plan.schedule(
                at,
                Fault::NvmBlockFail {
                    node,
                    kind: PartitionKind::Signals,
                    bytes: spec.nvm_fail_bytes,
                },
            );
        }
        plan
    }
}

/// Parameters for [`FaultPlan::random`].
#[derive(Debug, Clone, PartialEq)]
pub struct RandomFaultSpec {
    /// Nodes in the system.
    pub nodes: usize,
    /// Events are placed uniformly in `[0, horizon_us)`.
    pub horizon_us: u64,
    /// Distinct nodes to crash.
    pub crashes: usize,
    /// If set, each crashed node recovers this long after its crash.
    pub recover_after_us: Option<u64>,
    /// Number of channel-wide BER spikes.
    pub ber_spikes: usize,
    /// BER during a spike.
    pub spike_ber: f64,
    /// Spike length in µs.
    pub spike_duration_us: u64,
    /// Number of clock-drift jumps.
    pub clock_drifts: usize,
    /// Maximum drift magnitude in µs.
    pub max_drift_us: i64,
    /// Number of NVM block failures (signals partition).
    pub nvm_failures: usize,
    /// Bytes lost per NVM failure.
    pub nvm_fail_bytes: usize,
}

impl Default for RandomFaultSpec {
    fn default() -> Self {
        Self {
            nodes: 8,
            horizon_us: 1_000_000,
            crashes: 1,
            recover_after_us: None,
            ber_spikes: 1,
            spike_ber: 1e-3,
            spike_duration_us: 100_000,
            clock_drifts: 1,
            max_drift_us: 50_000,
            nvm_failures: 1,
            nvm_fail_bytes: 1024 * 1024,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_keeps_time_order() {
        let mut plan = FaultPlan::new();
        plan.schedule(300, Fault::Crash { node: 2 });
        plan.schedule(100, Fault::Crash { node: 0 });
        plan.schedule(200, Fault::Crash { node: 1 });
        let order: Vec<u64> = plan.events().map(|e| e.at_us).collect();
        assert_eq!(order, vec![100, 200, 300]);
    }

    #[test]
    fn equal_timestamps_fire_in_insertion_order() {
        let mut plan = FaultPlan::new();
        plan.schedule(100, Fault::Crash { node: 0 });
        plan.schedule(100, Fault::Recover { node: 0 });
        let a = plan.pop_due(100).unwrap();
        let b = plan.pop_due(100).unwrap();
        assert_eq!(a.fault, Fault::Crash { node: 0 });
        assert_eq!(b.fault, Fault::Recover { node: 0 });
    }

    #[test]
    fn pop_due_respects_now() {
        let mut plan = FaultPlan::new();
        plan.schedule(500, Fault::Crash { node: 0 });
        assert!(plan.pop_due(499).is_none());
        assert!(plan.pop_due(500).is_some());
        assert!(plan.is_empty());
    }

    #[test]
    fn random_plan_is_deterministic_per_seed() {
        let spec = RandomFaultSpec {
            crashes: 3,
            recover_after_us: Some(10_000),
            ..Default::default()
        };
        let a = FaultPlan::random(&spec, 42);
        let b = FaultPlan::random(&spec, 42);
        assert_eq!(a, b);
        let c = FaultPlan::random(&spec, 43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn random_plan_crashes_distinct_nodes() {
        let spec = RandomFaultSpec {
            nodes: 4,
            crashes: 4,
            ber_spikes: 0,
            clock_drifts: 0,
            nvm_failures: 0,
            recover_after_us: None,
            ..Default::default()
        };
        let plan = FaultPlan::random(&spec, 7);
        let mut crashed: Vec<usize> = plan
            .events()
            .filter_map(|e| match e.fault {
                Fault::Crash { node } => Some(node),
                _ => None,
            })
            .collect();
        crashed.sort_unstable();
        assert_eq!(crashed, vec![0, 1, 2, 3]);
    }

    #[test]
    fn recovery_follows_crash() {
        let spec = RandomFaultSpec {
            crashes: 2,
            recover_after_us: Some(5_000),
            ber_spikes: 0,
            clock_drifts: 0,
            nvm_failures: 0,
            ..Default::default()
        };
        let plan = FaultPlan::random(&spec, 9);
        for e in plan.events() {
            if let Fault::Recover { node } = e.fault {
                let crash_at = plan
                    .events()
                    .find_map(|c| match c.fault {
                        Fault::Crash { node: n } if n == node => Some(c.at_us),
                        _ => None,
                    })
                    .expect("recover without crash");
                assert_eq!(e.at_us, crash_at + 5_000);
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot crash")]
    fn too_many_crashes_panics() {
        let spec = RandomFaultSpec {
            nodes: 2,
            crashes: 3,
            ..Default::default()
        };
        let _ = FaultPlan::random(&spec, 1);
    }
}
