//! The application classes of §2.2, running end-to-end on synthetic
//! electrophysiology.

pub mod external_loop;
pub mod movement;
pub mod queries;
pub mod seizure;
pub mod spike_sort;
