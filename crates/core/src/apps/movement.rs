//! Distributed movement-intent decoding (Figures 3b/6), end to end.
//!
//! A synthetic 2-D cursor task: latent kinematics (position + velocity)
//! drive per-electrode firing through a linear tuning model; electrodes
//! are split across implants; each implant extracts spike-band power
//! features over 50 ms windows and the three decoders of §2.2 run on
//! top — the decomposed SVM (pipeline A), the centralised Kalman filter
//! (pipeline B), and the decomposed shallow NN (pipeline C).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use scalo_data::split::split_channels;
use scalo_ml::kalman::{fit_kalman, KalmanFilter, KalmanScratch};
use scalo_ml::matrix::SingularMatrixError;
use scalo_ml::nn::{demo_network, DistributedNn};
use scalo_ml::svm::{DistributedSvm, LinearSvm};

/// A synthetic center-out reaching session.
#[derive(Debug, Clone)]
pub struct Session {
    /// Latent kinematics per step: `[px, py, vx, vy]`.
    pub states: Vec<Vec<f64>>,
    /// Per-step neural features (one per electrode).
    pub features: Vec<Vec<f64>>,
    /// Per-step discrete direction label (0..4) for classification.
    pub directions: Vec<usize>,
    /// Electrode count.
    pub electrodes: usize,
}

/// Generates a session of `steps` 50 ms windows with `electrodes`
/// linearly-tuned electrodes.
pub fn generate_session(steps: usize, electrodes: usize, seed: u64) -> Session {
    assert!(steps >= 4 && electrodes >= 4, "degenerate session");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Random per-electrode tuning to [px, py, vx, vy].
    let tuning: Vec<[f64; 4]> = (0..electrodes)
        .map(|_| {
            [
                rng.gen::<f64>() - 0.5,
                rng.gen::<f64>() - 0.5,
                2.0 * (rng.gen::<f64>() - 0.5),
                2.0 * (rng.gen::<f64>() - 0.5),
            ]
        })
        .collect();

    let mut states = Vec::with_capacity(steps);
    let mut features = Vec::with_capacity(steps);
    let mut directions = Vec::with_capacity(steps);
    let mut x = [0.0f64, 0.0, 0.0, 0.0];
    for step in 0..steps {
        // Switch target direction every 8 windows.
        let dir = (step / 8) % 4;
        let (tx, ty) = match dir {
            0 => (1.0, 0.0),
            1 => (0.0, 1.0),
            2 => (-1.0, 0.0),
            _ => (0.0, -1.0),
        };
        // Smooth velocity toward the target.
        x[2] = 0.8 * x[2] + 0.2 * tx;
        x[3] = 0.8 * x[3] + 0.2 * ty;
        x[0] += x[2] * 0.05;
        x[1] += x[3] * 0.05;
        states.push(x.to_vec());
        directions.push(dir);
        features.push(
            tuning
                .iter()
                .map(|t| {
                    t[0] * x[0]
                        + t[1] * x[1]
                        + t[2] * x[2]
                        + t[3] * x[3]
                        + 0.05 * (rng.gen::<f64>() - 0.5)
                })
                .collect(),
        );
    }
    Session {
        states,
        features,
        directions,
        electrodes,
    }
}

/// Pipeline A: one-vs-rest decomposed SVMs over implants. Returns
/// classification accuracy on the session (trained on the first half,
/// tested on the second).
pub fn svm_accuracy(session: &Session, nodes: usize) -> f64 {
    let half = session.features.len() / 2;
    // One-vs-rest linear SVMs for the 4 directions.
    let svms: Vec<LinearSvm> = (0..4)
        .map(|dir| {
            let train: Vec<(Vec<f64>, bool)> = session.features[..half]
                .iter()
                .zip(&session.directions[..half])
                .map(|(f, &d)| (f.clone(), d == dir))
                .collect();
            LinearSvm::train_pegasos(&train, 0.01, 15, 7 + dir as u64)
        })
        .collect();
    let dist: Vec<DistributedSvm> = svms
        .iter()
        .map(|s| DistributedSvm::split(s, nodes))
        .collect();
    let ranges = split_channels(session.electrodes, nodes);

    let mut correct = 0;
    for (f, &d) in session.features[half..]
        .iter()
        .zip(&session.directions[half..])
    {
        // Each node computes a partial per classifier; aggregate picks
        // the max decision value.
        let decision: Vec<f64> = dist
            .iter()
            .map(|ds| {
                let partials: Vec<_> = ranges
                    .iter()
                    .enumerate()
                    .map(|(n, r)| ds.local_partial(n, &f[r.clone()]))
                    .collect();
                ds.aggregate(&partials).0
            })
            .collect();
        let mut pred = 0;
        for (i, v) in decision.iter().enumerate() {
            if *v > decision[pred] {
                pred = i;
            }
        }
        correct += usize::from(pred == d);
    }
    correct as f64 / (session.features.len() - half) as f64
}

/// Pipeline B: the centralised Kalman filter. Returns the mean absolute
/// velocity error on the second half (trained on the first half), or
/// the singularity the fit/filter hit — possible only if the session's
/// feature covariance degenerates, which synthetic tuning noise
/// prevents in practice.
pub fn kalman_velocity_error(session: &Session) -> Result<f64, SingularMatrixError> {
    let half = session.states.len() / 2;
    let model = fit_kalman(&session.states[..half], &session.features[..half])?;
    let mut kf = KalmanFilter::new(model);
    // One scratch for the whole decode loop: steady-state filter steps
    // reuse its buffers instead of allocating per observation.
    let mut scratch = KalmanScratch::new();
    let mut err = 0.0;
    let mut count = 0;
    for (z, truth) in session.features[half..].iter().zip(&session.states[half..]) {
        let est = kf.step_with(z, &mut scratch)?;
        err += (est[2] - truth[2]).abs() + (est[3] - truth[3]).abs();
        count += 1;
    }
    Ok(err / (2 * count) as f64)
}

/// Pipeline C: the decomposed shallow NN. Verifies distributed equals
/// centralised inference and returns the max absolute output difference
/// across the session.
pub fn nn_decomposition_error(session: &Session, nodes: usize) -> f64 {
    let nn = demo_network(session.electrodes, 16, 4, 55);
    let dist = DistributedNn::split(&nn, nodes);
    let ranges = split_channels(session.electrodes, nodes);
    let mut worst = 0.0f64;
    for f in &session.features {
        let central = nn.forward(f);
        let partials: Vec<_> = ranges
            .iter()
            .enumerate()
            .map(|(n, r)| dist.local_partial(n, &f[r.clone()]))
            .collect();
        let agg = dist.aggregate(&partials);
        for (c, a) in central.iter().zip(&agg) {
            worst = worst.max((c - a).abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> Session {
        generate_session(160, 24, 99)
    }

    #[test]
    fn svm_decodes_direction_above_chance() {
        let acc = svm_accuracy(&session(), 4);
        assert!(acc > 0.5, "accuracy {acc} (chance = 0.25)");
    }

    #[test]
    fn svm_accuracy_is_node_count_invariant() {
        // §3.1: decomposing linear SVMs "does not affect accuracy".
        let s = session();
        let a1 = svm_accuracy(&s, 1);
        let a4 = svm_accuracy(&s, 4);
        let a8 = svm_accuracy(&s, 8);
        assert!((a1 - a4).abs() < 1e-12, "{a1} vs {a4}");
        assert!((a1 - a8).abs() < 1e-12, "{a1} vs {a8}");
    }

    #[test]
    fn kalman_tracks_velocity() {
        let err = kalman_velocity_error(&session()).unwrap();
        assert!(err < 0.3, "velocity error {err}");
    }

    #[test]
    fn nn_decomposition_is_exact() {
        let err = nn_decomposition_error(&session(), 6);
        assert!(err < 1e-9, "decomposition error {err}");
    }
}
