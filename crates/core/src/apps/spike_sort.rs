//! Online spike sorting with hash-filtered template matching
//! (Figures 3c/7), end to end — the §6.3 experiment.
//!
//! Spikes are detected with NEO + threshold, re-anchored on their
//! absolute peak, hashed, and matched against template hashes stored on
//! the NVM. As in the seizure pipeline, the hash *filters*: the CCHECK
//! shortlist (the few templates within small Hamming distance) goes to
//! the DTW PE for exact confirmation, so per spike only ~3 exact
//! comparisons run instead of one per stored template. The paper
//! reports accuracy within 5% of exhaustive exact matching at
//! 12,250 spikes/s/node.

use scalo_data::spikes::{SpikeDataset, TEMPLATE_SAMPLES};
use scalo_hw::pe::{spec, PeKind};
use scalo_lsh::{HashConfig, SignalHash, SshHasher};
use scalo_signal::dtw::{dtw_distance, DtwParams};
use scalo_signal::spike::detect_spikes;
use scalo_signal::stats::z_normalize;

/// Pre-/post-peak samples for extraction (matches the template length).
const PRE: usize = TEMPLATE_SAMPLES / 4;
const POST: usize = TEMPLATE_SAMPLES - PRE;

/// Minimum templates surviving the hash filter for exact comparison.
pub const SHORTLIST_MIN: usize = 3;

/// Shortlist size for a library of `templates` templates (~1/6 of the
/// library, at least [`SHORTLIST_MIN`]).
pub fn shortlist_size(templates: usize) -> usize {
    (templates / 6).max(SHORTLIST_MIN).min(templates)
}

/// The hash configuration for spike waveforms. Spike hashes are local
/// (stored on the node's own NVM, never on the wire), so they can be
/// wider than the 1–2 B network hashes: 32 sketch bits.
pub fn spike_hash_config() -> HashConfig {
    HashConfig {
        sketch_window: 8,
        sketch_stride: 1,
        ngram: 1,
        hash_bytes: 4,
        hamming_tolerance: 1,
        normalize: true,
        seed: 0x51a3,
    }
}

/// Result of sorting one dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SortResult {
    /// Spikes detected.
    pub detected: usize,
    /// Detected spikes with a ground-truth label nearby.
    pub labelled: usize,
    /// Correct assignments by hash-filtered matching (SCALO's pipeline).
    pub hash_correct: usize,
    /// Correct assignments by exhaustive exact matching (the baseline).
    pub exact_correct: usize,
    /// Exact comparisons performed by the hash-filtered pipeline.
    pub filtered_comparisons: usize,
    /// Exact comparisons performed by the exhaustive baseline.
    pub exhaustive_comparisons: usize,
}

impl SortResult {
    /// Hash-filtered sorting accuracy over labelled spikes.
    pub fn hash_accuracy(&self) -> f64 {
        self.hash_correct as f64 / self.labelled.max(1) as f64
    }

    /// Exhaustive-matching accuracy over labelled spikes.
    pub fn exact_accuracy(&self) -> f64 {
        self.exact_correct as f64 / self.labelled.max(1) as f64
    }

    /// Comparison-count reduction from hash filtering.
    pub fn comparison_reduction(&self) -> f64 {
        self.exhaustive_comparisons as f64 / self.filtered_comparisons.max(1) as f64
    }
}

/// Re-anchors a detected spike on its absolute peak (detection peaks on
/// NEO energy — the maximum *slope* — which sits a template-dependent
/// few samples before the amplitude peak; matching needs a consistent
/// anchor).
fn reanchor(recording: &[f64], energy_peak: usize) -> Vec<f64> {
    let lo = energy_peak.saturating_sub(12);
    let hi = (energy_peak + 20).min(recording.len());
    let absmax = (lo..hi)
        .max_by(|&a, &b| recording[a].abs().total_cmp(&recording[b].abs()))
        .unwrap_or(energy_peak);
    (0..TEMPLATE_SAMPLES)
        .map(|k| {
            (absmax + k)
                .checked_sub(PRE)
                .and_then(|i| recording.get(i))
                .copied()
                .unwrap_or(0.0)
        })
        .collect()
}

/// Aligns a stored template the same way (snippet around its absolute
/// peak).
fn align_template(waveform: &[f64]) -> Vec<f64> {
    let peak = waveform
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
        .map(|(i, _)| i)
        .unwrap_or(0);
    (0..TEMPLATE_SAMPLES)
        .map(|k| {
            (peak + k)
                .checked_sub(PRE)
                .and_then(|i| waveform.get(i))
                .copied()
                .unwrap_or(0.0)
        })
        .collect()
}

/// Banded DTW on z-normalised shapes — the exact comparison.
fn shape_distance(a: &[f64], b: &[f64]) -> f64 {
    dtw_distance(&z_normalize(a), &z_normalize(b), DtwParams::with_band(4))
}

/// SCALO's classifier: hash shortlist → exact DTW among survivors.
/// `None` when there are no templates to compare against.
fn classify_filtered(
    hasher: &SshHasher,
    waveform: &[f64],
    templates: &[(usize, SignalHash, Vec<f64>)],
) -> Option<(usize, usize)> {
    let h = hasher.hash(waveform);
    let mut by_hash: Vec<&(usize, SignalHash, Vec<f64>)> = templates.iter().collect();
    by_hash.sort_by_key(|(_, th, _)| h.hamming(th));
    let shortlist = &by_hash[..shortlist_size(by_hash.len()).min(by_hash.len())];
    let best = shortlist
        .iter()
        .min_by(|a, b| shape_distance(waveform, &a.2).total_cmp(&shape_distance(waveform, &b.2)))
        .map(|t| t.0)?;
    Some((best, shortlist.len()))
}

/// The exhaustive baseline: exact DTW against every template. `None`
/// when there are no templates to compare against.
fn classify_exhaustive(
    waveform: &[f64],
    templates: &[(usize, SignalHash, Vec<f64>)],
) -> Option<usize> {
    templates
        .iter()
        .min_by(|a, b| shape_distance(waveform, &a.2).total_cmp(&shape_distance(waveform, &b.2)))
        .map(|t| t.0)
}

/// Sorts a dataset both ways and scores against ground truth.
pub fn sort_dataset(dataset: &SpikeDataset) -> SortResult {
    let hasher = SshHasher::new(spike_hash_config());
    let templates: Vec<(usize, SignalHash, Vec<f64>)> = dataset
        .templates
        .iter()
        .map(|t| {
            let aligned = align_template(&t.waveform);
            (t.neuron, hasher.hash(&aligned), aligned)
        })
        .collect();

    let spikes = detect_spikes(&dataset.recording, 5.0, PRE, POST);
    let mut result = SortResult {
        detected: spikes.len(),
        labelled: 0,
        hash_correct: 0,
        exact_correct: 0,
        filtered_comparisons: 0,
        exhaustive_comparisons: 0,
    };
    for s in &spikes {
        let Some(truth) = dataset.truth_at(s.peak_index, TEMPLATE_SAMPLES) else {
            continue;
        };
        result.labelled += 1;
        let waveform = reanchor(&dataset.recording, s.peak_index);
        // A template-less dataset classifies nothing; every spike stays
        // unlabelled rather than panicking mid-sort.
        let Some((hash_pred, compared)) = classify_filtered(&hasher, &waveform, &templates) else {
            continue;
        };
        let Some(exact_pred) = classify_exhaustive(&waveform, &templates) else {
            continue;
        };
        result.hash_correct += usize::from(hash_pred == truth);
        result.exact_correct += usize::from(exact_pred == truth);
        result.filtered_comparisons += compared;
        result.exhaustive_comparisons += templates.len();
    }
    result
}

/// The modelled per-node sorting rate (spikes/second): each spike costs
/// one hash pass, an amortised CCHECK batch share, an SC access, and the
/// shortlisted DTW confirmations (Table 1 latencies). The paper reports
/// 12,250 spikes/s/node.
pub fn modeled_sort_rate_per_node() -> f64 {
    let hash = spec(PeKind::Emdh).latency.worst_ms(0.0); // hash PE pass
    let sc = 0.03; // NVM available
    let ccheck_batch = spec(PeKind::Ccheck).latency.worst_ms(0.0) / 32.0; // 32-spike batches
    let dtw = spec(PeKind::Dtw).latency.worst_ms(0.0) * SHORTLIST_MIN as f64;
    1_000.0 / (hash + sc + ccheck_batch + dtw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalo_data::spikes::{generate, SpikeConfig};

    #[test]
    fn hash_sorting_close_to_exact_on_all_datasets() {
        // §6.3: "The sorting accuracy of SCALO is within 5% of that
        // achieved by exact template matching."
        for cfg in [
            SpikeConfig::spikeforest_like(),
            SpikeConfig::mearec_like(),
            SpikeConfig::kilosort_like(),
        ] {
            let ds = generate(&cfg);
            let r = sort_dataset(&ds);
            assert!(r.labelled > 30, "{r:?}");
            let (h, e) = (r.hash_accuracy(), r.exact_accuracy());
            assert!(
                e > 0.55,
                "exact accuracy {e} too low ({} neurons)",
                cfg.neurons
            );
            assert!(
                h >= e - 0.05,
                "hash {h} vs exact {e} ({} neurons)",
                cfg.neurons
            );
        }
    }

    #[test]
    fn hash_filtering_cuts_exact_comparisons() {
        let ds = generate(&SpikeConfig::kilosort_like());
        let r = sort_dataset(&ds);
        // 30 templates exhaustively vs a 3-template shortlist: 10×.
        assert!(
            r.comparison_reduction() > 5.0,
            "{}",
            r.comparison_reduction()
        );
    }

    #[test]
    fn detection_finds_most_ground_truth_spikes() {
        let ds = generate(&SpikeConfig::spikeforest_like());
        let r = sort_dataset(&ds);
        let recall = r.labelled as f64 / ds.ground_truth.len() as f64;
        assert!(recall > 0.5, "recall {recall}");
    }

    #[test]
    fn modeled_rate_matches_paper_band() {
        // §6.3: 12,250 spikes/s/node (exact off-device sorters: ~15,000).
        let rate = modeled_sort_rate_per_node();
        assert!(rate > 9_000.0 && rate < 16_000.0, "rate {rate}");
    }

    #[test]
    fn accuracy_degrades_gracefully_with_more_neurons() {
        let few = sort_dataset(&generate(&SpikeConfig::spikeforest_like()));
        let many = sort_dataset(&generate(&SpikeConfig::kilosort_like()));
        // More neurons = harder problem (the paper sees 73% on Kilosort
        // vs 82–91% on the others).
        assert!(many.exact_accuracy() <= few.exact_accuracy() + 0.1);
    }
}
