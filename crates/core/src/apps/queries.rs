//! Interactive human-in-the-loop queries (Figure 10), executed
//! functionally against node storage with modelled timing.
//!
//! The three §6.4 queries: Q1 returns stored windows labelled as
//! seizures, Q2 returns windows whose hash collides with a given
//! template's, Q3 returns everything in a time range. Latency/QPS come
//! from the `scalo-sched` query model; this module performs the actual
//! record filtering so results are real data, not just numbers.

use crate::system::Scalo;
use scalo_lsh::SignalHash;
use scalo_query::{Dag, Operator};
use scalo_sched::queries::{evaluate, QueryKind, QueryPoint};
use scalo_sched::Scenario;
use scalo_storage::partition::PartitionKind;

/// A query answer: matching records plus the modelled cost.
#[derive(Debug, Clone)]
pub struct QueryAnswer {
    /// Matching `(node, electrode, timestamp_us)` triples.
    pub matches: Vec<(usize, u32, u64)>,
    /// Bytes of signal data returned.
    pub bytes: usize,
    /// Modelled latency/QPS/power.
    pub cost: QueryPoint,
}

fn scenario_of(system: &Scalo) -> Scenario {
    Scenario::new(system.node_count(), system.config().power_limit_mw)
}

/// Q1: all signal windows in `[from_us, to_us]` flagged as seizures by
/// the per-node detector labels. (Labels are approximated here by
/// re-running the stored-window detector check.)
pub fn q1_seizure_signals(system: &Scalo, from_us: u64, to_us: u64) -> QueryAnswer {
    let mut matches = Vec::new();
    let mut bytes = 0;
    let mut total_bytes = 0;
    for node_id in 0..system.node_count() {
        let node = system.node(node_id);
        for rec in node
            .storage()
            .get(PartitionKind::Signals)
            .range(from_us, to_us)
        {
            total_bytes += rec.data.len();
            let window: Vec<f64> = rec
                .data
                .chunks_exact(2)
                .map(|b| i16::from_le_bytes([b[0], b[1]]) as f64 / 8_192.0)
                .collect();
            // A node without a detector simply contributes no labels.
            if node.detect_seizure(&window).unwrap_or(false) {
                matches.push((node_id, rec.key, rec.timestamp_us));
                bytes += rec.data.len();
            }
        }
    }
    let data_mb = (total_bytes as f64 / 1e6).max(1e-3);
    let fraction = if total_bytes == 0 {
        0.0
    } else {
        bytes as f64 / total_bytes as f64
    };
    QueryAnswer {
        matches,
        bytes,
        cost: evaluate(
            QueryKind::Q1SeizureSignals,
            data_mb,
            fraction,
            &scenario_of(system),
        ),
    }
}

/// Q2: all windows whose stored hash collides with `template_hash`
/// (within the node's Hamming tolerance, matched on the hash partition).
pub fn q2_template_match(
    system: &Scalo,
    template_hash: &SignalHash,
    from_us: u64,
    to_us: u64,
) -> QueryAnswer {
    let mut matches = Vec::new();
    let mut bytes = 0;
    let mut total_bytes = 0;
    for node_id in 0..system.node_count() {
        let node = system.node(node_id);
        for rec in node
            .storage()
            .get(PartitionKind::Hashes)
            .range(from_us, to_us)
        {
            total_bytes += 240; // the signal window the hash stands for
            let stored = SignalHash(rec.data.clone());
            let hit = stored.0.len() == template_hash.0.len() && stored.hamming(template_hash) <= 1;
            if hit {
                matches.push((node_id, rec.key, rec.timestamp_us));
                bytes += 240;
            }
        }
    }
    let data_mb = (total_bytes as f64 / 1e6).max(1e-3);
    let fraction = if total_bytes == 0 {
        0.0
    } else {
        bytes as f64 / total_bytes as f64
    };
    QueryAnswer {
        matches,
        bytes,
        cost: evaluate(
            QueryKind::Q2TemplateHash,
            data_mb,
            fraction,
            &scenario_of(system),
        ),
    }
}

/// Q3: everything in the time range.
pub fn q3_all_data(system: &Scalo, from_us: u64, to_us: u64) -> QueryAnswer {
    let mut matches = Vec::new();
    let mut bytes = 0;
    for node_id in 0..system.node_count() {
        let node = system.node(node_id);
        for rec in node
            .storage()
            .get(PartitionKind::Signals)
            .range(from_us, to_us)
        {
            matches.push((node_id, rec.key, rec.timestamp_us));
            bytes += rec.data.len();
        }
    }
    let data_mb = (bytes as f64 / 1e6).max(1e-3);
    QueryAnswer {
        matches,
        bytes,
        cost: evaluate(QueryKind::Q3AllData, data_mb, 1.0, &scenario_of(system)),
    }
}

/// Why a compiled query could not be evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryRunError {
    /// The DAG contains a hash/collision-check stage but the caller
    /// supplied no template hash to match against.
    MissingTemplateHash,
}

impl std::fmt::Display for QueryRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingTemplateHash => {
                write!(f, "hash query needs a template hash to match against")
            }
        }
    }
}

impl std::error::Error for QueryRunError {}

/// Executes a compiled query-language DAG against the system: the §3.7
/// path from Listing 2 to data. Dispatch is structural — a
/// `seizure_detect` selection runs Q1, a hash operator runs Q2 (against
/// `template_hash`), anything else returns the raw range (Q3). A slice
/// attached to the final selection widens the time range around the
/// nominal `[from_us, to_us]` window.
pub fn run_compiled_query(
    dag: &Dag,
    system: &Scalo,
    from_us: u64,
    to_us: u64,
    template_hash: Option<&SignalHash>,
) -> Result<QueryAnswer, QueryRunError> {
    // Apply any slice from the DAG's selections.
    let (mut from, mut to) = (from_us, to_us);
    for op in &dag.operators {
        if let Operator::Select {
            slice: Some((a_ms, b_ms)),
            ..
        } = op
        {
            from = from.saturating_sub((-a_ms.min(0.0) * 1_000.0) as u64);
            to += (b_ms.max(0.0) * 1_000.0) as u64;
        }
    }
    let wants_detection = dag.operators.iter().any(|op| {
        matches!(
            op,
            Operator::Select {
                seizure_detect: true,
                ..
            }
        )
    });
    let wants_hash = dag
        .operators
        .iter()
        .any(|op| matches!(op, Operator::Hash { .. } | Operator::CollisionCheck { .. }));
    if wants_detection {
        Ok(q1_seizure_signals(system, from, to))
    } else if wants_hash {
        let h = template_hash.ok_or(QueryRunError::MissingTemplateHash)?;
        Ok(q2_template_match(system, h, from, to))
    } else {
        Ok(q3_all_data(system, from, to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScaloConfig;
    use scalo_lsh::eval::MeasureHasher;
    use scalo_ml::svm::LinearSvm;

    fn loaded_system() -> Scalo {
        let mut sys = Scalo::new(ScaloConfig::default().with_nodes(2).with_electrodes(2));
        // Install a trivial high-RMS detector on both nodes.
        for id in 0..2 {
            let feats = crate::node::Node::detection_features(&vec![0.1; 120]);
            let mut w = vec![0.0; feats.len()];
            w[feats.len() - 1] = 1.0;
            sys.node_mut(id).install_detector(LinearSvm::new(w, -0.5));
        }
        // Store quiet and loud windows at known timestamps.
        for t in 0..10u64 {
            for node in 0..2 {
                for e in 0..2 {
                    let amp = if t >= 5 { 2.0 } else { 0.05 };
                    let w: Vec<f64> = (0..120).map(|i| amp * (i as f64 * 0.2).sin()).collect();
                    sys.node_mut(node).ingest_window(e, t * 4_000, &w);
                }
            }
        }
        sys
    }

    #[test]
    fn q1_returns_only_seizure_windows() {
        let sys = loaded_system();
        let ans = q1_seizure_signals(&sys, 0, 40_000);
        // 2 nodes × 2 electrodes × 5 loud windows.
        assert_eq!(ans.matches.len(), 20, "{:?}", ans.matches.len());
        assert!(ans.matches.iter().all(|&(_, _, ts)| ts >= 20_000));
        assert!(ans.cost.qps > 0.0);
    }

    #[test]
    fn q2_finds_hash_matches() {
        let sys = loaded_system();
        // Template = the loud window every node stored.
        let w: Vec<f64> = (0..120).map(|i| 2.0 * (i as f64 * 0.2).sin()).collect();
        let template_hash = match sys.node(0).hasher() {
            MeasureHasher::Ssh(h) => h.hash(&w),
            MeasureHasher::Emd(h) => h.hash(&w),
        };
        let ans = q2_template_match(&sys, &template_hash, 0, 40_000);
        assert!(ans.matches.len() >= 20, "found {}", ans.matches.len());
    }

    #[test]
    fn q3_returns_everything_in_range() {
        let sys = loaded_system();
        let ans = q3_all_data(&sys, 8_000, 16_000);
        // Timestamps 8k, 12k, 16k × 2 nodes × 2 electrodes.
        assert_eq!(ans.matches.len(), 12);
        assert_eq!(ans.bytes, 12 * 240);
    }

    #[test]
    fn compiled_listing2_runs_as_q1_with_widened_range() {
        let sys = loaded_system();
        let dag = scalo_query::compile(
            "var seizure_data = stream.Map( s => s.select(s => s.data), s.locID)\
             .window(wsize=4ms).select(w => w.time >= -5000)\
             .select(w => w.seizure_detect(), w[-100ms:100ms])",
        )
        .unwrap();
        // Nominal range covers only the first loud window (t = 20 ms);
        // the DAG's ±100 ms slice widens it to all of them.
        let ans = run_compiled_query(&dag, &sys, 20_000, 20_000, None).unwrap();
        assert_eq!(ans.matches.len(), 20, "slice widened the range");
    }

    #[test]
    fn compiled_hash_query_runs_as_q2() {
        let sys = loaded_system();
        let dag =
            scalo_query::compile("var q = stream.window(wsize=4ms).hash(dtw).ccheck()").unwrap();
        let w: Vec<f64> = (0..120).map(|i| 2.0 * (i as f64 * 0.2).sin()).collect();
        let template_hash = match sys.node(0).hasher() {
            MeasureHasher::Ssh(h) => h.hash(&w),
            MeasureHasher::Emd(h) => h.hash(&w),
        };
        let ans = run_compiled_query(&dag, &sys, 0, 40_000, Some(&template_hash)).unwrap();
        assert!(ans.matches.len() >= 20);
    }

    #[test]
    fn compiled_plain_query_runs_as_q3() {
        let sys = loaded_system();
        let dag = scalo_query::compile("var q = stream.window(wsize=4ms)").unwrap();
        let ans = run_compiled_query(&dag, &sys, 8_000, 16_000, None).unwrap();
        assert_eq!(ans.matches.len(), 12);
    }

    #[test]
    fn hash_query_without_template_is_a_clean_error() {
        let sys = loaded_system();
        let dag =
            scalo_query::compile("var q = stream.window(wsize=4ms).hash(dtw).ccheck()").unwrap();
        assert_eq!(
            run_compiled_query(&dag, &sys, 0, 40_000, None).map(|a| a.bytes),
            Err(QueryRunError::MissingTemplateHash)
        );
    }

    #[test]
    fn q3_is_slower_than_q1_at_same_range() {
        let sys = loaded_system();
        let q1 = q1_seizure_signals(&sys, 0, 40_000);
        let q3 = q3_all_data(&sys, 0, 40_000);
        assert!(q3.cost.latency_ms >= q1.cost.latency_ms);
    }
}
