//! The external closed loop (§2.2's second application class): decoded
//! movement intent drives a prosthesis outside the body, and the
//! prosthesis' sensory consequences are relayed back as electrical
//! stimulation — "the 'feeling' of movement is emulated by relaying the
//! impact of the movement back to the individual's BCI".
//!
//! The whole loop — feature extraction, partial aggregation, decode,
//! external-radio hop to the prosthesis, feedback hop back, stimulation —
//! must complete within 50 ms (§2.2). This module simulates the loop over
//! a synthetic reaching session and accounts its latency from the same
//! component models the scheduler uses.

use crate::apps::movement::{generate_session, Session};
use crate::stim::{StimCommand, StimEngine};
use scalo_ml::kalman::{fit_kalman, KalmanFilter};
use scalo_net::radio::EXTERNAL;
use scalo_net::tx_time_ms;
use scalo_sched::movement::intent_latency_ms;
use scalo_sched::{Scenario, TaskKind};

/// Latency budget for one full sensorimotor loop (§2.2).
pub const LOOP_DEADLINE_MS: f64 = 50.0;

/// One step of the closed loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopStep {
    /// Decoded velocity (x, y).
    pub decoded_velocity: (f64, f64),
    /// True velocity (x, y).
    pub true_velocity: (f64, f64),
    /// End-to-end loop latency in ms.
    pub latency_ms: f64,
    /// Whether sensory feedback stimulation was issued.
    pub feedback_stimulated: bool,
}

/// Outcome of a closed-loop run.
#[derive(Debug, Clone)]
pub struct LoopRun {
    /// Per-step records (decode half of the session).
    pub steps: Vec<LoopStep>,
    /// Mean absolute velocity error.
    pub velocity_error: f64,
    /// Worst loop latency in ms.
    pub max_latency_ms: f64,
    /// Stimulation commands issued as sensory feedback.
    pub feedback_count: usize,
}

impl LoopRun {
    /// Whether every step met the 50 ms sensorimotor deadline.
    pub fn meets_deadline(&self) -> bool {
        self.max_latency_ms <= LOOP_DEADLINE_MS
    }
}

/// Runs the external closed loop over a synthetic session on `nodes`
/// implants: train the KF on the first half, decode the second half,
/// relay each intent to the prosthesis and stimulate sensory feedback
/// when the prosthesis reports contact (here: velocity reversal, a
/// simple mechanical event).
pub fn run_external_loop(session: &Session, nodes: usize) -> Result<LoopRun, String> {
    assert!(nodes >= 1, "need at least one implant");
    let half = session.states.len() / 2;
    let model = fit_kalman(&session.states[..half], &session.features[..half])
        .map_err(|e| format!("external loop: Kalman fit on session features failed: {e}"))?;
    let mut kf = KalmanFilter::new(model);
    let mut stim = StimEngine::new();

    // Component latencies per intent (the same accounting Figure 9b uses).
    let scenario = Scenario::new(nodes, 15.0);
    let decode_ms = intent_latency_ms(TaskKind::MiKf, &scenario);
    // Prosthesis hop: decoded state (16 B) out; feedback event (16 B) back.
    let hop_ms = tx_time_ms(16, EXTERNAL.data_rate_mbps);
    // Stimulation issue occupies the DAC for the burst setup (~0.1 ms).
    let stim_setup_ms = 0.1;

    let mut steps = Vec::new();
    let mut err = 0.0;
    let mut prev_v = (0.0f64, 0.0f64);
    for (t, (z, truth)) in session.features[half..]
        .iter()
        .zip(&session.states[half..])
        .enumerate()
    {
        let est = kf
            .step(z)
            .map_err(|e| format!("external loop: Kalman step {t} failed: {e}"))?;
        let decoded = (est[2], est[3]);
        err += (decoded.0 - truth[2]).abs() + (decoded.1 - truth[3]).abs();

        // The prosthesis reports a contact event on velocity reversal.
        let reversal = decoded.0 * prev_v.0 < 0.0 || decoded.1 * prev_v.1 < 0.0;
        prev_v = decoded;
        let mut latency = decode_ms + hop_ms;
        let mut stimulated = false;
        if reversal {
            latency += hop_ms + stim_setup_ms;
            stim.stimulate(t as u64 * 50_000, StimCommand::standard_burst(0))
                .map_err(|e| format!("external loop: feedback stimulation rejected: {e}"))?;
            stimulated = true;
        }
        steps.push(LoopStep {
            decoded_velocity: decoded,
            true_velocity: (truth[2], truth[3]),
            latency_ms: latency,
            feedback_stimulated: stimulated,
        });
    }
    let n = steps.len().max(1);
    Ok(LoopRun {
        velocity_error: err / (2 * n) as f64,
        max_latency_ms: steps.iter().map(|s| s.latency_ms).fold(0.0, f64::max),
        feedback_count: stim.log().len(),
        steps,
    })
}

/// Convenience: run the loop on a fresh synthetic session.
pub fn run_default_loop(nodes: usize, seed: u64) -> Result<LoopRun, String> {
    let session = generate_session(160, 8 * nodes.max(1), seed);
    run_external_loop(&session, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_meets_the_50ms_deadline() {
        for nodes in [1usize, 2, 4] {
            let run = run_default_loop(nodes, 42).unwrap();
            assert!(
                run.meets_deadline(),
                "{nodes} nodes: worst {} ms",
                run.max_latency_ms
            );
            assert!(run.max_latency_ms > 30.0, "KF decode dominates the loop");
        }
    }

    #[test]
    fn decoding_tracks_the_reach() {
        let run = run_default_loop(4, 7).unwrap();
        assert!(
            run.velocity_error < 0.3,
            "velocity error {}",
            run.velocity_error
        );
    }

    #[test]
    fn direction_reversals_trigger_sensory_feedback() {
        // The synthetic task switches target every 8 windows, so the
        // decode half contains several reversals.
        let run = run_default_loop(2, 11).unwrap();
        assert!(run.feedback_count >= 2, "{}", run.feedback_count);
        assert_eq!(
            run.feedback_count,
            run.steps.iter().filter(|s| s.feedback_stimulated).count()
        );
    }

    #[test]
    fn feedback_adds_latency_only_on_contact_steps() {
        let run = run_default_loop(2, 13).unwrap();
        let with: Vec<_> = run.steps.iter().filter(|s| s.feedback_stimulated).collect();
        let without: Vec<_> = run
            .steps
            .iter()
            .filter(|s| !s.feedback_stimulated)
            .collect();
        if let (Some(w), Some(wo)) = (with.first(), without.first()) {
            assert!(w.latency_ms > wo.latency_ms);
        }
    }
}
