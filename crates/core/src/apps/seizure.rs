//! Distributed seizure propagation, end to end (Figures 3a/5).
//!
//! Every 4 ms window each node ingests its electrodes (store + hash).
//! When a node detects a seizure it broadcasts its window hashes
//! (HCOMP-compressed, as a `Hashes` packet); receivers CCHECK them
//! against their recent local hashes; on a match the origin broadcasts
//! the full signal windows (`Signal` packets, delivered even when
//! corrupted); receivers confirm propagation by banded DTW against
//! their own matching windows (pruned with LB_Keogh + early abandon at
//! the decision threshold — decisions identical to the exact distance);
//! confirmed nodes would then stimulate. Local
//! detection continues unabated throughout.
//!
//! Error-resilience knobs reproduce §6.7: a hash-encoding error rate
//! (false negatives during an ongoing correlated seizure) and the
//! channel BER. Both merely *delay* confirmation to a later window —
//! quantified by [`PropagationRun::max_delay_ms`].

use crate::config::ScaloConfig;
use crate::node::Node;
use crate::stim::{StimCommand, StimEngine};
use crate::system::{ArrivalWs, Scalo};
use crate::workspace::Workspace;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use scalo_data::ieeg::MultiSiteRecording;
use scalo_lsh::SignalHash;
use scalo_ml::svm::LinearSvm;
use scalo_net::compress::{dcomp_decompress_into, hcomp_compress_into};
use scalo_net::packet::{Header, PayloadKind, BROADCAST};
use scalo_signal::dtw::{dtw_distance_pruned, DtwParams};
use scalo_signal::stats::z_normalize_into;
use scalo_trace::Stage;

/// Samples per analysis window.
pub const WINDOW: usize = 120;

/// Window cadence in µs (4 ms).
pub const WINDOW_US: u64 = 4_000;

/// One node's confirmation of seizure propagation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Confirmation {
    /// The confirming node.
    pub node: usize,
    /// Delay from origin detection to confirmation, in ms.
    pub delay_ms: f64,
}

/// Result of one propagation run.
#[derive(Debug, Clone, PartialEq)]
pub struct PropagationRun {
    /// Window index at which an origin first detected the seizure.
    pub origin_detect_window: Option<usize>,
    /// Per-node confirmations (excluding the origin).
    pub confirmations: Vec<Confirmation>,
    /// Hash packets dropped by the network (per receiver; with reliable
    /// transport, only packets the retransmission budget gave up on).
    pub hash_packets_dropped: usize,
    /// Times the detecting origin crashed and a surviving node took
    /// over as origin.
    pub origin_failovers: usize,
}

impl PropagationRun {
    /// The worst confirmation delay, in ms (the Figure 15 metric).
    pub fn max_delay_ms(&self) -> Option<f64> {
        self.confirmations
            .iter()
            .map(|c| c.delay_ms)
            .max_by(f64::total_cmp)
    }
}

/// Mutable mid-run protocol state, extracted from the run loop so a run
/// can advance one window at a time — the resumable unit of work the
/// fleet serving layer schedules ([`crate::session::Session`]).
#[derive(Debug, Clone)]
pub struct RunState {
    /// The currently detecting origin, as `(window, node)`.
    origin_detect: Option<(usize, usize)>,
    /// Window of the very first origin detection.
    first_detect_window: Option<usize>,
    /// Origin crash → survivor takeover count.
    failovers: usize,
    /// Per-node confirmation delay in ms, once confirmed.
    confirmed: Vec<Option<f64>>,
    /// Hash packets lost to the channel.
    hash_drops: usize,
    /// Next window index to process.
    window: usize,
    /// Total whole windows in the recording.
    windows_total: usize,
    /// Electrodes per node in the recording.
    electrodes: usize,
}

impl RunState {
    /// Next window index to process (also the number processed so far).
    pub fn window(&self) -> usize {
        self.window
    }

    /// Total whole windows in the recording.
    pub fn windows_total(&self) -> usize {
        self.windows_total
    }

    /// Whether every window has been processed.
    pub fn is_done(&self) -> bool {
        self.window >= self.windows_total
    }

    /// Folds every protocol decision in the state into `h`, for the
    /// per-window step digests the durability log records. Strictly
    /// scalar reads — no allocation, no formatting.
    pub fn fold_digest(&self, h: &mut crate::snapshot::Fnv64) {
        h.write_u64(self.window as u64);
        match self.origin_detect {
            Some((w, node)) => {
                h.write_u64(1);
                h.write_u64(w as u64);
                h.write_u64(node as u64);
            }
            None => h.write_u64(0),
        }
        match self.first_detect_window {
            Some(w) => {
                h.write_u64(1);
                h.write_u64(w as u64);
            }
            None => h.write_u64(0),
        }
        h.write_u64(self.failovers as u64);
        h.write_u64(self.hash_drops as u64);
        for c in &self.confirmed {
            match c {
                Some(delay_ms) => {
                    h.write_u64(1);
                    h.write_f64(*delay_ms);
                }
                None => h.write_u64(0),
            }
        }
    }
}

/// One member's view of a cohort's fused per-window kernel results
/// ([`crate::cohort`]): per-node hash and detection-feature lanes
/// computed once for the whole cohort, sliced here by the member's lane
/// offset. Consuming a view replaces the member's own Sketch and
/// feature-extraction work; every decision stays bit-identical because
/// hashers are config-deterministic and the per-channel kernels are
/// width-independent (a lane's result does not depend on how many other
/// lanes share the block).
#[derive(Debug, Clone, Copy)]
pub struct WindowPre<'a> {
    /// Fused ingest hashes, indexed `[node][lane]` with one lane per
    /// (member, electrode) pair.
    pub hashes: &'a [Vec<SignalHash>],
    /// Fused detection features, indexed `[node]`, flat
    /// `lane * n_feat ..` per lane.
    pub features: &'a [Vec<f64>],
    /// Features per lane.
    pub n_feat: usize,
    /// This member's first lane (member index × electrodes).
    pub lane0: usize,
}

/// The application harness.
#[derive(Debug)]
pub struct SeizureApp {
    system: Scalo,
    /// DTW confirmation threshold (on z-normalised windows).
    pub dtw_threshold: f64,
    /// Probability that an electrode's hash is mis-encoded (Figure 15a's
    /// error-rate axis).
    pub hash_error_rate: f64,
    /// Whether hash broadcasts ride the reliable transport
    /// (seq/ACK/retransmission) instead of fire-and-forget.
    pub use_reliable_transport: bool,
    /// Per-node stimulation engines (confirmed propagation stimulates
    /// the local site, Figure 3a's final stage).
    stim: Vec<StimEngine>,
    rng: ChaCha8Rng,
}

impl SeizureApp {
    /// Builds the app over a fresh system.
    pub fn new(config: ScaloConfig) -> Self {
        let seed = config.seed;
        let nodes = config.nodes;
        Self {
            system: Scalo::new(config),
            dtw_threshold: 6.0,
            hash_error_rate: 0.0,
            use_reliable_transport: false,
            stim: (0..nodes).map(|_| StimEngine::new()).collect(),
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0xf00d),
        }
    }

    /// The stimulation engine of `node` (commands issued on confirmed
    /// propagation).
    pub fn stim_engine(&self, node: usize) -> &StimEngine {
        &self.stim[node]
    }

    /// The underlying system.
    pub fn system(&self) -> &Scalo {
        &self.system
    }

    /// The application RNG's stream position in 32-bit words — a
    /// verification cursor for snapshot/restore: two runs that agree on
    /// the word position have consumed the same draw sequence.
    pub fn rng_word_pos(&self) -> u64 {
        self.rng.get_word_pos() as u64
    }

    /// Mutable access to the underlying system (fault plans, membership
    /// configuration).
    pub fn system_mut(&mut self) -> &mut Scalo {
        &mut self.system
    }

    /// Trains per-node seizure detectors from a labelled recording and
    /// installs them.
    pub fn train_detectors(&mut self, recording: &MultiSiteRecording) {
        for (node_id, rec) in recording.nodes.iter().enumerate() {
            if node_id >= self.system.node_count() {
                break;
            }
            let mut samples = Vec::new();
            let n = rec.num_samples();
            let mut t = 0;
            while t + WINDOW <= n {
                for ch in &rec.channels {
                    let w = &ch[t..t + WINDOW];
                    let label = rec.seizure[t + WINDOW / 2];
                    samples.push((Node::detection_features(w), label));
                }
                t += WINDOW * 4; // subsample training windows
            }
            let svm = LinearSvm::train_pegasos(&samples, 0.01, 12, 17 + node_id as u64);
            self.system.node_mut(node_id).install_detector(svm);
        }
    }

    /// Starts a resumable run over `recording`: returns the state that
    /// [`Self::step_window`] advances one 4 ms window at a time.
    ///
    /// # Panics
    ///
    /// Panics if the recording has fewer nodes than the system.
    pub fn begin(&self, recording: &MultiSiteRecording) -> RunState {
        let k = self.system.node_count();
        assert!(recording.nodes.len() >= k, "recording too small");
        RunState {
            origin_detect: None,
            first_detect_window: None,
            failovers: 0,
            confirmed: vec![None; k],
            hash_drops: 0,
            window: 0,
            windows_total: recording.nodes[0].num_samples() / WINDOW,
            electrodes: recording.nodes[0].num_channels(),
        }
    }

    /// Advances the protocol by exactly one window: ingest, local
    /// detection, and (once an origin has detected) the hash/signal
    /// confirmation exchange. Returns `false` once the recording is
    /// exhausted; the call is non-blocking in the sense that it does a
    /// bounded slice of work and returns.
    ///
    /// `ws` is the session's reusable scratch: quiet windows (no active
    /// exchange) perform zero heap allocations once nodes and workspace
    /// are warm. Decisions are bit-identical whichever workspace (fresh or
    /// reused) is passed.
    pub fn step_window(
        &mut self,
        recording: &MultiSiteRecording,
        st: &mut RunState,
        ws: &mut Workspace,
    ) -> bool {
        self.step_window_inner(recording, st, ws, None)
    }

    /// [`Self::step_window`] consuming a cohort's fused kernel results:
    /// ingest copies this member's precomputed hash lanes instead of
    /// hashing, and local detection votes on the precomputed feature
    /// lanes instead of re-running the FFT feature path. Everything else
    /// — storage, CCHECK, the confirmation exchange, RNG draws — runs
    /// exactly as in the self-computing form, so decisions are
    /// bit-identical.
    pub fn step_window_pre(
        &mut self,
        recording: &MultiSiteRecording,
        st: &mut RunState,
        ws: &mut Workspace,
        pre: &WindowPre<'_>,
    ) -> bool {
        self.step_window_inner(recording, st, ws, Some(pre))
    }

    fn step_window_inner(
        &mut self,
        recording: &MultiSiteRecording,
        st: &mut RunState,
        ws: &mut Workspace,
        pre: Option<&WindowPre<'_>>,
    ) -> bool {
        if st.is_done() {
            return false;
        }
        let k = self.system.node_count();
        let electrodes = st.electrodes;
        let horizon = self.system.config().ccheck_horizon_us;
        if st.window == 0 {
            // Size every node's CCHECK SRAM and NVM rings to the working
            // set: double the collision horizon (plus slack) so ring
            // evictions stay strictly older than any window still
            // reachable by matching or `stored_window`.
            let windows_back = 2 * ((horizon / WINDOW_US) as usize + 2);
            for node_id in 0..k {
                self.system
                    .node_mut(node_id)
                    .prepare_steady_state(electrodes, windows_back);
            }
        }
        {
            let w = st.window;
            let t0 = w * WINDOW;
            let now = self.system.now_us();

            // 1. Ingest this window on every live node (crashed nodes
            // neither record nor hash). Each node's electrodes are
            // scattered into the channel-major block once, then the
            // batched engine stores and hashes the whole block — the
            // stored bytes, hashes, and CCHECK state are byte-identical
            // to the per-electrode loop.
            for node_id in 0..k {
                if !self.system.is_alive(node_id) {
                    continue;
                }
                ws.trace.begin(Stage::Gather);
                ws.block.reset(electrodes, WINDOW);
                ws.block
                    .fill_channels(|e| &recording.nodes[node_id].channels[e][t0..t0 + WINDOW]);
                ws.trace.end(Stage::Gather);
                match pre {
                    Some(p) => self.system.node_mut(node_id).ingest_block_prehashed(
                        now,
                        ws,
                        &p.hashes[node_id][p.lane0..p.lane0 + electrodes],
                    ),
                    None => self.system.node_mut(node_id).ingest_block_ws(now, ws),
                }
            }

            // If the detecting origin crashed, a surviving detector takes
            // over below — the protocol degrades to the live quorum
            // rather than waiting on a dead node.
            if let Some((_, origin)) = st.origin_detect {
                if !self.system.is_alive(origin) {
                    st.origin_detect = None;
                    st.failovers += 1;
                }
            }

            // 2. Local detection at every live node (majority of
            // electrodes; a node without a detector casts no votes).
            for node_id in 0..k {
                if !self.system.is_alive(node_id) {
                    continue;
                }
                let mut votes = 0;
                for e in 0..electrodes {
                    let vote = match pre {
                        Some(p) => {
                            let f = &p.features[node_id][(p.lane0 + e) * p.n_feat..][..p.n_feat];
                            ws.trace.begin(Stage::Detect);
                            let v = self.system.node(node_id).detect_with_features(f);
                            ws.trace.end(Stage::Detect);
                            v
                        }
                        None => {
                            let win = &recording.nodes[node_id].channels[e][t0..t0 + WINDOW];
                            self.system.node(node_id).detect_seizure_traced(win, ws)
                        }
                    };
                    if vote.unwrap_or(false) {
                        votes += 1;
                    }
                }
                if votes * 2 > electrodes && st.origin_detect.is_none() {
                    st.origin_detect = Some((w, node_id));
                    st.first_detect_window.get_or_insert(w);
                }
            }

            // 3. If an origin has detected, run the exchange this window.
            if let Some((detect_w, origin)) = st.origin_detect {
                ws.trace.begin(Stage::Gather);
                ws.block.reset(electrodes, WINDOW);
                ws.block
                    .fill_channels(|e| &recording.nodes[origin].channels[e][t0..t0 + WINDOW]);
                ws.trace.end(Stage::Gather);
                ws.trace.begin(Stage::Sketch);
                match self.system.node(origin).hasher() {
                    scalo_lsh::eval::MeasureHasher::Ssh(hh) => {
                        hh.hash_block_into(&ws.block, &mut ws.block_hash, &mut ws.hashes)
                    }
                    scalo_lsh::eval::MeasureHasher::Emd(hh) => {
                        ws.hashes.clear();
                        for e in 0..electrodes {
                            ws.block.copy_channel_into(e, &mut ws.chan);
                            ws.hashes.push(hh.hash(&ws.chan));
                        }
                    }
                }
                // Encoding-error injection (Figure 15a). Hashing draws
                // nothing from the RNG, so injecting per electrode after
                // the batched hash consumes the exact draw sequence the
                // per-electrode loop did.
                if self.hash_error_rate > 0.0 {
                    for h in ws.hashes.iter_mut() {
                        if self.rng.gen::<f64>() < self.hash_error_rate {
                            for b in &mut h.0 {
                                *b = self.rng.gen();
                            }
                        }
                    }
                }
                ws.trace.end(Stage::Sketch);
                // Stage the concatenated hash bytes in the workspace
                // instead of cloning every hash into a temporary.
                ws.trace.begin(Stage::Radio);
                ws.hash_bytes.clear();
                for h in &ws.hashes {
                    ws.hash_bytes.extend_from_slice(&h.0);
                }
                hcomp_compress_into(&ws.hash_bytes, &mut ws.comp, &mut ws.compressed);
                let hash_header = Header {
                    src: origin as u8,
                    dst: BROADCAST,
                    flow: 1,
                    seq: w as u16,
                    len: 0,
                    kind: PayloadKind::Hashes,
                    timestamp_us: now as u32,
                };
                // Fire-and-forget or reliable delivery, unified into
                // per-receiver arrivals in the recycled broadcast scratch.
                if self.use_reliable_transport {
                    self.system.reliable_broadcast_ws(
                        origin,
                        hash_header,
                        &ws.compressed,
                        &mut ws.net,
                    );
                } else {
                    self.system
                        .broadcast_ws(origin, hash_header, &ws.compressed, &mut ws.net);
                }
                ws.trace.end(Stage::Radio);

                // Receivers that got the hashes check for collisions and
                // remember which (origin electrode → local window) pair
                // matched — that pair is what exact comparison verifies.
                // Hash packets drop on any corruption, so every delivered
                // payload is byte-identical to the compressed batch the
                // origin still holds: DCOMP and the chunk parse run once
                // per window (into recycled slots) instead of per receiver,
                // then each receiver probes via the allocation-free CCHECK
                // visitor.
                ws.responders.clear();
                ws.trace.begin(Stage::Probe);
                let any_delivered = ws
                    .net
                    .arrivals
                    .iter()
                    .any(|&(_, a)| matches!(a, ArrivalWs::Clean(_)));
                if any_delivered {
                    if !dcomp_decompress_into(&ws.compressed, &mut ws.decompressed) {
                        ws.decompressed.clear();
                    }
                    let width = ws.hashes.first().map_or(1, |h| h.0.len().max(1));
                    let mut used = 0;
                    for chunk in ws.decompressed.chunks(width) {
                        if used < ws.received.len() {
                            let slot = &mut ws.received[used].0;
                            slot.clear();
                            slot.extend_from_slice(chunk);
                        } else {
                            ws.received.push(SignalHash(chunk.to_vec()));
                        }
                        used += 1;
                    }
                    ws.received.truncate(used);
                }
                for ai in 0..ws.net.arrivals.len() {
                    let (to, arrival) = ws.net.arrivals[ai];
                    if !matches!(arrival, ArrivalWs::Clean(_)) {
                        st.hash_drops += 1;
                        continue;
                    }
                    let collision = self.system.node(to).last_collision_ws(
                        &ws.received,
                        now,
                        horizon,
                        &mut ws.probes,
                        &mut ws.probe_owner,
                        &mut ws.probe_order,
                    );
                    if let Some((origin_e, local_e, local_ts)) = collision {
                        if st.confirmed[to].is_none() {
                            ws.responders.push((to, origin_e, local_e, local_ts));
                        }
                    }
                }
                ws.trace.end(Stage::Probe);

                // The origin broadcasts the matched electrodes' full
                // signal windows (CSEL picks the candidates, §3.2);
                // responders confirm their matched pair with DTW.
                ws.wanted.clear();
                ws.wanted
                    .extend(ws.responders.iter().map(|&(_, e, _, _)| e));
                ws.wanted.sort_unstable();
                ws.wanted.dedup();
                for wi in 0..ws.wanted.len() {
                    let origin_e = ws.wanted[wi];
                    ws.trace.begin(Stage::Radio);
                    let sig = &recording.nodes[origin].channels[origin_e][t0..t0 + WINDOW];
                    ws.sig_bytes.clear();
                    for &x in sig {
                        ws.sig_bytes
                            .extend_from_slice(&((x * 8_192.0) as i16).to_le_bytes());
                    }
                    let sig_header = Header {
                        src: origin as u8,
                        dst: BROADCAST,
                        flow: 2,
                        seq: origin_e as u16,
                        len: 0,
                        kind: PayloadKind::Signal,
                        timestamp_us: now as u32,
                    };
                    self.system
                        .broadcast_ws(origin, sig_header, &ws.sig_bytes, &mut ws.net);
                    ws.trace.end(Stage::Radio);
                    for ai in 0..ws.net.arrivals.len() {
                        let (to, arrival) = ws.net.arrivals[ai];
                        let Some(&(_, _, local_e, ts)) = ws
                            .responders
                            .iter()
                            .find(|&&(t, e, _, _)| t == to && e == origin_e)
                        else {
                            continue;
                        };
                        // Signal packets deliver even when corrupted.
                        let slot = match arrival {
                            ArrivalWs::Clean(s) | ArrivalWs::Corrupt(s) => s,
                            ArrivalWs::Dropped => continue,
                        };
                        ws.remote_win.clear();
                        ws.remote_win.extend(
                            ws.net
                                .payload(slot)
                                .chunks_exact(2)
                                .map(|b| i16::from_le_bytes([b[0], b[1]]) as f64 / 8_192.0),
                        );
                        // Compare against the hash-matched stored window.
                        ws.trace.begin(Stage::StorageRead);
                        let found =
                            self.system
                                .node(to)
                                .stored_window_into(local_e, ts, &mut ws.local_win);
                        ws.trace.end(Stage::StorageRead);
                        if !found {
                            continue;
                        }
                        // LB_Keogh + early-abandon DTW with the confirm
                        // threshold as the cutoff: both bounds are
                        // conservative, so `distance < threshold` is the
                        // same decision the exact banded DP makes (and the
                        // exact value when neither bound fires).
                        ws.trace.begin(Stage::Dtw);
                        z_normalize_into(&ws.remote_win, &mut ws.znorm_a);
                        z_normalize_into(&ws.local_win, &mut ws.znorm_b);
                        let dist = dtw_distance_pruned(
                            &mut ws.dtw,
                            &ws.znorm_a,
                            &ws.znorm_b,
                            DtwParams::default(),
                            self.dtw_threshold,
                        )
                        .distance;
                        ws.trace.end(Stage::Dtw);
                        if dist < self.dtw_threshold && st.confirmed[to].is_none() {
                            st.confirmed[to] =
                                Some((w - detect_w) as f64 * WINDOW_US as f64 / 1_000.0);
                            // Figure 3a's final stage: stimulate the site
                            // anticipating seizure spread.
                            self.stim[to]
                                .stimulate(now, StimCommand::standard_burst(local_e))
                                .expect("standard burst is valid");
                        }
                    }
                }
            }

            self.system.advance_us(WINDOW_US);
        }
        st.window += 1;
        !st.is_done()
    }

    /// The run outcome so far (final once [`RunState::is_done`]).
    pub fn snapshot(st: &RunState) -> PropagationRun {
        PropagationRun {
            origin_detect_window: st.first_detect_window,
            confirmations: st
                .confirmed
                .iter()
                .enumerate()
                .filter_map(|(node, d)| d.map(|delay_ms| Confirmation { node, delay_ms }))
                .collect(),
            hash_packets_dropped: st.hash_drops,
            origin_failovers: st.failovers,
        }
    }

    /// Runs the propagation protocol over `recording`, starting at
    /// sample 0. Returns the run outcome.
    ///
    /// # Panics
    ///
    /// Panics if the recording has fewer nodes than the system.
    pub fn run(&mut self, recording: &MultiSiteRecording) -> PropagationRun {
        let mut st = self.begin(recording);
        let mut ws = Workspace::new();
        while self.step_window(recording, &mut st, &mut ws) {}
        Self::snapshot(&st)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalo_data::ieeg::{generate, IeegConfig, SeizureEvent};

    fn two_node_recording(seed: u64) -> MultiSiteRecording {
        generate(&IeegConfig {
            nodes: 2,
            electrodes_per_node: 4,
            duration_s: 0.9,
            seizures: vec![SeizureEvent::uniform(0.25, 0.6, 0, 2, 0.0)],
            seed,
            ..Default::default()
        })
    }

    fn app(ber: f64, seed: u64) -> SeizureApp {
        let cfg = ScaloConfig::default()
            .with_nodes(2)
            .with_electrodes(4)
            .with_ber(ber)
            .with_seed(seed);
        let mut app = SeizureApp::new(cfg);
        app.train_detectors(&two_node_recording(seed ^ 1));
        app
    }

    #[test]
    fn clean_run_detects_and_confirms_quickly() {
        let mut a = app(0.0, 42);
        let run = a.run(&two_node_recording(42));
        assert!(run.origin_detect_window.is_some(), "seizure not detected");
        assert_eq!(run.confirmations.len(), 1, "{run:?}");
        let delay = run.max_delay_ms().unwrap();
        // The 10 ms target applies from a *matched* detection; early in
        // the ramp a few 4 ms windows may pass before windows correlate,
        // so allow a small number of retries here.
        assert!(delay <= 30.0, "prompt confirmation: {delay} ms");
        // The confirming node stimulated.
        let stimulated: usize = (0..2).map(|n| a.stim_engine(n).log().len()).sum();
        assert_eq!(stimulated, 1, "one confirmed node stimulates once");
    }

    #[test]
    fn no_seizure_no_exchange() {
        let quiet = generate(&IeegConfig {
            nodes: 2,
            electrodes_per_node: 4,
            duration_s: 0.4,
            seizures: vec![],
            seed: 7,
            ..Default::default()
        });
        let mut a = app(0.0, 7);
        // Train on a seizure recording so the detector is meaningful.
        let run = a.run(&quiet);
        assert!(run.origin_detect_window.is_none(), "{run:?}");
        assert!(run.confirmations.is_empty());
    }

    #[test]
    fn encoding_errors_delay_but_do_not_break() {
        // §6.7/Figure 15a: even large per-hash error rates only delay
        // confirmation, because many electrodes carry the seizure and the
        // exchange retries every window.
        let mut clean = app(0.0, 11);
        let clean_delay = clean
            .run(&two_node_recording(11))
            .max_delay_ms()
            .expect("clean run confirms");
        let mut noisy = app(0.0, 11);
        noisy.hash_error_rate = 0.5;
        let run = noisy.run(&two_node_recording(11));
        let noisy_delay = run.max_delay_ms().expect("noisy run still confirms");
        assert!(noisy_delay >= clean_delay, "{noisy_delay} vs {clean_delay}");
        // The exact delay depends on the RNG stream; what matters is that
        // a 50% encoding-error rate delays confirmation by a bounded
        // number of retry windows rather than losing it.
        assert!(noisy_delay <= 100.0, "bounded delay: {noisy_delay} ms");
    }

    #[test]
    fn reliable_transport_recovers_hash_packets() {
        // Same harsh BER as `network_errors_drop_hash_packets`, but with
        // the reliable transport the exchange loses (essentially) no
        // hash batches to the channel.
        let mut a = app(1e-3, 23);
        a.use_reliable_transport = true;
        let run = a.run(&two_node_recording(23));
        assert_eq!(run.hash_packets_dropped, 0, "{run:?}");
        assert!(run.max_delay_ms().is_some(), "{run:?}");
        let s = a.system().stats();
        assert!(s.retransmissions > 0, "the channel did bite: {s:?}");
    }

    #[test]
    fn crashed_nodes_degrade_to_surviving_quorum() {
        use crate::fault::{Fault, FaultPlan};
        use crate::membership::MembershipEvent;

        let recording = generate(&IeegConfig {
            nodes: 4,
            electrodes_per_node: 4,
            duration_s: 0.9,
            seizures: vec![SeizureEvent::uniform(0.25, 0.6, 0, 4, 0.0)],
            seed: 31,
            ..Default::default()
        });
        let cfg = ScaloConfig::default()
            .with_nodes(4)
            .with_electrodes(4)
            .with_ber(0.0)
            .with_seed(31);
        let mut a = SeizureApp::new(cfg);
        a.train_detectors(&recording);
        // Node 3 dies before the seizure starts.
        let mut plan = FaultPlan::new();
        plan.schedule(100_000, Fault::Crash { node: 3 });
        a.system_mut().set_fault_plan(plan);

        let run = a.run(&recording);
        assert!(!a.system().is_alive(3));
        assert!(run.origin_detect_window.is_some(), "quorum still detects");
        assert!(
            run.confirmations.iter().any(|c| c.node != 3),
            "a survivor confirms: {run:?}"
        );
        assert!(run.confirmations.iter().all(|c| c.node != 3));
        // The survivors evicted the dead node and re-solved the schedule.
        assert!(a
            .system()
            .membership_log()
            .iter()
            .any(|r| r.event == MembershipEvent::Evicted { peer: 3 }));
        let decision = a.system().schedule_decisions().last().expect("re-solved");
        assert_eq!(decision.live, vec![0, 1, 2]);
        assert!(a.system().membership(0).has_quorum());
    }

    #[test]
    fn network_errors_drop_hash_packets() {
        // Figure 15b: at harsh BER some hash packets drop; confirmation
        // resumes at a later window.
        let mut a = app(1e-3, 23);
        let run = a.run(&two_node_recording(23));
        assert!(run.hash_packets_dropped > 0, "{run:?}");
        assert!(
            run.max_delay_ms().is_some(),
            "confirmation still happens: {run:?}"
        );
    }
}
