//! Diagnostic harness for tuning hash parameters (run with --ignored).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use scalo_lsh::emd_hash::EmdHasher;
use scalo_lsh::eval::{generate_pairs, threshold_at_quantile, total_error_rate};
use scalo_lsh::{HashConfig, Measure, SshHasher};
use scalo_signal::emd::emd_signals;

fn random_signal(rng: &mut ChaCha8Rng, n: usize) -> Vec<f64> {
    let f1 = 0.05 + rng.gen::<f64>() * 0.3;
    let f2 = 0.05 + rng.gen::<f64>() * 0.3;
    let p1 = rng.gen::<f64>() * std::f64::consts::TAU;
    let p2 = rng.gen::<f64>() * std::f64::consts::TAU;
    (0..n)
        .map(|i| (i as f64 * f1 + p1).sin() + 0.5 * (i as f64 * f2 + p2).sin())
        .collect()
}

#[test]
#[ignore = "diagnostic only"]
fn diag_ssh_rates() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    for m in [Measure::Dtw, Measure::Euclidean, Measure::Xcor] {
        let hasher = SshHasher::new(HashConfig::for_measure(m));
        let mut sim = 0;
        let mut dis = 0;
        let trials = 300;
        for _ in 0..trials {
            let a = random_signal(&mut rng, 120);
            let near: Vec<f64> = a
                .iter()
                .map(|&x| x + 0.05 * (rng.gen::<f64>() - 0.5))
                .collect();
            let far = random_signal(&mut rng, 120);
            sim += usize::from(hasher.collide(&a, &near));
            dis += usize::from(hasher.collide(&a, &far));
        }
        println!("{m}: similar {sim}/{trials}  dissimilar {dis}/{trials}");
    }
}

#[test]
#[ignore = "diagnostic only"]
fn diag_emd_rates() {
    for bucket in [0.5, 1.0, 2.0, 3.0, 5.0, 8.0] {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let h = EmdHasher::new(120, bucket, 3);
        let (mut nh, mut fh, mut nt, mut ft) = (0, 0, 0, 0);
        for _ in 0..600 {
            let a = random_signal(&mut rng, 120);
            let b = random_signal(&mut rng, 120);
            let d = emd_signals(&a, &b);
            let c = h.collide(&a, &b);
            if d < 2.0 {
                nt += 1;
                nh += usize::from(c);
            } else if d > 8.0 {
                ft += 1;
                fh += usize::from(c);
            }
        }
        println!("bucket {bucket}: near {nh}/{nt}  far {fh}/{ft}");
    }
}

#[test]
#[ignore = "diagnostic only"]
fn diag_total_error() {
    for m in Measure::ALL {
        let pairs = generate_pairs(m, 400, 11);
        let thr = threshold_at_quantile(&pairs, 0.5);
        let err = total_error_rate(m, &pairs, thr);
        println!("{m}: threshold {thr:.3} total error {err:.3}");
    }
}
