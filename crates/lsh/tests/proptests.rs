//! Property-based tests for the hashing layer.

use proptest::prelude::*;
use scalo_lsh::ccheck::CollisionChecker;
use scalo_lsh::minhash::{consistent_minhash, hash_evaluations};
use scalo_lsh::{HashConfig, Measure, SignalHash, SshHasher};
use std::collections::HashMap;

fn sig(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-5.0f64..5.0, len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hashing_is_deterministic(x in sig(120)) {
        for m in [Measure::Dtw, Measure::Euclidean, Measure::Xcor] {
            let h = SshHasher::new(HashConfig::for_measure(m));
            prop_assert_eq!(h.hash(&x), h.hash(&x));
        }
    }

    #[test]
    fn xcor_hash_invariant_under_affine_positive(x in sig(120), scale in 0.1f64..20.0, offset in -10.0f64..10.0) {
        let h = SshHasher::new(HashConfig::for_measure(Measure::Xcor));
        let t: Vec<f64> = x.iter().map(|&v| scale * v + offset).collect();
        // Constant signals degenerate; skip them.
        let std = {
            let m = x.iter().sum::<f64>() / x.len() as f64;
            (x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64).sqrt()
        };
        prop_assume!(std > 1e-3);
        prop_assert_eq!(h.hash(&x), h.hash(&t));
    }

    #[test]
    fn collide_is_reflexive_and_symmetric(a in sig(120), b in sig(120)) {
        let h = SshHasher::new(HashConfig::for_measure(Measure::Dtw));
        prop_assert!(h.collide(&a, &a));
        prop_assert_eq!(h.collide(&a, &b), h.collide(&b, &a));
    }

    #[test]
    fn neighbor_sets_have_fixed_probe_count(bytes in proptest::collection::vec(any::<u8>(), 1..4)) {
        let h = SignalHash(bytes.clone());
        prop_assert_eq!(h.neighbors(1).len(), 1 + 8 * bytes.len());
    }

    #[test]
    fn consistent_minhash_winner_is_in_the_set(tokens in proptest::collection::vec((0u32..1000, 1u32..50), 1..20), seed in any::<u64>()) {
        let set: HashMap<u32, u32> = tokens.iter().copied().collect();
        let winner = consistent_minhash(&set, seed).expect("non-empty set");
        prop_assert!(set.contains_key(&winner));
        // Deterministic-latency claim: one evaluation per distinct token.
        prop_assert_eq!(hash_evaluations(&set, true), set.len());
    }

    #[test]
    fn ccheck_finds_exactly_in_horizon_matches(times in proptest::collection::vec(0u64..10_000, 1..30), horizon in 100u64..5_000) {
        let mut cc = CollisionChecker::new(1024);
        let value = SignalHash(vec![0x42]);
        for (e, &t) in times.iter().enumerate() {
            cc.record(e, t, value.clone());
        }
        let now = 10_000u64;
        let found = cc.matches(std::slice::from_ref(&value), now, horizon);
        let expected = times
            .iter()
            .filter(|&&t| t >= now - horizon && t <= now)
            .count();
        prop_assert_eq!(found.len(), expected);
    }
}

// --- `*_into` scratch-buffer equivalence --------------------------------
//
// The hot ingest path hashes every window through `hash_into` with a
// scratch and output left dirty by the previous window; all three
// reusing forms must reproduce their allocating counterparts exactly,
// independent of prior buffer contents.

use scalo_lsh::sketch::Sketcher;
use scalo_lsh::ssh::HashScratch;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sketch_into_equals_legacy(x in sig(120), window in 1usize..16, stride in 1usize..8, seed in any::<u64>()) {
        let sk = Sketcher::new(window, stride, seed);
        let legacy = sk.sketch(&x);
        let mut bits = vec![true; 5];
        for _ in 0..2 {
            sk.sketch_into(&x, &mut bits);
            prop_assert_eq!(&bits, &legacy);
        }
    }

    #[test]
    fn hash_into_equals_legacy(x in sig(120), seed in any::<u64>()) {
        for m in [Measure::Dtw, Measure::Euclidean, Measure::Xcor] {
            let mut cfg = HashConfig::for_measure(m);
            cfg.seed = seed;
            let h = SshHasher::new(cfg);
            let legacy = h.hash(&x);
            let mut scratch = HashScratch::new();
            let mut out = SignalHash(vec![0xab; 3]);
            // Second pass reuses the warm scratch and the filled output.
            for _ in 0..2 {
                h.hash_into(&x, &mut scratch, &mut out);
                prop_assert_eq!(&out, &legacy);
            }
        }
    }

    #[test]
    fn neighbors_into_equals_legacy(bytes in proptest::collection::vec(any::<u8>(), 1..4), tolerance in 0u32..3) {
        let h = SignalHash(bytes);
        let legacy = h.neighbors(tolerance);
        let mut out = vec![SignalHash(vec![9; 9]); 2];
        h.neighbors_into(tolerance, &mut out);
        prop_assert_eq!(out, legacy);
    }
}

// --- SIMD lanes ≡ scalar reference, at every detected ISA level ---------
//
// The block sketcher's tap accumulation dispatches through
// `scalo_signal::simd::dot_frames`; sweep every level this host can run
// against a pinned-scalar sketcher, over odd channel counts (so the
// 4/2-lane loops, the AVX2→SSE2 tail handoff, and the scalar remainder
// all fire) and window/stride combinations that leave partial tails.

use scalo_signal::block::ChannelBlock;
use scalo_signal::simd::SimdLevel;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn block_sketch_isa_sweep_matches_scalar(
        data in proptest::collection::vec(-5.0f64..5.0, 0..=9 * 40),
        channels in 1usize..10,
        window in 1usize..16,
        stride in 1usize..8,
        seed in any::<u64>(),
    ) {
        let samples = data.len() / channels;
        let mut block = ChannelBlock::new();
        block.reset(channels, samples);
        block.data_mut().copy_from_slice(&data[..channels * samples]);
        let scalar = Sketcher::with_level(window, stride, seed, SimdLevel::Scalar);
        let mut acc = Vec::new();
        let mut scalar_bits = Vec::new();
        let n_pos = scalar.sketch_block_into(&block, &mut acc, &mut scalar_bits);
        for level in SimdLevel::supported() {
            let sk = Sketcher::with_level(window, stride, seed, level);
            let mut bits = vec![true; 3];
            let got = sk.sketch_block_into(&block, &mut acc, &mut bits);
            prop_assert_eq!(got, n_pos, "level {}", level);
            prop_assert_eq!(&bits, &scalar_bits, "level {}", level);
        }
    }
}
