//! Weighted min-hash (the other half of the NGRAM PE).
//!
//! Prior SSH work selects the min-hash with a rejection-sampling step whose
//! latency depends on the data; SCALO replaces it with a deterministic
//! method based on consistent hashing (§3.2, citing Karger et al. \[54\]) so
//! that PE latency and power stay fixed. Both are implemented here —
//! [`rejection_minhash`] as the baseline and [`consistent_minhash`] as
//! SCALO's PE — and a statistical test checks they estimate the same
//! weighted-Jaccard collision probability.

use std::collections::HashMap;

/// SplitMix64: a tiny, high-quality 64-bit mixer used as the PE's hash
/// primitive.
fn mix(seed: u64, value: u64) -> u64 {
    let mut z = seed ^ value.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash to a uniform float in the open interval (0, 1).
fn uniform01(seed: u64, value: u64) -> f64 {
    let bits = mix(seed, value) >> 11; // 53 bits
    (bits as f64 + 0.5) / (1u64 << 53) as f64
}

/// Classic weighted min-hash by sample expansion: token `t` with weight
/// `w` contributes candidates `(t, 1), …, (t, w)`; the overall minimum
/// hash picks the winner. Work is proportional to the *total weight* —
/// the variable-latency behaviour SCALO designs away.
///
/// Returns the winning token, or `None` for an empty set.
pub fn rejection_minhash(counts: &HashMap<u32, u32>, seed: u64) -> Option<u32> {
    let mut best: Option<(u64, u32)> = None;
    for (&token, &weight) in counts {
        for rep in 0..weight {
            let h = mix(seed, (u64::from(token) << 32) | u64::from(rep));
            if best.is_none_or(|(bh, _)| h < bh) {
                best = Some((h, token));
            }
        }
    }
    best.map(|(_, t)| t)
}

/// Deterministic-latency weighted min-hash via exponential clocks (the
/// consistent-hashing construction): each *distinct* token gets score
/// `-ln(u) / weight` and the minimum-score token wins. One hash per
/// distinct token ⇒ latency is fixed by the sketch length, independent of
/// the weights.
///
/// Returns the winning token, or `None` for an empty set.
pub fn consistent_minhash(counts: &HashMap<u32, u32>, seed: u64) -> Option<u32> {
    let mut best: Option<(f64, u32)> = None;
    for (&token, &weight) in counts {
        if weight == 0 {
            continue;
        }
        let u = uniform01(seed, u64::from(token));
        let score = -u.ln() / f64::from(weight);
        if best.is_none_or(|(bs, bt)| score < bs || (score == bs && token < bt)) {
            best = Some((score, token));
        }
    }
    best.map(|(_, t)| t)
}

/// Number of hash evaluations each scheme performs — the latency proxy
/// asserted by the determinism tests and the hardware model.
pub fn hash_evaluations(counts: &HashMap<u32, u32>, deterministic: bool) -> usize {
    if deterministic {
        counts.len()
    } else {
        counts.values().map(|&w| w as usize).sum()
    }
}

/// Derives `bytes` one-byte min-hash signatures from a weighted set by
/// folding each winning token (under byte-specific seeds) to 8 bits.
pub fn minhash_signature(counts: &HashMap<u32, u32>, seed: u64, bytes: usize) -> Vec<u8> {
    (0..bytes)
        .map(|i| {
            let s = mix(seed, i as u64);
            match consistent_minhash(counts, s) {
                Some(token) => (mix(s, u64::from(token)) & 0xff) as u8,
                None => 0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ngram::weighted_jaccard;

    fn set_a() -> HashMap<u32, u32> {
        HashMap::from([(1, 3), (2, 2), (3, 1)])
    }

    fn set_b() -> HashMap<u32, u32> {
        HashMap::from([(1, 2), (2, 2), (4, 2)])
    }

    #[test]
    fn consistent_minhash_collision_rate_matches_jaccard() {
        let (a, b) = (set_a(), set_b());
        let j = weighted_jaccard(&a, &b); // min(3,2)+min(2,2) / max… = 4/8
        assert!((j - 0.5).abs() < 1e-12);
        let trials = 4000;
        let collisions = (0..trials)
            .filter(|&s| consistent_minhash(&a, s) == consistent_minhash(&b, s))
            .count();
        let rate = collisions as f64 / trials as f64;
        assert!((rate - j).abs() < 0.05, "rate {rate} vs jaccard {j}");
    }

    #[test]
    fn rejection_minhash_collision_rate_matches_jaccard() {
        let (a, b) = (set_a(), set_b());
        let j = weighted_jaccard(&a, &b);
        let trials = 4000;
        let collisions = (0..trials)
            .filter(|&s| rejection_minhash(&a, s) == rejection_minhash(&b, s))
            .count();
        let rate = collisions as f64 / trials as f64;
        assert!((rate - j).abs() < 0.05, "rate {rate} vs jaccard {j}");
    }

    #[test]
    fn deterministic_scheme_has_fixed_work() {
        let a = HashMap::from([(1, 1000), (2, 2000)]);
        assert_eq!(hash_evaluations(&a, true), 2);
        assert_eq!(hash_evaluations(&a, false), 3000);
    }

    #[test]
    fn identical_sets_always_collide() {
        let a = set_a();
        for s in 0..100 {
            assert_eq!(consistent_minhash(&a, s), consistent_minhash(&a.clone(), s));
        }
    }

    #[test]
    fn empty_set_yields_none() {
        assert_eq!(consistent_minhash(&HashMap::new(), 1), None);
        assert_eq!(rejection_minhash(&HashMap::new(), 1), None);
    }

    #[test]
    fn signature_is_deterministic_and_sized() {
        let a = set_a();
        let s1 = minhash_signature(&a, 42, 2);
        let s2 = minhash_signature(&a, 42, 2);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 2);
    }

    #[test]
    fn weight_skew_biases_winner() {
        // A token with overwhelming weight should win almost always.
        let a = HashMap::from([(7, 10_000), (8, 1)]);
        let wins = (0..500)
            .filter(|&s| consistent_minhash(&a, s) == Some(7))
            .count();
        assert!(wins > 480, "{wins}/500");
    }
}
