//! Hash-vs-exact comparison accuracy (the Figure 11 experiment).
//!
//! For each measure we set a similarity threshold, decide each signal pair
//! both exactly and by hash collision, and bin the disagreements by the
//! pair's distance from the threshold. The paper reports <8.5% total error
//! with errors concentrated near the threshold and biased toward false
//! positives (which a later exact comparison resolves).

use crate::config::{HashConfig, Measure};
use crate::emd_hash::EmdHasher;
use crate::ssh::SshHasher;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use scalo_signal::dtw::{dtw_distance, DtwParams};
use scalo_signal::emd::emd_signals;
use scalo_signal::stats::euclidean;
use scalo_signal::xcor::pearson;

/// A signal pair with its exact measure value.
#[derive(Debug, Clone)]
pub struct MeasuredPair {
    /// First window.
    pub a: Vec<f64>,
    /// Second window.
    pub b: Vec<f64>,
    /// Exact measure value (distance, or correlation for XCOR).
    pub exact: f64,
}

/// One bin of the Figure 11 histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorBin {
    /// Bin centre, in percent distance from the threshold (negative =
    /// more similar than the threshold).
    pub distance_pct: f64,
    /// Fraction of pairs in this bin where hash and exact disagreed.
    pub error_rate: f64,
    /// Pairs in the bin.
    pub count: usize,
}

/// Computes the exact measure value for a pair.
pub fn exact_measure(measure: Measure, a: &[f64], b: &[f64]) -> f64 {
    match measure {
        Measure::Euclidean => euclidean(a, b),
        Measure::Dtw => dtw_distance(a, b, DtwParams::default()),
        Measure::Xcor => pearson(a, b),
        Measure::Emd => emd_signals(a, b),
    }
}

/// Whether the exact value means "similar" under `threshold` for this
/// measure (correlation is a similarity, the others are distances).
pub fn exact_similar(measure: Measure, exact: f64, threshold: f64) -> bool {
    match measure {
        Measure::Xcor => exact >= threshold,
        _ => exact <= threshold,
    }
}

/// Signed percent distance of `exact` from the threshold, oriented so that
/// negative means "more similar than the threshold" for every measure.
pub fn distance_from_threshold_pct(measure: Measure, exact: f64, threshold: f64) -> f64 {
    let raw = (exact - threshold) / threshold.abs().max(1e-9) * 100.0;
    match measure {
        Measure::Xcor => -raw,
        _ => raw,
    }
}

/// A hash-based similarity decider for any measure.
#[derive(Debug, Clone)]
pub enum MeasureHasher {
    /// SSH-pipeline hash (DTW / Euclidean / XCOR).
    Ssh(SshHasher),
    /// EMDH-pipeline hash.
    Emd(EmdHasher),
}

impl MeasureHasher {
    /// The hasher SCALO configures for `measure` over `window`-sample
    /// signals.
    pub fn for_measure(measure: Measure, window: usize) -> Self {
        match measure {
            Measure::Emd => MeasureHasher::Emd(EmdHasher::new(window, 4.0, 0x5ca1_0e0d)),
            m => MeasureHasher::Ssh(SshHasher::new(HashConfig::for_measure(m))),
        }
    }

    /// Hash-collision similarity decision.
    pub fn similar(&self, a: &[f64], b: &[f64]) -> bool {
        match self {
            MeasureHasher::Ssh(h) => h.collide(a, b),
            MeasureHasher::Emd(h) => h.collide(a, b),
        }
    }

    /// Wire size of one hash under this hasher, in bytes.
    pub fn wire_bytes(&self) -> usize {
        match self {
            MeasureHasher::Ssh(h) => h.config().hash_bytes,
            MeasureHasher::Emd(_) => 2,
        }
    }
}

/// Generates `n` signal pairs spanning the similarity spectrum for a
/// 120-sample window: each pair is a smooth base signal plus a perturbed
/// copy whose noise/warp amplitude sweeps from near-zero to dominant.
pub fn generate_pairs(measure: Measure, n: usize, seed: u64) -> Vec<MeasuredPair> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let window = 120;
    (0..n)
        .map(|i| {
            let f = 0.05 + rng.gen::<f64>() * 0.3;
            let p = rng.gen::<f64>() * std::f64::consts::TAU;
            let base: Vec<f64> = (0..window + 8)
                .map(|t| (t as f64 * f + p).sin() + 0.4 * (t as f64 * f * 2.3 + p).cos())
                .collect();
            // Perturbation strength sweeps across pairs.
            let strength = (i as f64 + 0.5) / n as f64 * 2.0;
            let shift = (rng.gen::<f64>() * 4.0 * strength) as usize;
            let f2 = 0.05 + rng.gen::<f64>() * 0.3;
            let p2 = rng.gen::<f64>() * std::f64::consts::TAU;
            let b: Vec<f64> = (0..window)
                .map(|t| {
                    let clean = base[t + shift];
                    let other = (t as f64 * f2 + p2).sin();
                    (1.0 - strength.min(1.0)) * clean
                        + strength.min(1.0) * other
                        + 0.05 * strength * (rng.gen::<f64>() - 0.5)
                })
                .collect();
            let a = base[..window].to_vec();
            let exact = exact_measure(measure, &a, &b);
            MeasuredPair { a, b, exact }
        })
        .collect()
}

/// Runs the Figure 11 experiment: decides every pair by hash and exactly,
/// and bins disagreements by percent distance from `threshold`.
///
/// `bin_width_pct` controls histogram resolution; bins span
/// `[-limit_pct, +limit_pct]`.
pub fn hash_error_histogram(
    measure: Measure,
    pairs: &[MeasuredPair],
    threshold: f64,
    bin_width_pct: f64,
    limit_pct: f64,
) -> Vec<ErrorBin> {
    assert!(
        bin_width_pct > 0.0 && limit_pct > 0.0,
        "bad histogram params"
    );
    let hasher = MeasureHasher::for_measure(measure, 120);
    let n_bins = (2.0 * limit_pct / bin_width_pct).round() as usize;
    let mut errors = vec![0usize; n_bins];
    let mut counts = vec![0usize; n_bins];
    for pair in pairs {
        let pct = distance_from_threshold_pct(measure, pair.exact, threshold);
        if pct < -limit_pct || pct >= limit_pct {
            continue;
        }
        let bin = ((pct + limit_pct) / bin_width_pct) as usize;
        let bin = bin.min(n_bins - 1);
        counts[bin] += 1;
        let exact = exact_similar(measure, pair.exact, threshold);
        let hashed = hasher.similar(&pair.a, &pair.b);
        if exact != hashed {
            errors[bin] += 1;
        }
    }
    (0..n_bins)
        .map(|i| ErrorBin {
            distance_pct: -limit_pct + (i as f64 + 0.5) * bin_width_pct,
            error_rate: if counts[i] == 0 {
                0.0
            } else {
                errors[i] as f64 / counts[i] as f64
            },
            count: counts[i],
        })
        .collect()
}

/// Total error rate across all pairs (the paper's <8.5% headline).
pub fn total_error_rate(measure: Measure, pairs: &[MeasuredPair], threshold: f64) -> f64 {
    let hasher = MeasureHasher::for_measure(measure, 120);
    if pairs.is_empty() {
        return 0.0;
    }
    let errors = pairs
        .iter()
        .filter(|p| exact_similar(measure, p.exact, threshold) != hasher.similar(&p.a, &p.b))
        .count();
    errors as f64 / pairs.len() as f64
}

/// Picks the similarity threshold the hash is calibrated for: the exact
/// value that minimises hash-vs-exact disagreement over a calibration
/// set. The paper fixes a threshold and "configure\[s\] our hash
/// generation functions for this threshold" (§6.5); calibrating the
/// threshold to the hash's operating point is the same alignment run in
/// the other direction.
pub fn calibrated_threshold(measure: Measure, pairs: &[MeasuredPair]) -> f64 {
    assert!(!pairs.is_empty(), "no pairs");
    let hasher = MeasureHasher::for_measure(measure, 120);
    let decisions: Vec<(f64, bool)> = pairs
        .iter()
        .map(|p| (p.exact, hasher.similar(&p.a, &p.b)))
        .collect();
    let mut candidates: Vec<f64> = decisions.iter().map(|d| d.0).collect();
    candidates.sort_by(f64::total_cmp);
    candidates
        .iter()
        .copied()
        .min_by_key(|&t| {
            decisions
                .iter()
                .filter(|&&(exact, collide)| exact_similar(measure, exact, t) != collide)
                .count()
        })
        .expect("non-empty candidates")
}

/// Picks a threshold at the given quantile of the pairs' exact values —
/// how the experiments calibrate thresholds per measure.
pub fn threshold_at_quantile(pairs: &[MeasuredPair], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    assert!(!pairs.is_empty(), "no pairs");
    let mut vals: Vec<f64> = pairs.iter().map(|p| p.exact).collect();
    vals.sort_by(f64::total_cmp);
    vals[((vals.len() - 1) as f64 * q) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_span_the_similarity_spectrum() {
        let pairs = generate_pairs(Measure::Dtw, 200, 3);
        let min = pairs.iter().map(|p| p.exact).fold(f64::INFINITY, f64::min);
        let max = pairs.iter().map(|p| p.exact).fold(0.0, f64::max);
        assert!(min < 1.0, "should contain very similar pairs, min={min}");
        assert!(max > 5.0, "should contain dissimilar pairs, max={max}");
    }

    #[test]
    fn errors_concentrate_near_threshold() {
        let pairs = generate_pairs(Measure::Dtw, 600, 5);
        let thr = threshold_at_quantile(&pairs, 0.5);
        let bins = hash_error_histogram(Measure::Dtw, &pairs, thr, 20.0, 60.0);
        let near: f64 = bins
            .iter()
            .filter(|b| b.distance_pct.abs() < 25.0)
            .map(|b| b.error_rate)
            .sum();
        let far: f64 = bins
            .iter()
            .filter(|b| b.distance_pct.abs() > 45.0)
            .map(|b| b.error_rate)
            .sum();
        assert!(near >= far, "near {near} vs far {far}");
    }

    #[test]
    fn total_error_is_bounded_for_all_measures() {
        for measure in Measure::ALL {
            let pairs = generate_pairs(measure, 400, 11);
            let q = 0.5;
            let thr = threshold_at_quantile(&pairs, q);
            let err = total_error_rate(measure, &pairs, thr);
            assert!(err < 0.35, "{measure}: total error {err}");
        }
    }

    #[test]
    fn xcor_orientation_is_flipped() {
        // High correlation = similar; above-threshold exact ⇒ negative pct.
        let pct = distance_from_threshold_pct(Measure::Xcor, 0.9, 0.5);
        assert!(pct < 0.0);
        let pct = distance_from_threshold_pct(Measure::Dtw, 0.9, 0.5);
        assert!(pct > 0.0);
    }

    #[test]
    fn calibrated_threshold_brings_errors_into_paper_band() {
        // §6.5: total error < 8.5% once hash and threshold are aligned.
        for measure in [Measure::Xcor, Measure::Euclidean] {
            let pairs = generate_pairs(measure, 500, 77);
            let thr = calibrated_threshold(measure, &pairs);
            let err = total_error_rate(measure, &pairs, thr);
            assert!(err < 0.12, "{measure}: total error {err}");
        }
        for measure in [Measure::Dtw, Measure::Emd] {
            let pairs = generate_pairs(measure, 500, 78);
            let thr = calibrated_threshold(measure, &pairs);
            let err = total_error_rate(measure, &pairs, thr);
            assert!(err < 0.25, "{measure}: total error {err}");
        }
    }

    #[test]
    fn quantile_threshold_is_monotone() {
        let pairs = generate_pairs(Measure::Euclidean, 100, 9);
        assert!(threshold_at_quantile(&pairs, 0.2) <= threshold_at_quantile(&pairs, 0.8));
    }
}
