//! Hash collision checking (the CCHECK PE).
//!
//! "When hashes are received by a node for matching, they are sent to the
//! CCHECK PE that stores them in SRAM registers and sorts them in place.
//! The PE reads local hashes up to a configurable past time (e.g., 100 ms)
//! from the on-chip storage, and checks for matches with the received
//! hashes using binary search" (§3.2).

use crate::SignalHash;

/// A local hash record: which electrode produced it and when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRecord {
    /// Producing electrode index on this node.
    pub electrode: usize,
    /// Timestamp in microseconds (node-local clock).
    pub timestamp_us: u64,
    /// The hash value.
    pub hash: SignalHash,
}

/// A collision between a received hash and a local record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashMatch {
    /// Index into the received batch.
    pub received_index: usize,
    /// The matching local record.
    pub local: HashRecord,
}

/// The CCHECK PE: a bounded store of recent local hashes plus the sorted
/// binary-search matcher for received batches.
#[derive(Debug, Clone, Default)]
pub struct CollisionChecker {
    records: Vec<HashRecord>, // kept in insertion (time) order
    capacity: usize,
}

impl CollisionChecker {
    /// A checker whose SRAM holds at most `capacity` local records
    /// (oldest evicted first).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            records: Vec::new(),
            capacity,
        }
    }

    /// Number of records currently stored.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Stores a local hash, evicting the oldest record when full.
    pub fn record(&mut self, electrode: usize, timestamp_us: u64, hash: SignalHash) {
        if self.records.len() == self.capacity {
            self.records.remove(0);
        }
        self.records.push(HashRecord {
            electrode,
            timestamp_us,
            hash,
        });
    }

    /// Matches a received hash batch against local records no older than
    /// `horizon_us` before `now_us`. Returns every (received, local) pair
    /// that collides.
    ///
    /// Mirrors the PE: the received batch is sorted in place (here, a
    /// sorted copy) and each in-horizon local hash is located by binary
    /// search — `O(R log R + L log R)`.
    pub fn matches(&self, received: &[SignalHash], now_us: u64, horizon_us: u64) -> Vec<HashMatch> {
        let mut sorted: Vec<(usize, &SignalHash)> = received.iter().enumerate().collect();
        sorted.sort_by(|a, b| a.1.cmp(b.1));
        let cutoff = now_us.saturating_sub(horizon_us);
        let mut out = Vec::new();
        for rec in &self.records {
            if rec.timestamp_us < cutoff || rec.timestamp_us > now_us {
                continue;
            }
            // Binary search for the first equal hash, then scan duplicates.
            let mut idx = sorted.partition_point(|(_, h)| **h < rec.hash);
            while idx < sorted.len() && *sorted[idx].1 == rec.hash {
                out.push(HashMatch {
                    received_index: sorted[idx].0,
                    local: rec.clone(),
                });
                idx += 1;
            }
        }
        out
    }

    /// Comparison count for a batch of `received` hashes against the
    /// in-horizon records — the PE's latency proxy (`L·log₂R` searches).
    pub fn comparison_cost(&self, received: usize, in_horizon: usize) -> usize {
        if received == 0 {
            return 0;
        }
        let log_r = usize::BITS as usize - received.leading_zeros() as usize;
        in_horizon * log_r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(b: u8) -> SignalHash {
        SignalHash(vec![b])
    }

    #[test]
    fn finds_single_match_in_horizon() {
        let mut cc = CollisionChecker::new(16);
        cc.record(3, 1_000, h(0xAA));
        cc.record(4, 2_000, h(0xBB));
        let m = cc.matches(&[h(0xBB), h(0xCC)], 2_500, 100_000);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].received_index, 0);
        assert_eq!(m[0].local.electrode, 4);
    }

    #[test]
    fn old_records_are_outside_horizon() {
        let mut cc = CollisionChecker::new(16);
        cc.record(0, 1_000, h(0x11));
        // Horizon 100 ms = 100_000 us; now = 200_000 → cutoff 100_000.
        assert!(cc.matches(&[h(0x11)], 200_000, 100_000).is_empty());
        // Generous horizon finds it.
        assert_eq!(cc.matches(&[h(0x11)], 200_000, 300_000).len(), 1);
    }

    #[test]
    fn duplicate_received_hashes_all_match() {
        let mut cc = CollisionChecker::new(16);
        cc.record(1, 10, h(0x42));
        let m = cc.matches(&[h(0x42), h(0x42)], 20, 1_000);
        assert_eq!(m.len(), 2);
        let mut idx: Vec<_> = m.iter().map(|x| x.received_index).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1]);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut cc = CollisionChecker::new(2);
        cc.record(0, 1, h(0x01));
        cc.record(1, 2, h(0x02));
        cc.record(2, 3, h(0x03));
        assert_eq!(cc.len(), 2);
        assert!(cc.matches(&[h(0x01)], 10, 100).is_empty(), "evicted");
        assert_eq!(cc.matches(&[h(0x03)], 10, 100).len(), 1);
    }

    #[test]
    fn multibyte_hashes_compare_fully() {
        let mut cc = CollisionChecker::new(4);
        cc.record(0, 1, SignalHash(vec![1, 2]));
        assert!(cc.matches(&[SignalHash(vec![1, 3])], 5, 100).is_empty());
        assert_eq!(cc.matches(&[SignalHash(vec![1, 2])], 5, 100).len(), 1);
    }

    #[test]
    fn comparison_cost_scales_logarithmically() {
        let cc = CollisionChecker::new(4);
        assert_eq!(cc.comparison_cost(0, 100), 0);
        assert!(cc.comparison_cost(1024, 100) <= 100 * 11);
        assert!(cc.comparison_cost(1024, 100) > cc.comparison_cost(2, 100));
    }
}
