//! Hash collision checking (the CCHECK PE).
//!
//! "When hashes are received by a node for matching, they are sent to the
//! CCHECK PE that stores them in SRAM registers and sorts them in place.
//! The PE reads local hashes up to a configurable past time (e.g., 100 ms)
//! from the on-chip storage, and checks for matches with the received
//! hashes using binary search" (§3.2).

use crate::SignalHash;
use std::collections::VecDeque;

/// A local hash record: which electrode produced it and when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRecord {
    /// Producing electrode index on this node.
    pub electrode: usize,
    /// Timestamp in microseconds (node-local clock).
    pub timestamp_us: u64,
    /// The hash value.
    pub hash: SignalHash,
}

/// A collision between a received hash and a local record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashMatch {
    /// Index into the received batch.
    pub received_index: usize,
    /// The matching local record.
    pub local: HashRecord,
}

/// The CCHECK PE: a bounded store of recent local hashes plus the sorted
/// binary-search matcher for received batches.
#[derive(Debug, Clone, Default)]
pub struct CollisionChecker {
    records: VecDeque<HashRecord>, // kept in insertion (time) order
    capacity: usize,
    /// Leading placeholder records installed by
    /// [`CollisionChecker::prefill`], not yet recycled into real records.
    placeholders: usize,
}

impl CollisionChecker {
    /// A checker whose SRAM holds at most `capacity` local records
    /// (oldest evicted first).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            records: VecDeque::new(),
            capacity,
            placeholders: 0,
        }
    }

    /// Number of real records currently stored (placeholders from
    /// [`CollisionChecker::prefill`] excluded).
    pub fn len(&self) -> usize {
        self.records.len() - self.placeholders
    }

    /// Whether no real records are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured SRAM capacity in records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resizes the SRAM to `capacity` records, evicting oldest-first when
    /// shrinking. Sessions that know their working set (electrodes ×
    /// horizon windows) shrink the default so prefilled stores stay small.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn set_capacity(&mut self, capacity: usize) {
        assert!(capacity > 0, "capacity must be positive");
        while self.records.len() > capacity {
            self.pop_oldest();
        }
        self.capacity = capacity;
    }

    fn pop_oldest(&mut self) -> HashRecord {
        let rec = self.records.pop_front().expect("capacity is positive");
        // Placeholders are older than every real record, so while any
        // remain they are what eviction removes.
        self.placeholders = self.placeholders.saturating_sub(1);
        rec
    }

    /// Stores a local hash, evicting the oldest record when full.
    pub fn record(&mut self, electrode: usize, timestamp_us: u64, hash: SignalHash) {
        if self.records.len() == self.capacity {
            self.pop_oldest();
        }
        self.records.push_back(HashRecord {
            electrode,
            timestamp_us,
            hash,
        });
    }

    /// Stores a copy of `hash`. Once the store has filled to capacity the
    /// evicted record's byte buffer is recycled for the new record, so
    /// steady-state recording is allocation-free.
    pub fn record_copy(&mut self, electrode: usize, timestamp_us: u64, hash: &SignalHash) {
        if self.records.len() == self.capacity {
            let mut rec = self.pop_oldest();
            rec.electrode = electrode;
            rec.timestamp_us = timestamp_us;
            rec.hash.0.clear();
            rec.hash.0.extend_from_slice(&hash.0);
            self.records.push_back(rec);
        } else {
            self.records.push_back(HashRecord {
                electrode,
                timestamp_us,
                hash: hash.clone(),
            });
        }
    }

    /// Fills a fresh store to capacity with empty-hash placeholder records
    /// (timestamp 0) whose buffers reserve `hash_bytes` of capacity.
    /// Placeholders never collide with a real probe (a zero-width hash
    /// equals no fixed-width hash), are invisible to
    /// [`CollisionChecker::len`], and are evicted first — so matching
    /// behaviour is unchanged, but every subsequent
    /// [`CollisionChecker::record_copy`] recycles a pre-sized buffer
    /// instead of allocating. Call once at session start for a zero-alloc
    /// hot path.
    ///
    /// # Panics
    ///
    /// Panics if real records are already stored (the oldest-first
    /// placeholder accounting only holds from a fresh store).
    pub fn prefill(&mut self, hash_bytes: usize) {
        assert!(
            self.records.len() == self.placeholders,
            "prefill requires a fresh store"
        );
        self.records.reserve(self.capacity - self.records.len());
        while self.records.len() < self.capacity {
            self.records.push_back(HashRecord {
                electrode: usize::MAX,
                timestamp_us: 0,
                hash: SignalHash(Vec::with_capacity(hash_bytes)),
            });
            self.placeholders += 1;
        }
    }

    /// Matches a received hash batch against local records no older than
    /// `horizon_us` before `now_us`. Returns every (received, local) pair
    /// that collides.
    pub fn matches(&self, received: &[SignalHash], now_us: u64, horizon_us: u64) -> Vec<HashMatch> {
        let mut out = Vec::new();
        self.for_each_match(received, now_us, horizon_us, &mut Vec::new(), |idx, rec| {
            out.push(HashMatch {
                received_index: idx,
                local: rec.clone(),
            });
        });
        out
    }

    /// Visitor form of [`CollisionChecker::matches`]: calls `f(received
    /// index, local record)` for every collision, in the same order the
    /// allocating form returns them, without cloning records. `order` is a
    /// reusable index-sort scratch (cleared first).
    ///
    /// Mirrors the PE: the received batch is sorted (here, a sorted index
    /// array) and each in-horizon local hash is located by binary search —
    /// `O(R log R + L log R)`.
    pub fn for_each_match<F: FnMut(usize, &HashRecord)>(
        &self,
        received: &[SignalHash],
        now_us: u64,
        horizon_us: u64,
        order: &mut Vec<usize>,
        mut f: F,
    ) {
        order.clear();
        order.extend(0..received.len());
        order.sort_by(|&a, &b| received[a].cmp(&received[b]));
        let cutoff = now_us.saturating_sub(horizon_us);
        for rec in &self.records {
            if rec.timestamp_us < cutoff || rec.timestamp_us > now_us {
                continue;
            }
            // Empty placeholders from `prefill` can never equal a probe;
            // skip them before the search.
            if rec.hash.0.is_empty() {
                continue;
            }
            // Binary search for the first equal hash, then scan duplicates.
            let mut idx = order.partition_point(|&i| received[i] < rec.hash);
            while idx < order.len() && received[order[idx]] == rec.hash {
                f(order[idx], rec);
                idx += 1;
            }
        }
    }

    /// Comparison count for a batch of `received` hashes against the
    /// in-horizon records — the PE's latency proxy (`L·log₂R` searches).
    pub fn comparison_cost(&self, received: usize, in_horizon: usize) -> usize {
        if received == 0 {
            return 0;
        }
        let log_r = usize::BITS as usize - received.leading_zeros() as usize;
        in_horizon * log_r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(b: u8) -> SignalHash {
        SignalHash(vec![b])
    }

    #[test]
    fn finds_single_match_in_horizon() {
        let mut cc = CollisionChecker::new(16);
        cc.record(3, 1_000, h(0xAA));
        cc.record(4, 2_000, h(0xBB));
        let m = cc.matches(&[h(0xBB), h(0xCC)], 2_500, 100_000);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].received_index, 0);
        assert_eq!(m[0].local.electrode, 4);
    }

    #[test]
    fn old_records_are_outside_horizon() {
        let mut cc = CollisionChecker::new(16);
        cc.record(0, 1_000, h(0x11));
        // Horizon 100 ms = 100_000 us; now = 200_000 → cutoff 100_000.
        assert!(cc.matches(&[h(0x11)], 200_000, 100_000).is_empty());
        // Generous horizon finds it.
        assert_eq!(cc.matches(&[h(0x11)], 200_000, 300_000).len(), 1);
    }

    #[test]
    fn duplicate_received_hashes_all_match() {
        let mut cc = CollisionChecker::new(16);
        cc.record(1, 10, h(0x42));
        let m = cc.matches(&[h(0x42), h(0x42)], 20, 1_000);
        assert_eq!(m.len(), 2);
        let mut idx: Vec<_> = m.iter().map(|x| x.received_index).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1]);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut cc = CollisionChecker::new(2);
        cc.record(0, 1, h(0x01));
        cc.record(1, 2, h(0x02));
        cc.record(2, 3, h(0x03));
        assert_eq!(cc.len(), 2);
        assert!(cc.matches(&[h(0x01)], 10, 100).is_empty(), "evicted");
        assert_eq!(cc.matches(&[h(0x03)], 10, 100).len(), 1);
    }

    #[test]
    fn multibyte_hashes_compare_fully() {
        let mut cc = CollisionChecker::new(4);
        cc.record(0, 1, SignalHash(vec![1, 2]));
        assert!(cc.matches(&[SignalHash(vec![1, 3])], 5, 100).is_empty());
        assert_eq!(cc.matches(&[SignalHash(vec![1, 2])], 5, 100).len(), 1);
    }

    #[test]
    fn prefilled_placeholders_are_invisible_and_recycled() {
        let mut cc = CollisionChecker::new(3);
        cc.prefill(1);
        assert_eq!(cc.len(), 0);
        assert!(cc.is_empty());
        // A zero-width probe never matches a placeholder.
        assert!(cc.matches(&[SignalHash(Vec::new())], 10, 100).is_empty());
        cc.record_copy(0, 5, &h(0x07));
        assert_eq!(cc.len(), 1);
        assert_eq!(cc.matches(&[h(0x07)], 10, 100).len(), 1);
        cc.record_copy(1, 6, &h(0x08));
        cc.record_copy(2, 7, &h(0x09));
        assert_eq!(cc.len(), 3, "all placeholders recycled");
        cc.record_copy(3, 8, &h(0x0A)); // now evicts the oldest real record
        assert_eq!(cc.len(), 3);
        assert!(cc.matches(&[h(0x07)], 10, 100).is_empty(), "evicted");
        assert_eq!(cc.matches(&[h(0x0A)], 10, 100).len(), 1);
    }

    #[test]
    fn set_capacity_shrinks_oldest_first() {
        let mut cc = CollisionChecker::new(8);
        cc.record(0, 1, h(0x01));
        cc.record(1, 2, h(0x02));
        cc.record(2, 3, h(0x03));
        cc.set_capacity(2);
        assert_eq!(cc.capacity(), 2);
        assert_eq!(cc.len(), 2);
        assert!(cc.matches(&[h(0x01)], 10, 100).is_empty(), "oldest evicted");
        assert_eq!(cc.matches(&[h(0x02)], 10, 100).len(), 1);
        assert_eq!(cc.matches(&[h(0x03)], 10, 100).len(), 1);
    }

    #[test]
    fn comparison_cost_scales_logarithmically() {
        let cc = CollisionChecker::new(4);
        assert_eq!(cc.comparison_cost(0, 100), 0);
        assert!(cc.comparison_cost(1024, 100) <= 100 * 11);
        assert!(cc.comparison_cost(1024, 100) > cc.comparison_cost(2, 100));
    }
}
