//! The end-to-end SSH-style signal hash (HCONV → NGRAM pipeline).

use crate::config::HashConfig;
use crate::minhash::minhash_signature;
use crate::ngram::ngram_counts;
use crate::sketch::Sketcher;
use crate::SignalHash;
use scalo_signal::block::{z_normalize_block, BlockStatsScratch, ChannelBlock};
use scalo_signal::stats::{z_normalize, z_normalize_into};
use std::collections::HashMap;

/// Packs pooled sketch bits into `out` exactly as [`SshHasher::hash_into`]
/// always has: `8 × hash_bytes` output bits, evenly sampled across the
/// pooled sequence (wrapping when the sketch is short), all-zero when the
/// sketch is empty.
fn pack_pooled(pooled: &[bool], hash_bytes: usize, out: &mut SignalHash) {
    let n_bits = hash_bytes * 8;
    let bytes = &mut out.0;
    bytes.clear();
    bytes.resize(hash_bytes, 0);
    if pooled.is_empty() {
        return;
    }
    for out_bit in 0..n_bits {
        // Evenly spaced selection keeps the byte representative of the
        // whole window regardless of sketch length.
        let idx = if pooled.len() >= n_bits {
            out_bit * pooled.len() / n_bits
        } else {
            out_bit % pooled.len()
        };
        if pooled[idx] {
            bytes[out_bit / 8] |= 1 << (out_bit % 8);
        }
    }
}

/// Reusable buffers for [`SshHasher::hash_into`]: the z-normalised window,
/// the raw sketch bits, and the pooled bits. One scratch serves any number
/// of hashers and window sizes; buffers grow to the largest window seen.
#[derive(Debug, Clone, Default)]
pub struct HashScratch {
    normalized: Vec<f64>,
    bits: Vec<bool>,
    pooled: Vec<bool>,
}

impl HashScratch {
    /// An empty scratch; the first hash sizes it.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Reusable buffers for [`SshHasher::hash_block_into`]: the z-normalised
/// block, its per-channel moment scratch, the per-position dot-product
/// accumulators, and the channel-contiguous sketch/pooled bit buffers. One
/// scratch serves any hasher and block shape; buffers grow to the largest
/// block seen.
#[derive(Debug, Clone, Default)]
pub struct BlockHashScratch {
    normalized: ChannelBlock,
    stats: BlockStatsScratch,
    acc: Vec<f64>,
    bits: Vec<bool>,
    pooled: Vec<bool>,
}

impl BlockHashScratch {
    /// An empty scratch; the first batched hash sizes it.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A configured SSH-style hasher: random projection, n-gram counting, and
/// deterministic weighted min-hash.
///
/// # Example
///
/// ```
/// use scalo_lsh::{HashConfig, Measure, SshHasher};
///
/// let hasher = SshHasher::new(HashConfig::for_measure(Measure::Dtw));
/// let signal: Vec<f64> = (0..120).map(|i| (i as f64 * 0.2).sin()).collect();
/// let h1 = hasher.hash(&signal);
/// let h2 = hasher.hash(&signal);
/// assert_eq!(h1, h2, "hashing is deterministic");
/// ```
#[derive(Debug, Clone)]
pub struct SshHasher {
    config: HashConfig,
    sketcher: Sketcher,
}

impl SshHasher {
    /// Builds a hasher for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (see
    /// [`HashConfig::validate`]).
    pub fn new(config: HashConfig) -> Self {
        config.validate();
        let sketcher = Sketcher::new(config.sketch_window, config.sketch_stride, config.seed);
        Self { config, sketcher }
    }

    /// The configuration this hasher was built with.
    pub fn config(&self) -> &HashConfig {
        &self.config
    }

    /// The n-gram count map of a window (exposed for ablations/tests).
    pub fn ngram_counts(&self, signal: &[f64]) -> HashMap<u32, u32> {
        let owned;
        let sig: &[f64] = if self.config.normalize {
            owned = z_normalize(signal);
            &owned
        } else {
            signal
        };
        let bits = self.sketcher.sketch(sig);
        ngram_counts(&bits, self.config.ngram)
    }

    /// The pooled sketch bits of a window: each output bit is the majority
    /// vote of `ngram` consecutive sketch bits. Pooling over overlapping
    /// sketch windows is what buys warp tolerance — a small time shift
    /// moves the bit sequence by a fraction of a pool, leaving majorities
    /// unchanged.
    pub fn pooled_bits(&self, signal: &[f64]) -> Vec<bool> {
        let owned;
        let sig: &[f64] = if self.config.normalize {
            owned = z_normalize(signal);
            &owned
        } else {
            signal
        };
        let bits = self.sketcher.sketch(sig);
        let n = self.config.ngram;
        if n <= 1 {
            return bits;
        }
        bits.chunks(n)
            .map(|chunk| chunk.iter().filter(|&&b| b).count() * 2 > chunk.len())
            .collect()
    }

    /// Hashes one signal window.
    ///
    /// The hash packs `8 × hash_bytes` pooled sketch bits (evenly sampled
    /// across the window, wrapping if the sketch is short). Similar windows
    /// produce sketches that differ in at most a few bits, so their hashes
    /// are within a small Hamming distance; [`SshHasher::collide`] compares
    /// within the configured tolerance.
    pub fn hash(&self, signal: &[f64]) -> SignalHash {
        let mut out = SignalHash(Vec::new());
        self.hash_into(signal, &mut HashScratch::new(), &mut out);
        out
    }

    /// The pooled bits written into `scratch`, shared by [`SshHasher::hash`]
    /// and [`SshHasher::hash_into`].
    fn pooled_bits_with<'a>(&self, signal: &[f64], scratch: &'a mut HashScratch) -> &'a [bool] {
        let sig: &[f64] = if self.config.normalize {
            z_normalize_into(signal, &mut scratch.normalized);
            &scratch.normalized
        } else {
            signal
        };
        self.sketcher.sketch_into(sig, &mut scratch.bits);
        let n = self.config.ngram;
        if n <= 1 {
            return &scratch.bits;
        }
        scratch.pooled.clear();
        scratch.pooled.extend(
            scratch
                .bits
                .chunks(n)
                .map(|chunk| chunk.iter().filter(|&&b| b).count() * 2 > chunk.len()),
        );
        &scratch.pooled
    }

    /// [`SshHasher::hash`] written into a caller-provided hash through a
    /// reusable scratch. Bit-identical to the allocating form and
    /// allocation-free once `scratch` and `out` are warm.
    pub fn hash_into(&self, signal: &[f64], scratch: &mut HashScratch, out: &mut SignalHash) {
        let pooled = self.pooled_bits_with(signal, scratch);
        pack_pooled(pooled, self.config.hash_bytes, out);
    }

    /// Hashes every channel of a channel-major block at once, writing one
    /// hash per channel into `out` (slots are recycled — inner byte buffers
    /// keep their allocations across calls).
    ///
    /// Each channel's hash is **bitwise identical** to
    /// [`SshHasher::hash_into`] on the gathered channel: the batched
    /// z-normalisation, sketch, pooling, and packing each preserve the
    /// per-channel floating-point operation order, only interleaving work
    /// *across* channels. Allocation-free once `scratch` and `out` are warm.
    pub fn hash_block_into(
        &self,
        block: &ChannelBlock,
        scratch: &mut BlockHashScratch,
        out: &mut Vec<SignalHash>,
    ) {
        let channels = block.channels();
        out.resize_with(channels, || SignalHash(Vec::new()));
        let src: &ChannelBlock = if self.config.normalize {
            z_normalize_block(block, &mut scratch.stats, &mut scratch.normalized);
            &scratch.normalized
        } else {
            block
        };
        let n_pos = self
            .sketcher
            .sketch_block_into(src, &mut scratch.acc, &mut scratch.bits);
        let n = self.config.ngram;
        for (ch, hash) in out.iter_mut().enumerate() {
            let ch_bits = &scratch.bits[ch * n_pos..(ch + 1) * n_pos];
            let pooled: &[bool] = if n <= 1 {
                ch_bits
            } else {
                scratch.pooled.clear();
                scratch.pooled.extend(
                    ch_bits
                        .chunks(n)
                        .map(|chunk| chunk.iter().filter(|&&b| b).count() * 2 > chunk.len()),
                );
                &scratch.pooled
            };
            pack_pooled(pooled, self.config.hash_bytes, hash);
        }
    }

    /// A min-hash signature of the window — the ablation path comparing
    /// SCALO's deterministic weighted min-hash against the projection-bit
    /// hash (both run on the NGRAM PE).
    pub fn hash_minhash(&self, signal: &[f64]) -> SignalHash {
        let counts = self.ngram_counts(signal);
        SignalHash(minhash_signature(
            &counts,
            self.config.seed ^ 0xdead_beef,
            self.config.hash_bytes,
        ))
    }

    /// Whether two windows collide under this hash: Hamming distance at
    /// most the configured tolerance. Tolerant matching keeps the hash
    /// biased toward false positives (cheap to resolve by an exact
    /// comparison) rather than false negatives (which delay detection).
    pub fn collide(&self, a: &[f64], b: &[f64]) -> bool {
        self.hash(a).hamming(&self.hash(b)) <= self.config.hamming_tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Measure;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn noisy_copy(sig: &[f64], noise: f64, rng: &mut ChaCha8Rng) -> Vec<f64> {
        sig.iter()
            .map(|&x| x + noise * (rng.gen::<f64>() - 0.5))
            .collect()
    }

    fn random_signal(rng: &mut ChaCha8Rng, n: usize) -> Vec<f64> {
        // Smooth random signal: random phase/frequency sum of sines.
        let f1 = 0.05 + rng.gen::<f64>() * 0.3;
        let f2 = 0.05 + rng.gen::<f64>() * 0.3;
        let p1 = rng.gen::<f64>() * std::f64::consts::TAU;
        let p2 = rng.gen::<f64>() * std::f64::consts::TAU;
        (0..n)
            .map(|i| (i as f64 * f1 + p1).sin() + 0.5 * (i as f64 * f2 + p2).sin())
            .collect()
    }

    #[test]
    fn similar_signals_collide_more_than_dissimilar() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let hasher = SshHasher::new(HashConfig::for_measure(Measure::Dtw));
        let trials = 200;
        let mut similar_hits = 0;
        let mut dissimilar_hits = 0;
        for _ in 0..trials {
            let a = random_signal(&mut rng, 120);
            let near = noisy_copy(&a, 0.05, &mut rng);
            let far = random_signal(&mut rng, 120);
            if hasher.collide(&a, &near) {
                similar_hits += 1;
            }
            if hasher.collide(&a, &far) {
                dissimilar_hits += 1;
            }
        }
        assert!(
            similar_hits > 3 * dissimilar_hits.max(1),
            "similar {similar_hits} vs dissimilar {dissimilar_hits}"
        );
        assert!(similar_hits as f64 / trials as f64 > 0.6, "{similar_hits}");
    }

    #[test]
    fn xcor_hash_is_scale_and_offset_invariant() {
        let hasher = SshHasher::new(HashConfig::for_measure(Measure::Xcor));
        let sig: Vec<f64> = (0..120).map(|i| (i as f64 * 0.17).sin()).collect();
        let scaled: Vec<f64> = sig.iter().map(|&x| 3.0 * x + 10.0).collect();
        assert_eq!(hasher.hash(&sig), hasher.hash(&scaled));
    }

    #[test]
    fn euclidean_hash_is_not_offset_invariant() {
        let hasher = SshHasher::new(HashConfig::for_measure(Measure::Euclidean));
        let sig: Vec<f64> = (0..120).map(|i| (i as f64 * 0.17).sin()).collect();
        let shifted: Vec<f64> = sig.iter().map(|&x| x + 50.0).collect();
        // A huge DC offset makes all dot products flip sign structure;
        // the hash should (almost surely) change.
        assert_ne!(hasher.hash(&sig), hasher.hash(&shifted));
    }

    #[test]
    fn warm_scratch_hashes_are_bit_identical_to_fresh() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for measure in [Measure::Dtw, Measure::Euclidean, Measure::Xcor] {
            let hasher = SshHasher::new(HashConfig::for_measure(measure));
            let mut scratch = HashScratch::new();
            let mut out = SignalHash(Vec::new());
            for n in [120usize, 64, 200, 8] {
                let sig = random_signal(&mut rng, n);
                hasher.hash_into(&sig, &mut scratch, &mut out);
                assert_eq!(out, hasher.hash(&sig), "{measure:?} len {n}");
            }
        }
    }

    #[test]
    fn block_hash_is_bit_identical_to_per_channel_hash() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let channels = 6;
        let raw: Vec<Vec<f64>> = (0..channels)
            .map(|_| random_signal(&mut rng, 120))
            .collect();
        let mut block = ChannelBlock::new();
        block.reset(channels, 120);
        for (c, ch) in raw.iter().enumerate() {
            block.fill_channel(c, ch);
        }
        for measure in [Measure::Dtw, Measure::Euclidean, Measure::Xcor] {
            let hasher = SshHasher::new(HashConfig::for_measure(measure));
            let mut scratch = BlockHashScratch::new();
            let mut out = Vec::new();
            // Two passes over the same warm scratch/output slots.
            for pass in 0..2 {
                hasher.hash_block_into(&block, &mut scratch, &mut out);
                assert_eq!(out.len(), channels);
                for (c, ch) in raw.iter().enumerate() {
                    assert_eq!(out[c], hasher.hash(ch), "{measure:?} ch {c} pass {pass}");
                }
            }
        }
    }

    #[test]
    fn block_hash_of_short_window_is_all_zero() {
        let hasher = SshHasher::new(HashConfig::for_measure(Measure::Dtw));
        let mut block = ChannelBlock::new();
        block.reset(2, 4); // shorter than the sketch window
        let mut out = Vec::new();
        hasher.hash_block_into(&block, &mut BlockHashScratch::new(), &mut out);
        assert_eq!(out.len(), 2);
        for (c, h) in out.iter().enumerate() {
            assert_eq!(*h, hasher.hash(&[0.0; 4]), "channel {c}");
            assert!(h.0.iter().all(|&b| b == 0));
        }
    }

    #[test]
    fn hash_fits_on_the_wire() {
        let hasher = SshHasher::new(HashConfig::default());
        let sig = vec![0.25; 120];
        let h = hasher.hash(&sig);
        assert_eq!(h.wire_bytes(), 1, "default hash is the paper's 1 B");
    }

    #[test]
    fn dtw_hash_survives_small_time_shift() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let hasher = SshHasher::new(HashConfig::for_measure(Measure::Dtw));
        let mut hits = 0;
        let trials = 100;
        for _ in 0..trials {
            let base = random_signal(&mut rng, 128);
            let a = &base[0..120];
            let b = &base[2..122]; // 2-sample shift
            if hasher.collide(a, b) {
                hits += 1;
            }
        }
        assert!(hits > trials / 2, "only {hits}/{trials} shifted collisions");
    }
}
