//! Locality-sensitive hashing for fast neural-signal similarity.
//!
//! SCALO filters inter-implant communication with LSH (§2.4, §3.2): a
//! seizure-positive node broadcasts 1–2 B *hashes* instead of 240 B signal
//! windows; receivers check for collisions against locally stored hashes
//! and only matching windows trigger the expensive exact comparison (DTW)
//! and full-signal exchange.
//!
//! Three hardware PEs implement all supported hashes:
//!
//! * **HCONV** — sliding-window dot products with a random vector
//!   ([`sketch`]), shared by the SSH-style hash and the EMD hash;
//! * **NGRAM** — n-gram counting plus deterministic-latency weighted
//!   min-hash ([`ngram`], [`minhash`]);
//! * **EMDH** — square root + linear bucketing for the EMD hash
//!   ([`emd_hash`]).
//!
//! The paper's discovery that one SSH-style PE family covers DTW,
//! Euclidean, *and* cross-correlation by parameter choice alone is
//! reproduced by [`config::HashConfig::for_measure`] and the parameter
//! sweep in [`tuning`] (Figure 14).

pub mod ccheck;
pub mod config;
pub mod emd_hash;
pub mod eval;
pub mod minhash;
pub mod ngram;
pub mod sketch;
pub mod ssh;
pub mod tuning;

pub use config::{HashConfig, Measure};
pub use ssh::SshHasher;

/// A fixed-width hash of one signal window. SCALO uses "an 8-bit hash for
/// a 4 ms signal" (§5); we keep the byte width configurable but default to
/// one byte.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalHash(pub Vec<u8>);

impl SignalHash {
    /// Size of the hash on the wire, in bytes.
    pub fn wire_bytes(&self) -> usize {
        self.0.len()
    }
}

impl SignalHash {
    /// Hamming distance to another hash (bit-level).
    ///
    /// # Panics
    ///
    /// Panics if the hashes differ in byte width.
    pub fn hamming(&self, other: &SignalHash) -> u32 {
        assert_eq!(self.0.len(), other.0.len(), "hash width mismatch");
        self.0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// All hashes within Hamming distance `tolerance` of `self` (including
    /// itself). This is the fixed probe set the CCHECK PE enumerates when
    /// tolerant matching is configured — `1 + 8·bytes` probes for
    /// `tolerance = 1`.
    pub fn neighbors(&self, tolerance: u32) -> Vec<SignalHash> {
        let mut out = Vec::new();
        self.neighbors_into(tolerance, &mut out);
        out
    }

    /// [`SignalHash::neighbors`] written into a caller-provided vector.
    /// Existing elements are truncated away but keep their byte buffers, so
    /// a warm `out` makes probe expansion allocation-free.
    pub fn neighbors_into(&self, tolerance: u32, out: &mut Vec<SignalHash>) {
        // Recycle the inner byte buffers of whatever `out` already holds:
        // shrink/grow each reused slot in place instead of reallocating.
        let mut used = 0;
        let push = |out: &mut Vec<SignalHash>, used: &mut usize, bytes: &[u8]| {
            if *used < out.len() {
                let slot = &mut out[*used].0;
                slot.clear();
                slot.extend_from_slice(bytes);
            } else {
                out.push(SignalHash(bytes.to_vec()));
            }
            *used += 1;
        };
        push(out, &mut used, &self.0);
        if tolerance >= 1 {
            for byte in 0..self.0.len() {
                for bit in 0..8 {
                    push(out, &mut used, &self.0);
                    let idx = used - 1;
                    out[idx].0[byte] ^= 1 << bit;
                }
            }
        }
        out.truncate(used);
        if tolerance >= 2 {
            let singles: Vec<SignalHash> = out[1..].to_vec();
            for s in singles {
                for byte in 0..s.0.len() {
                    for bit in 0..8 {
                        let mut v = s.0.clone();
                        v[byte] ^= 1 << bit;
                        let cand = SignalHash(v);
                        if !out.contains(&cand) {
                            out.push(cand);
                        }
                    }
                }
            }
        }
    }

    /// The legacy allocating neighbor expansion, kept verbatim for the
    /// equivalence tests.
    #[doc(hidden)]
    pub fn neighbors_legacy(&self, tolerance: u32) -> Vec<SignalHash> {
        let mut out = vec![self.clone()];
        if tolerance >= 1 {
            for byte in 0..self.0.len() {
                for bit in 0..8 {
                    let mut v = self.0.clone();
                    v[byte] ^= 1 << bit;
                    out.push(SignalHash(v));
                }
            }
        }
        if tolerance >= 2 {
            let singles: Vec<SignalHash> = out[1..].to_vec();
            for s in singles {
                for byte in 0..s.0.len() {
                    for bit in 0..8 {
                        let mut v = s.0.clone();
                        v[byte] ^= 1 << bit;
                        let cand = SignalHash(v);
                        if !out.contains(&cand) {
                            out.push(cand);
                        }
                    }
                }
            }
        }
        out
    }
}

impl AsRef<[u8]> for SignalHash {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_counts_bits() {
        let a = SignalHash(vec![0b1010_1010]);
        let b = SignalHash(vec![0b1010_1000]);
        assert_eq!(a.hamming(&b), 1);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    fn neighbor_count_for_tolerance_one() {
        let a = SignalHash(vec![0x00]);
        assert_eq!(a.neighbors(0).len(), 1);
        assert_eq!(a.neighbors(1).len(), 9);
    }

    #[test]
    fn neighbors_are_within_tolerance() {
        let a = SignalHash(vec![0x5A, 0x3C]);
        for n in a.neighbors(1) {
            assert!(a.hamming(&n) <= 1);
        }
    }

    #[test]
    fn neighbors_into_matches_legacy_and_recycles_buffers() {
        let mut out = Vec::new();
        for tolerance in 0..=2 {
            for bytes in [vec![0x00], vec![0x5A, 0x3C], vec![0xFF, 0x01, 0x80]] {
                let h = SignalHash(bytes);
                h.neighbors_into(tolerance, &mut out);
                assert_eq!(out, h.neighbors_legacy(tolerance), "tol {tolerance}");
                assert_eq!(out, h.neighbors(tolerance));
            }
        }
    }
}
