//! Bit sketches via sliding-window random projection (the HCONV PE).
//!
//! Following SSH (Luo & Shrivastava \[71\]): slide a window of length `w`
//! over the signal with stride `s`; each position's dot product with a
//! fixed ±1 random vector yields one sketch bit (1 if positive).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use scalo_signal::block::ChannelBlock;

/// Channel-tile width of [`Sketcher::sketch_block_into`]: the tap window
/// over one tile (`16 taps × 64 lanes × 8 B = 8 KiB`) stays L1-resident
/// across overlapping sketch positions, and 64 lanes is a whole number
/// of SSE2/AVX2 vectors so tiling never changes which SIMD arm a lane
/// takes.
pub const SKETCH_TILE_LANES: usize = 64;

/// The random ±1 projection vector plus sliding parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Sketcher {
    projection: Vec<f64>,
    stride: usize,
    level: scalo_signal::simd::SimdLevel,
}

impl Sketcher {
    /// Creates a sketcher with a `window`-length ±1 projection drawn from
    /// `seed`, dispatching the batched block sketch at the process-wide
    /// [`scalo_signal::simd::SimdLevel::active`] level.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `stride` is zero.
    pub fn new(window: usize, stride: usize, seed: u64) -> Self {
        Self::with_level(
            window,
            stride,
            seed,
            scalo_signal::simd::SimdLevel::active(),
        )
    }

    /// [`Sketcher::new`] pinned to an explicit dispatch level — for the
    /// ISA-sweep equivalence tests and A/B benchmarking.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `stride` is zero.
    pub fn with_level(
        window: usize,
        stride: usize,
        seed: u64,
        level: scalo_signal::simd::SimdLevel,
    ) -> Self {
        assert!(window > 0, "sketch window must be positive");
        assert!(stride > 0, "sketch stride must be positive");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let projection = (0..window)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect();
        Self {
            projection,
            stride,
            level,
        }
    }

    /// Window length of the projection.
    pub fn window(&self) -> usize {
        self.projection.len()
    }

    /// Stride between sketch positions.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Computes the bit sketch of `signal`.
    ///
    /// Signals shorter than the window produce an empty sketch. The sketch
    /// length is `floor((len - window) / stride) + 1`.
    pub fn sketch(&self, signal: &[f64]) -> Vec<bool> {
        let mut bits = Vec::new();
        self.sketch_into(signal, &mut bits);
        bits
    }

    /// [`Sketcher::sketch`] written into a caller-provided vector (cleared
    /// first). Bit-identical to the allocating form; allocation-free once
    /// `bits` has capacity for the sketch length.
    pub fn sketch_into(&self, signal: &[f64], bits: &mut Vec<bool>) {
        let w = self.projection.len();
        bits.clear();
        if signal.len() < w {
            return;
        }
        let mut pos = 0;
        while pos + w <= signal.len() {
            let dot: f64 = signal[pos..pos + w]
                .iter()
                .zip(&self.projection)
                .map(|(&x, &r)| x * r)
                .sum();
            bits.push(dot > 0.0);
            pos += self.stride;
        }
    }

    /// Sketches every channel of a channel-major block at once, returning
    /// the number of sketch positions per channel.
    ///
    /// `bits` is laid out channel-contiguous: channel `c`'s sketch occupies
    /// `bits[c * n_pos..(c + 1) * n_pos]`. The dot product for each position
    /// accumulates across projection taps in tap order with one accumulator
    /// per channel (`acc`), so each channel's bits are **bitwise identical**
    /// to [`Sketcher::sketch_into`] on the gathered channel — batching
    /// reorders work across channels, never within one. Allocation-free once
    /// `acc` and `bits` are warm.
    ///
    /// Wide blocks are processed in channel *tiles* of [`SKETCH_TILE_LANES`]
    /// lanes, every sketch position per tile before the next tile: the
    /// sliding tap window re-reads each frame ~`window / stride` times, and
    /// tiling keeps that re-read set (`window × tile` lanes, ~8 KiB at the
    /// default 16-tap window) resident in L1 instead of streaming the full
    /// block width per position — the 256-channel case used to spill the
    /// per-position working set (16 × 256 lanes = 32 KiB, a whole L1) and
    /// pay L2 latency on every re-read. Blocks at or under one tile take
    /// the exact pre-tiling traversal. Per channel the tap accumulation
    /// order is unchanged, so the bits stay bitwise identical.
    pub fn sketch_block_into(
        &self,
        block: &ChannelBlock,
        acc: &mut Vec<f64>,
        bits: &mut Vec<bool>,
    ) -> usize {
        let w = self.projection.len();
        let channels = block.channels();
        let samples = block.samples();
        bits.clear();
        if samples < w || channels == 0 {
            return 0;
        }
        let n_pos = (samples - w) / self.stride + 1;
        bits.resize(channels * n_pos, false);
        acc.clear();
        acc.resize(channels, 0.0);
        let data = block.data();
        let mut c0 = 0;
        while c0 < channels {
            let tile = SKETCH_TILE_LANES.min(channels - c0);
            let mut pos = 0;
            let mut p = 0;
            while pos + w <= samples {
                scalo_signal::simd::dot_frames_view(
                    self.level,
                    &data[pos * channels + c0..],
                    channels,
                    &self.projection,
                    &mut acc[c0..c0 + tile],
                );
                for (j, &a) in acc[c0..c0 + tile].iter().enumerate() {
                    bits[(c0 + j) * n_pos + p] = a > 0.0;
                }
                pos += self.stride;
                p += 1;
            }
            c0 += tile;
        }
        n_pos
    }

    /// The raw dot-product sequence (shared with the EMD hash front end).
    pub fn dot_products(&self, signal: &[f64]) -> Vec<f64> {
        let w = self.projection.len();
        if signal.len() < w {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut pos = 0;
        while pos + w <= signal.len() {
            out.push(
                signal[pos..pos + w]
                    .iter()
                    .zip(&self.projection)
                    .map(|(&x, &r)| x * r)
                    .sum(),
            );
            pos += self.stride;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_length_formula() {
        let s = Sketcher::new(16, 4, 1);
        let sig = vec![0.5; 120];
        assert_eq!(s.sketch(&sig).len(), (120 - 16) / 4 + 1);
    }

    #[test]
    fn sketch_is_deterministic_per_seed() {
        let sig: Vec<f64> = (0..120).map(|i| (i as f64 * 0.21).sin()).collect();
        let a = Sketcher::new(16, 4, 7).sketch(&sig);
        let b = Sketcher::new(16, 4, 7).sketch(&sig);
        assert_eq!(a, b);
        let c = Sketcher::new(16, 4, 8).sketch(&sig);
        assert_ne!(a, c, "different seeds should give different sketches");
    }

    #[test]
    fn short_signal_gives_empty_sketch() {
        let s = Sketcher::new(16, 4, 1);
        assert!(s.sketch(&[1.0, 2.0]).is_empty());
    }

    #[test]
    fn negated_signal_flips_bits() {
        let sig: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin() + 0.01).collect();
        let neg: Vec<f64> = sig.iter().map(|&x| -x).collect();
        let s = Sketcher::new(8, 2, 3);
        let bits_pos = s.sketch(&sig);
        let bits_neg = s.sketch(&neg);
        assert_eq!(
            bits_pos.iter().map(|b| !b).collect::<Vec<_>>(),
            bits_neg,
            "sketch of -x is the complement (no zero dot products here)"
        );
    }

    #[test]
    fn block_sketch_matches_per_channel_sketch() {
        let s = Sketcher::new(16, 4, 9);
        let channels = 6;
        let raw: Vec<Vec<f64>> = (0..channels)
            .map(|c| {
                (0..120)
                    .map(|t| ((c + 1) as f64 * t as f64 * 0.11).sin())
                    .collect()
            })
            .collect();
        let mut block = ChannelBlock::new();
        block.reset(channels, 120);
        for (c, ch) in raw.iter().enumerate() {
            block.fill_channel(c, ch);
        }
        let mut acc = Vec::new();
        let mut bits = Vec::new();
        let n_pos = s.sketch_block_into(&block, &mut acc, &mut bits);
        assert_eq!(n_pos, (120 - 16) / 4 + 1);
        for (c, ch) in raw.iter().enumerate() {
            assert_eq!(
                &bits[c * n_pos..(c + 1) * n_pos],
                s.sketch(ch).as_slice(),
                "channel {c}"
            );
        }
    }

    #[test]
    fn tiled_block_sketch_matches_per_channel_at_wide_widths() {
        // Widths past one tile (65), a ragged multi-tile width (96), and
        // the L2-regression width the tiling exists for (256).
        for channels in [65usize, 96, 256] {
            let s = Sketcher::new(16, 4, 21);
            let raw: Vec<Vec<f64>> = (0..channels)
                .map(|c| {
                    (0..120)
                        .map(|t| ((c * 7 + 3) as f64 * t as f64 * 0.013).sin() - 0.1)
                        .collect()
                })
                .collect();
            let mut block = ChannelBlock::new();
            block.reset(channels, 120);
            for (c, ch) in raw.iter().enumerate() {
                block.fill_channel(c, ch);
            }
            let mut acc = Vec::new();
            let mut bits = Vec::new();
            let n_pos = s.sketch_block_into(&block, &mut acc, &mut bits);
            for (c, ch) in raw.iter().enumerate() {
                assert_eq!(
                    &bits[c * n_pos..(c + 1) * n_pos],
                    s.sketch(ch).as_slice(),
                    "{channels} channels, channel {c}"
                );
            }
        }
    }

    #[test]
    fn block_sketch_of_short_window_is_empty() {
        let s = Sketcher::new(16, 4, 9);
        let mut block = ChannelBlock::new();
        block.reset(3, 8);
        let mut acc = Vec::new();
        let mut bits = vec![true; 4];
        assert_eq!(s.sketch_block_into(&block, &mut acc, &mut bits), 0);
        assert!(bits.is_empty());
    }

    #[test]
    fn similar_signals_share_most_sketch_bits() {
        let sig: Vec<f64> = (0..120).map(|i| (i as f64 * 0.2).sin()).collect();
        let noisy: Vec<f64> = sig.iter().map(|&x| x + 0.02).collect();
        let s = Sketcher::new(16, 4, 5);
        let a = s.sketch(&sig);
        let b = s.sketch(&noisy);
        let agree = a.iter().zip(&b).filter(|(x, y)| x == y).count();
        assert!(agree as f64 / a.len() as f64 > 0.85, "{agree}/{}", a.len());
    }
}
