//! n-gram extraction over bit sketches (half of the NGRAM PE).

use std::collections::HashMap;

/// Counts occurrences of every `n`-bit gram in `bits`, encoding each gram
/// as the integer formed by its bits (MSB first).
///
/// Returns an empty map if the sketch is shorter than `n`.
///
/// # Panics
///
/// Panics if `n` is zero or exceeds 32 (grams are packed into `u32`).
///
/// # Example
///
/// ```
/// use scalo_lsh::ngram::ngram_counts;
///
/// let bits = [true, false, true, false];
/// let counts = ngram_counts(&bits, 2);
/// assert_eq!(counts.get(&0b10), Some(&2)); // "10" appears twice
/// assert_eq!(counts.get(&0b01), Some(&1));
/// ```
pub fn ngram_counts(bits: &[bool], n: usize) -> HashMap<u32, u32> {
    assert!(n >= 1, "n-gram size must be positive");
    assert!(n <= 32, "n-gram size must fit in u32");
    let mut counts = HashMap::new();
    if bits.len() < n {
        return counts;
    }
    for win in bits.windows(n) {
        let gram = win.iter().fold(0u32, |acc, &b| (acc << 1) | u32::from(b));
        *counts.entry(gram).or_insert(0) += 1;
    }
    counts
}

/// Weighted-Jaccard similarity between two n-gram count maps:
/// `Σ min(a, b) / Σ max(a, b)`. This is the quantity the weighted
/// min-hash collision probability approximates.
pub fn weighted_jaccard(a: &HashMap<u32, u32>, b: &HashMap<u32, u32>) -> f64 {
    let mut min_sum = 0u64;
    let mut max_sum = 0u64;
    for (&g, &ca) in a {
        let cb = b.get(&g).copied().unwrap_or(0);
        min_sum += u64::from(ca.min(cb));
        max_sum += u64::from(ca.max(cb));
    }
    for (&g, &cb) in b {
        if !a.contains_key(&g) {
            max_sum += u64::from(cb);
        }
    }
    if max_sum == 0 {
        return 0.0;
    }
    min_sum as f64 / max_sum as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_sum_to_window_count() {
        let bits = [true, true, false, true, false, false, true];
        let counts = ngram_counts(&bits, 3);
        let total: u32 = counts.values().sum();
        assert_eq!(total as usize, bits.len() - 2);
    }

    #[test]
    fn short_sketch_is_empty() {
        assert!(ngram_counts(&[true], 2).is_empty());
    }

    #[test]
    fn jaccard_of_identical_maps_is_one() {
        let bits = [true, false, true, true, false];
        let a = ngram_counts(&bits, 2);
        assert!((weighted_jaccard(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_of_disjoint_maps_is_zero() {
        let a = ngram_counts(&[true, true, true], 2); // only "11"
        let b = ngram_counts(&[false, false, false], 2); // only "00"
        assert_eq!(weighted_jaccard(&a, &b), 0.0);
    }

    #[test]
    fn jaccard_is_symmetric() {
        let a = ngram_counts(&[true, false, true, false, true], 2);
        let b = ngram_counts(&[true, true, false, false, true], 2);
        assert!((weighted_jaccard(&a, &b) - weighted_jaccard(&b, &a)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_gram_panics() {
        let _ = ngram_counts(&[true], 0);
    }
}
