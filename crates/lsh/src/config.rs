//! Hash configuration per similarity measure.

use serde::{Deserialize, Serialize};

/// The four signal-similarity measures SCALO hashes (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Measure {
    /// Euclidean (L2) distance.
    Euclidean,
    /// Pearson cross-correlation.
    Xcor,
    /// Dynamic time warping distance.
    Dtw,
    /// Earth Mover's Distance.
    Emd,
}

impl Measure {
    /// All four measures, in the order the paper's figures list them.
    pub const ALL: [Measure; 4] = [
        Measure::Xcor,
        Measure::Emd,
        Measure::Dtw,
        Measure::Euclidean,
    ];
}

impl std::fmt::Display for Measure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Measure::Euclidean => "Euclidean",
            Measure::Xcor => "XCOR",
            Measure::Dtw => "DTW",
            Measure::Emd => "EMD",
        };
        write!(f, "{s}")
    }
}

/// Configuration of the SSH-style hash pipeline.
///
/// The same PE family serves DTW, Euclidean and XCOR by varying these
/// parameters (§3.2); EMD takes the separate [`crate::emd_hash`] path that
/// shares only the HCONV dot product.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HashConfig {
    /// Sliding sketch-window length in samples (Figure 14 x-axis).
    pub sketch_window: usize,
    /// Stride of the sketch window.
    pub sketch_stride: usize,
    /// n-gram size over the bit sketch (Figure 14 y-axis).
    pub ngram: usize,
    /// Number of hash bytes in the output (8 projection bits per byte).
    pub hash_bytes: usize,
    /// Collision tolerance in sketch bits: two hashes "collide" when their
    /// Hamming distance is at most this. A small tolerance biases the hash
    /// toward false positives (resolved later by exact comparison, §6.5)
    /// while keeping the CCHECK probe count fixed.
    pub hamming_tolerance: u32,
    /// Z-normalise the window before sketching (shift/scale invariance —
    /// what makes the hash approximate *correlation* rather than distance).
    pub normalize: bool,
    /// Seed for the random projection vectors.
    pub seed: u64,
}

impl HashConfig {
    /// The per-measure configuration SCALO ships (the best points of the
    /// Figure 14 design-space sweep for 120-sample windows).
    pub fn for_measure(measure: Measure) -> Self {
        match measure {
            // DTW tolerates warping: short sketch windows + longer n-grams
            // capture local shape while ignoring alignment.
            Measure::Dtw => Self {
                sketch_window: 16,
                sketch_stride: 4,
                ngram: 3,
                hash_bytes: 1,
                hamming_tolerance: 1,
                normalize: false,
                seed: 0x5ca1_0001,
            },
            // Euclidean is alignment-sensitive: non-overlapping windows,
            // no pooling.
            Measure::Euclidean => Self {
                sketch_window: 12,
                sketch_stride: 12,
                ngram: 1,
                hash_bytes: 1,
                hamming_tolerance: 1,
                normalize: false,
                seed: 0x5ca1_0002,
            },
            // XCOR is Euclidean on z-normalised signals.
            Measure::Xcor => Self {
                sketch_window: 12,
                sketch_stride: 12,
                ngram: 1,
                hash_bytes: 1,
                hamming_tolerance: 1,
                normalize: true,
                seed: 0x5ca1_0003,
            },
            // EMD uses the EMDH path; this SSH config is the fallback when
            // a caller insists on the SSH pipeline for EMD.
            Measure::Emd => Self {
                sketch_window: 24,
                sketch_stride: 6,
                ngram: 2,
                hash_bytes: 1,
                hamming_tolerance: 1,
                normalize: false,
                seed: 0x5ca1_0004,
            },
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any field is degenerate (zero window/stride/ngram/bytes).
    pub fn validate(&self) {
        assert!(self.sketch_window > 0, "sketch window must be positive");
        assert!(self.sketch_stride > 0, "sketch stride must be positive");
        assert!(self.ngram > 0, "ngram must be positive");
        assert!(self.hash_bytes > 0, "hash must have at least one byte");
    }
}

impl Default for HashConfig {
    fn default() -> Self {
        Self::for_measure(Measure::Dtw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_measure_configs_are_valid() {
        for m in Measure::ALL {
            HashConfig::for_measure(m).validate();
        }
    }

    #[test]
    fn xcor_normalizes_dtw_does_not() {
        assert!(HashConfig::for_measure(Measure::Xcor).normalize);
        assert!(!HashConfig::for_measure(Measure::Dtw).normalize);
    }

    #[test]
    fn display_names() {
        assert_eq!(Measure::Dtw.to_string(), "DTW");
        assert_eq!(Measure::Xcor.to_string(), "XCOR");
    }
}
