//! The EMD hash (EMDH PE), after Gorisse et al.\[40\].
//!
//! The hash embeds a window into a short vector that is Lipschitz in the
//! 1-D Earth Mover's Distance and buckets it. Because 1-D EMD equals the
//! L1 distance between CDFs (equivalently, between quantile functions),
//! we encode the *positions of a few CDF quantiles*, bucketed coarsely:
//! windows at small EMD have near-identical quantile positions and land in
//! the same or adjacent buckets; dissimilar windows scatter. The HCONV PE
//! computes the cumulative mass, EMDH extracts and buckets the quantiles.
//!
//! Collision is field-wise with ±1 bucket tolerance — the same
//! fixed-probe-count tolerant matching CCHECK uses for the SSH hash, and
//! the same false-positive bias §6.5 describes.

use crate::SignalHash;
use scalo_signal::emd::signal_to_histogram;

/// Number of quantile fields encoded in the hash.
const QUANTILES: [f64; 3] = [0.25, 0.50, 0.75];

/// Bits per packed quantile field.
const FIELD_BITS: u32 = 5;

/// A configured EMD hasher.
#[derive(Debug, Clone, PartialEq)]
pub struct EmdHasher {
    window: usize,
    bucket_bins: f64,
    tolerance: i32,
}

impl EmdHasher {
    /// Creates an EMD hasher for windows of `window` samples.
    ///
    /// `bucket_bins` is the quantile-position bucket width in samples:
    /// windows whose quantile positions differ by less than roughly one
    /// bucket collide.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `bucket_bins` is not positive.
    pub fn new(window: usize, bucket_bins: f64, _seed: u64) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(bucket_bins > 0.0, "bucket width must be positive");
        Self {
            window,
            bucket_bins,
            tolerance: 1,
        }
    }

    /// Window length this hasher expects.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Quantile-position buckets of a window (one per encoded quantile).
    fn buckets(&self, signal: &[f64]) -> [u32; QUANTILES.len()] {
        let hist = signal_to_histogram(signal);
        let total: f64 = hist.iter().sum();
        let mut out = [0u32; QUANTILES.len()];
        let mut acc = 0.0;
        let mut qi = 0;
        for (i, &mass) in hist.iter().enumerate() {
            acc += mass / total;
            while qi < QUANTILES.len() && acc >= QUANTILES[qi] {
                let bucket = (i as f64 / self.bucket_bins) as u32;
                out[qi] = bucket.min((1 << FIELD_BITS) - 1);
                qi += 1;
            }
        }
        while qi < QUANTILES.len() {
            out[qi] = (1 << FIELD_BITS) - 1;
            qi += 1;
        }
        out
    }

    /// Hashes one signal window to a 2-byte packed quantile signature
    /// (three 5-bit fields).
    ///
    /// # Panics
    ///
    /// Panics if the window length differs from the configured one.
    pub fn hash(&self, signal: &[f64]) -> SignalHash {
        assert_eq!(signal.len(), self.window, "EMD hash window length mismatch");
        let b = self.buckets(signal);
        let packed: u16 =
            (b[0] as u16) | ((b[1] as u16) << FIELD_BITS) | ((b[2] as u16) << (2 * FIELD_BITS));
        SignalHash(packed.to_le_bytes().to_vec())
    }

    /// Unpacks a hash produced by [`EmdHasher::hash`] into its quantile
    /// buckets.
    ///
    /// # Panics
    ///
    /// Panics if the hash is not 2 bytes wide.
    pub fn unpack(hash: &SignalHash) -> [u32; QUANTILES.len()] {
        assert_eq!(hash.0.len(), 2, "EMD hash must be 2 bytes");
        let packed = u16::from_le_bytes([hash.0[0], hash.0[1]]);
        let mask = (1u16 << FIELD_BITS) - 1;
        [
            u32::from(packed & mask),
            u32::from((packed >> FIELD_BITS) & mask),
            u32::from((packed >> (2 * FIELD_BITS)) & mask),
        ]
    }

    /// Whether two hashes collide: every quantile field within ±1 bucket.
    pub fn hashes_collide(&self, a: &SignalHash, b: &SignalHash) -> bool {
        let ba = Self::unpack(a);
        let bb = Self::unpack(b);
        ba.iter()
            .zip(&bb)
            .all(|(&x, &y)| (x as i32 - y as i32).abs() <= self.tolerance)
    }

    /// Whether two windows collide under this hash.
    pub fn collide(&self, a: &[f64], b: &[f64]) -> bool {
        self.hashes_collide(&self.hash(a), &self.hash(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use scalo_signal::emd::emd_signals;

    fn random_signal(rng: &mut ChaCha8Rng, n: usize) -> Vec<f64> {
        let f = 0.05 + rng.gen::<f64>() * 0.4;
        let p = rng.gen::<f64>() * std::f64::consts::TAU;
        (0..n).map(|i| (i as f64 * f + p).sin()).collect()
    }

    #[test]
    fn identical_signals_always_collide() {
        let h = EmdHasher::new(120, 4.0, 3);
        let sig: Vec<f64> = (0..120).map(|i| (i as f64 * 0.23).cos()).collect();
        assert!(h.collide(&sig, &sig));
    }

    #[test]
    fn collision_correlates_with_emd() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let h = EmdHasher::new(120, 4.0, 3);
        let mut near_hits = 0;
        let mut far_hits = 0;
        let mut near_total = 0;
        let mut far_total = 0;
        for _ in 0..400 {
            let a = random_signal(&mut rng, 120);
            let b = random_signal(&mut rng, 120);
            let d = emd_signals(&a, &b);
            let collide = h.collide(&a, &b);
            if d < 2.0 {
                near_total += 1;
                near_hits += usize::from(collide);
            } else if d > 8.0 {
                far_total += 1;
                far_hits += usize::from(collide);
            }
        }
        assert!(near_total > 5 && far_total > 5, "{near_total}/{far_total}");
        let near_rate = near_hits as f64 / near_total as f64;
        let far_rate = far_hits as f64 / far_total as f64;
        assert!(
            near_rate > far_rate + 0.2,
            "near {near_rate:.2} vs far {far_rate:.2}"
        );
    }

    #[test]
    fn hash_is_two_bytes() {
        let h = EmdHasher::new(120, 4.0, 9);
        let sig: Vec<f64> = (0..120).map(|i| (i as f64 * 0.1).sin()).collect();
        assert_eq!(h.hash(&sig).wire_bytes(), 2, "paper: hashes are 1–2 B");
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let h = EmdHasher::new(120, 4.0, 9);
        let sig: Vec<f64> = (0..120).map(|i| (i as f64 * 0.31).sin()).collect();
        let hash = h.hash(&sig);
        let buckets = EmdHasher::unpack(&hash);
        assert!(buckets.iter().all(|&b| b < 32));
        // Quantiles are ordered, so buckets must be non-decreasing.
        assert!(buckets[0] <= buckets[1] && buckets[1] <= buckets[2]);
    }

    #[test]
    fn small_mass_shift_stays_within_tolerance() {
        let h = EmdHasher::new(120, 4.0, 9);
        let sig: Vec<f64> = (0..120).map(|i| (i as f64 * 0.2).sin()).collect();
        let shifted: Vec<f64> = (0..120).map(|i| ((i as f64 + 1.0) * 0.2).sin()).collect();
        assert!(h.collide(&sig, &shifted));
    }

    #[test]
    #[should_panic(expected = "window length mismatch")]
    fn wrong_window_panics() {
        let h = EmdHasher::new(120, 4.0, 9);
        let _ = h.hash(&[1.0; 60]);
    }
}
