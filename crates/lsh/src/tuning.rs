//! LSH parameter design-space exploration (the Figure 14 experiment).
//!
//! Figure 14 sweeps sketch-window size × n-gram size and marks, per
//! measure, the best configuration plus every configuration within 90% of
//! the best true-positive rate — the flexibility that lets one PE family
//! serve several measures.

use crate::config::{HashConfig, Measure};
use crate::eval::{exact_similar, generate_pairs, threshold_at_quantile, MeasuredPair};
use crate::ssh::SshHasher;

/// Quality of one (window, ngram) configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Sketch window size.
    pub window: usize,
    /// n-gram size.
    pub ngram: usize,
    /// True-positive rate: collision rate among exactly-similar pairs.
    pub true_positive: f64,
    /// False-positive rate: collision rate among exactly-dissimilar pairs.
    pub false_positive: f64,
}

impl SweepPoint {
    /// Youden-style score used to rank configurations.
    pub fn score(&self) -> f64 {
        self.true_positive - self.false_positive
    }
}

/// Result of a full sweep for one measure.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The measure swept.
    pub measure: Measure,
    /// All evaluated points.
    pub points: Vec<SweepPoint>,
    /// Index (into `points`) of the best configuration.
    pub best: usize,
}

impl SweepResult {
    /// The best configuration found.
    pub fn best_point(&self) -> SweepPoint {
        self.points[self.best]
    }

    /// Every configuration whose score is within `fraction` (e.g. 0.9) of
    /// the best point's — Figure 14's lighter-coloured cells.
    pub fn within_of_best(&self, fraction: f64) -> Vec<SweepPoint> {
        let best_score = self.points[self.best].score();
        self.points
            .iter()
            .filter(|p| p.score() >= fraction * best_score)
            .copied()
            .collect()
    }
}

/// Evaluates one (window, ngram) configuration against labelled pairs.
pub fn evaluate_config(
    measure: Measure,
    window: usize,
    ngram: usize,
    pairs: &[MeasuredPair],
    threshold: f64,
) -> SweepPoint {
    let base = HashConfig::for_measure(measure);
    let config = HashConfig {
        sketch_window: window,
        sketch_stride: (window / 4).max(1),
        ngram,
        ..base
    };
    let hasher = SshHasher::new(config);
    let mut tp = 0usize;
    let mut pos = 0usize;
    let mut fp = 0usize;
    let mut neg = 0usize;
    for p in pairs {
        let similar = exact_similar(measure, p.exact, threshold);
        let collide = hasher.collide(&p.a, &p.b);
        if similar {
            pos += 1;
            tp += usize::from(collide);
        } else {
            neg += 1;
            fp += usize::from(collide);
        }
    }
    SweepPoint {
        window,
        ngram,
        true_positive: if pos == 0 {
            0.0
        } else {
            tp as f64 / pos as f64
        },
        false_positive: if neg == 0 {
            0.0
        } else {
            fp as f64 / neg as f64
        },
    }
}

/// Default sweep grid: windows 8..=120 step 16, n-grams 1..=6 (the Figure
/// 14 axes).
pub fn default_grid() -> (Vec<usize>, Vec<usize>) {
    ((8..=120).step_by(16).collect(), (1..=6).collect())
}

/// Runs the full sweep for `measure` with `n_pairs` synthetic pairs.
pub fn sweep(measure: Measure, n_pairs: usize, seed: u64) -> SweepResult {
    let pairs = generate_pairs(measure, n_pairs, seed);
    let threshold = threshold_at_quantile(&pairs, 0.5);
    let (windows, ngrams) = default_grid();
    let mut points = Vec::new();
    for &w in &windows {
        for &n in &ngrams {
            // n-grams longer than the sketch are vacuous; skip.
            if n > 120 / (w / 4).max(1) {
                continue;
            }
            points.push(evaluate_config(measure, w, n, &pairs, threshold));
        }
    }
    let best = points
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.score().total_cmp(&b.1.score()))
        .map(|(i, _)| i)
        .expect("non-empty sweep");
    SweepResult {
        measure,
        points,
        best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_a_meaningful_best() {
        let r = sweep(Measure::Dtw, 250, 21);
        let best = r.best_point();
        assert!(best.score() > 0.3, "best {best:?}");
        assert!(best.true_positive > best.false_positive);
    }

    #[test]
    fn multiple_configs_within_90_percent() {
        // The Figure 14 observation: the hash is flexible — several
        // (window, ngram) cells are near-optimal.
        let r = sweep(Measure::Euclidean, 250, 22);
        let good = r.within_of_best(0.9);
        assert!(good.len() >= 2, "only {} near-optimal configs", good.len());
    }

    #[test]
    fn different_measures_can_share_a_config() {
        // Cross-measure flexibility: the DTW-best config must still score
        // acceptably for Euclidean.
        let dtw = sweep(Measure::Dtw, 250, 23);
        let best = dtw.best_point();
        let pairs = generate_pairs(Measure::Euclidean, 250, 24);
        let thr = threshold_at_quantile(&pairs, 0.5);
        let p = evaluate_config(Measure::Euclidean, best.window, best.ngram, &pairs, thr);
        assert!(p.score() > 0.15, "cross-measure score {p:?}");
    }

    #[test]
    fn grid_covers_paper_axes() {
        let (ws, ns) = default_grid();
        assert!(ws.contains(&8) && ws.contains(&120));
        assert_eq!(ns, vec![1, 2, 3, 4, 5, 6]);
    }
}
