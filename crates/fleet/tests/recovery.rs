//! Crash recovery end to end: kill a durable fleet mid-run, recover
//! from the write-ahead log, continue serving, and prove the combined
//! decisions are byte-identical to an uninterrupted run.
//!
//! The binary installs the counting allocator so the last test can hold
//! the durability layer to the fleet's steady-state discipline: quiet
//! windows with logging enabled allocate nothing.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use scalo_core::session::{Session, SessionSpec};
use scalo_fleet::{DurabilityConfig, Fleet, FleetConfig, FleetLogger, MetricsRegistry};
use std::collections::BTreeMap;
use std::path::PathBuf;

#[global_allocator]
static ALLOC: scalo_alloc::CountingAllocator = scalo_alloc::CountingAllocator;

fn wal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scalo-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small mixed population (movement mix on one session so replay
/// covers the decode rotation too).
fn population() -> Vec<SessionSpec> {
    (0..3u64)
        .map(|id| {
            SessionSpec::new(id, 0x5eed + 31 * id)
                .with_duration_s(0.3)
                .with_movement_every(if id == 1 { 20 } else { 0 })
        })
        .collect()
}

fn digests(report: &scalo_fleet::FleetReport) -> BTreeMap<u64, String> {
    report
        .sessions
        .iter()
        .map(|s| (s.id, s.digest.clone()))
        .collect()
}

fn durability_config(dir: &PathBuf) -> DurabilityConfig {
    DurabilityConfig::new(dir)
        .with_checkpoint_every_windows(16)
        .with_sync_every_records(8)
}

#[test]
fn durable_logging_observes_never_steers() {
    let mut plain = Fleet::new(FleetConfig::new(2));
    for spec in population() {
        plain.submit(spec).unwrap();
    }
    let baseline = plain.run();

    let dir = wal_dir("observe");
    let mut durable = Fleet::open_durable(FleetConfig::new(2), &durability_config(&dir)).unwrap();
    for spec in population() {
        durable.submit(spec).unwrap();
    }
    let logged = durable.run();

    assert_eq!(digests(&baseline), digests(&logged), "logging steered");
    let d = logged.durability.as_ref().expect("durable run reports WAL");
    assert!(d.clean_shutdown);
    assert!(d.error.is_none(), "{:?}", d.error);
    assert!(d.records > 200, "3 sessions × 75 windows: {d:?}");
    assert!(d.pages_written >= 1);
    assert!(logged.metrics_json.contains("wal.records"));
    assert!(logged.metrics_json.contains("wal.checkpoints"));
    assert!(logged.to_json().contains("\"clean_shutdown\":true"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_recover_replay_is_byte_identical() {
    // Uninterrupted baseline.
    let mut plain = Fleet::new(FleetConfig::new(2));
    for spec in population() {
        plain.submit(spec).unwrap();
    }
    let baseline = digests(&plain.run());
    assert_eq!(baseline.len(), 3);

    // Seeded crash schedule: two kills, then a run to completion. Both
    // kill points land before any session's 75 windows can finish.
    let mut rng = ChaCha8Rng::seed_from_u64(0xdead_beef);
    let kill_1 = rng.gen_range(20..60);
    let kill_2 = rng.gen_range(20..60);

    let dir = wal_dir("kill");
    let dcfg = durability_config(&dir);

    let mut fleet =
        Fleet::open_durable(FleetConfig::new(2).with_halt_after_windows(kill_1), &dcfg).unwrap();
    for spec in population() {
        fleet.submit(spec).unwrap();
    }
    let crashed = fleet.run();
    let d = crashed.durability.as_ref().unwrap();
    assert!(!d.clean_shutdown, "the kill must skip the final sync");

    // First recovery: every admitted session comes back, and the
    // decision suffix past the checkpoints is digest-verified.
    let (fleet, rec) =
        Fleet::recover(FleetConfig::new(2).with_halt_after_windows(kill_2), &dcfg).unwrap();
    assert_eq!(rec.sessions_recovered, 3, "{rec:?}");
    assert_eq!(rec.sessions_done, 0);
    assert!(rec.log_records > 0);
    let crashed_again = fleet.run();
    assert!(!crashed_again.durability.as_ref().unwrap().clean_shutdown);

    // Second recovery runs to completion.
    let (fleet, rec2) = Fleet::recover(FleetConfig::new(2), &dcfg).unwrap();
    assert_eq!(rec2.sessions_recovered, 3, "{rec2:?}");
    let finished = fleet.run();
    assert!(finished.durability.as_ref().unwrap().clean_shutdown);
    assert!(finished.metrics_json.contains("fleet.recovered_sessions"));

    assert_eq!(
        digests(&finished),
        baseline,
        "recovered decisions diverged from the uninterrupted run"
    );

    // A third recovery of the now-complete log resurrects nothing.
    let (fleet, rec3) = Fleet::recover(FleetConfig::new(2), &dcfg).unwrap();
    assert_eq!(rec3.sessions_recovered, 0, "{rec3:?}");
    assert_eq!(rec3.sessions_done, 3);
    assert_eq!(fleet.run().sessions.len(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shed_sessions_are_not_resurrected() {
    let dir = wal_dir("shed");
    let dcfg = durability_config(&dir);
    let mut fleet = Fleet::open_durable(
        FleetConfig::new(1)
            .with_budget(16.0)
            .with_halt_after_windows(10),
        &dcfg,
    )
    .unwrap();
    fleet
        .submit(
            SessionSpec::new(1, 0xa)
                .with_duration_s(0.3)
                .with_priority(1),
        )
        .unwrap();
    fleet
        .submit(
            SessionSpec::new(2, 0xb)
                .with_duration_s(0.3)
                .with_priority(1),
        )
        .unwrap();
    // Priority 7 sheds the newest priority-1 session (id 2).
    fleet
        .submit(
            SessionSpec::new(3, 0xc)
                .with_duration_s(0.3)
                .with_priority(7),
        )
        .unwrap();
    let _ = fleet.run();

    let (_, rec) = Fleet::recover(FleetConfig::new(1).with_budget(16.0), &dcfg).unwrap();
    assert_eq!(rec.sessions_recovered, 2, "{rec:?}");
    assert_eq!(rec.sessions_shed, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A hot reconfiguration survives a crash: the cutover forces a
/// checkpoint carrying the new binding epoch, so a kill *after* the
/// cutover recovers a session that finishes byte-identical to an
/// uninterrupted reconfigured run.
#[test]
fn reconfigured_session_recovers_byte_identical() {
    use scalo_core::catalog;

    let spec = SessionSpec::new(7, 0x7ec0).with_duration_s(0.3);

    // Uninterrupted reconfigured baseline.
    let mut plain = Fleet::new(FleetConfig::new(1));
    plain.submit(spec.clone()).unwrap();
    plain.schedule_reconfigure(7, 20, catalog::MOVEMENT_MIX, None);
    let baseline = plain.run();
    assert!(baseline.reconfigures[0].ok, "{:?}", baseline.reconfigures);
    let want = baseline.sessions[0].digest.clone();

    // Durable run, killed after the cutover but before completion.
    let dir = wal_dir("reconfig");
    let dcfg = durability_config(&dir);
    let mut fleet =
        Fleet::open_durable(FleetConfig::new(1).with_halt_after_windows(40), &dcfg).unwrap();
    fleet.submit(spec).unwrap();
    fleet.schedule_reconfigure(7, 20, catalog::MOVEMENT_MIX, None);
    let crashed = fleet.run();
    assert!(crashed.reconfigures[0].ok, "{:?}", crashed.reconfigures);
    assert!(!crashed.durability.as_ref().unwrap().clean_shutdown);

    // Recovery restores the query-backed epoch from the checkpoint and
    // the run completes with the baseline's decisions.
    let (fleet, rec) = Fleet::recover(FleetConfig::new(1), &dcfg).unwrap();
    assert_eq!(rec.sessions_recovered, 1, "{rec:?}");
    let finished = fleet.run();
    assert_eq!(
        finished.sessions[0].digest, want,
        "recovered reconfigured session diverged"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Quiet windows stay zero-alloc with logging enabled: for every
/// window, (step + digest + decision append) performs exactly as many
/// heap operations as the same window on an unlogged twin session —
/// i.e. the durability layer adds zero.
#[test]
fn quiet_windows_with_logging_stay_zero_alloc() {
    let dir = wal_dir("zeroalloc");
    let metrics = MetricsRegistry::new();
    let logger = FleetLogger::open(&durability_config(&dir), &metrics).unwrap();
    let spec = SessionSpec::new(1, 0x9a9a).with_duration_s(0.4);
    let mut logged = Session::new(spec.clone());
    let mut plain = Session::new(spec);

    // Window 0 warms rings and scratch on both; the first append sizes
    // the WAL's reusable buffers.
    let out = logged.step();
    logger
        .log_decision(1, out.window as u32, logged.step_digest())
        .unwrap();
    plain.step();

    let mut diverged = Vec::new();
    let mut quiet_zero = 0u32;
    while !logged.is_done() {
        let (_, c_plain) = scalo_alloc::measure(|| {
            plain.step();
            plain.step_digest()
        });
        let (_, c_logged) = scalo_alloc::measure(|| {
            let out = logged.step();
            let digest = logged.step_digest();
            logger.log_decision(1, out.window as u32, digest).unwrap();
        });
        if c_logged.heap_ops() != c_plain.heap_ops() {
            diverged.push((out.window, c_plain, c_logged));
        }
        if c_logged.heap_ops() == 0 {
            quiet_zero += 1;
        }
    }
    assert!(
        diverged.is_empty(),
        "logging added heap ops on some windows: {diverged:?}"
    );
    assert!(
        quiet_zero > 20,
        "expected many fully quiet zero-alloc windows, saw {quiet_zero}"
    );
    logger.finish().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
