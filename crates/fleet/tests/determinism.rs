//! Fleet determinism: threading must never change results.
//!
//! The same set of seeded sessions must produce byte-identical
//! per-session decisions whether the fleet runs on 1 worker or N —
//! work stealing and quantum interleaving may reorder *execution*, but
//! every decision is a function of the session's seed alone.

use scalo_core::session::SessionSpec;
use scalo_fleet::{Fleet, FleetConfig};
use std::collections::BTreeMap;

/// A mixed population: varying seeds, mixes, transports, and BERs.
fn population() -> Vec<SessionSpec> {
    (0..8u64)
        .map(|id| {
            let mut spec = SessionSpec::new(id, 0xd00d + 17 * id)
                .with_duration_s(0.4)
                .with_io_stall_us(if id % 5 == 0 { 25 } else { 0 })
                .with_movement_every(if id % 3 == 0 { 20 } else { 0 });
            if id % 2 == 0 {
                spec = spec.with_ber(1e-4);
                spec.use_reliable_transport = true;
            }
            spec
        })
        .collect()
}

/// Runs the population on `workers` threads and returns each session's
/// decision digest by id.
fn digests(workers: usize, quantum: usize) -> BTreeMap<u64, String> {
    let mut fleet = Fleet::new(FleetConfig::new(workers).with_quantum_steps(quantum));
    for spec in population() {
        fleet
            .submit(spec)
            .expect("population fits the default budget");
    }
    fleet
        .run()
        .sessions
        .into_iter()
        .map(|s| (s.id, s.digest))
        .collect()
}

#[test]
fn one_worker_vs_many_workers_byte_identical() {
    let baseline = digests(1, 8);
    assert_eq!(baseline.len(), 8);
    for (workers, quantum) in [(2, 8), (4, 8), (4, 3)] {
        let threaded = digests(workers, quantum);
        for (id, digest) in &baseline {
            assert_eq!(
                threaded.get(id),
                Some(digest),
                "session {id} decisions diverged on {workers} workers (quantum {quantum})"
            );
        }
    }
}

#[test]
fn repeated_runs_are_reproducible() {
    assert_eq!(digests(4, 8), digests(4, 8));
}

#[test]
fn digests_separate_sessions() {
    let d = digests(2, 8);
    let unique: std::collections::BTreeSet<&String> = d.values().collect();
    assert_eq!(
        unique.len(),
        d.len(),
        "each seed must yield distinct decisions"
    );
}
