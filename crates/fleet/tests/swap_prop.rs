//! Property coverage for `scalo-swap`: under arbitrary resident
//! budgets, burst sizes, seeds, and seeded NVM fault rates, every
//! session's decisions stay byte-identical to a never-swapped twin at
//! whatever window boundary the churn left it — and fault handling
//! fails closed instead of corrupting anything.

use proptest::prelude::*;
use scalo_core::session::{Session, SessionSpec};
use scalo_core::snapshot::fnv1a;
use scalo_fleet::{ArrivalConfig, ArrivalPlan, SwapConfig, SwapFleet, SwapOutcomeState};

/// Fault rates from clean through flaky to fully corrupt.
const FAULT_RATES_PPM: [u32; 3] = [0, 250_000, 1_000_000];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn swap_roundtrip_decisions_are_pure(
        seed in any::<u64>(),
        resident in 1usize..4,
        sessions in 2u64..7,
        burst in 4u32..24,
        fault_sel in 0usize..3,
    ) {
        let fault_ppm = FAULT_RATES_PPM[fault_sel];
        let specs: Vec<SessionSpec> = (0..sessions)
            .map(|id| {
                SessionSpec::new(id, seed ^ (id * 977 + 1))
                    .with_deployment(1, 2)
                    .with_duration_s(0.15)
                    .with_priority(if id == 0 { 255 } else { 1 })
                    .with_movement_every(if id % 2 == 1 { 15 } else { 0 })
            })
            .collect();
        let plan = ArrivalPlan::generate(&ArrivalConfig {
            horizon_us: 300_000,
            mean_gap_us: 60_000,
            burst_windows: burst,
            ..ArrivalConfig::new(sessions, seed)
        });

        let mut fleet = SwapFleet::new(SwapConfig::new(2, resident).with_faults(fault_ppm, seed));
        for spec in &specs {
            fleet.submit(spec.clone()).unwrap();
        }
        let report = fleet.run(&plan);

        prop_assert!(
            report.resident_peak as usize <= resident,
            "budget {resident} breached: peak {}",
            report.resident_peak
        );
        for s in &report.sessions {
            if s.pinned {
                prop_assert_eq!(s.swap_outs, 0, "pinned session {} evicted", s.id);
            }
            // Failed sessions fail CLOSED: they report no fingerprint
            // rather than a wrong one.
            if s.state == SwapOutcomeState::Failed {
                prop_assert_eq!(s.decisions_fnv, 0);
                continue;
            }
            if s.windows == 0 {
                continue;
            }
            // The load-bearing property: evict → fault-in → resume at
            // an arbitrary boundary is invisible to decisions, faults
            // or not.
            let mut twin = Session::new(specs[s.id as usize].clone());
            for _ in 0..s.windows {
                twin.step();
            }
            prop_assert_eq!(
                s.decisions_fnv,
                fnv1a(twin.decision_digest().as_bytes()),
                "session {} diverged at window {} (fault rate {} ppm)",
                s.id,
                s.windows,
                fault_ppm
            );
        }

        // Replay by seed: the whole run is a pure function of its
        // inputs, fault schedule included.
        let mut again = SwapFleet::new(SwapConfig::new(2, resident).with_faults(fault_ppm, seed));
        for spec in &specs {
            again.submit(spec.clone()).unwrap();
        }
        let rerun = again.run(&plan);
        prop_assert_eq!(rerun.digest_fnv, report.digest_fnv);
        prop_assert_eq!(rerun.swap_outs, report.swap_outs);
        prop_assert_eq!(rerun.fault_retries, report.fault_retries);
        prop_assert_eq!(rerun.faults_injected, report.faults_injected);
    }
}
