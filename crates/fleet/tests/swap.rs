//! `scalo-swap` end to end: a bounded resident set serving many more
//! admitted sessions than it can hold, with LRU eviction to the NVM
//! image tier and fault-in on arrival — and decisions that stay a pure
//! function of each session's seed no matter how the set churns.
//!
//! The binary installs the counting allocator so the last test can hold
//! the resident hot loop to the fleet's zero-alloc discipline.

use scalo_core::session::{Session, SessionSpec};
use scalo_core::snapshot::fnv1a;
use scalo_fleet::{
    ArrivalConfig, ArrivalPlan, DurabilityConfig, Fleet, FleetConfig, MetricsRegistry, SwapConfig,
    SwapFleet, SwapOutcomeState, SwapReport,
};
use std::path::PathBuf;

#[global_allocator]
static ALLOC: scalo_alloc::CountingAllocator = scalo_alloc::CountingAllocator;

fn wal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scalo-swaptest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A mixed population: varied seeds and priorities, movement mix on a
/// third of the sessions so fault-in replay covers the decode rotation.
fn population(n: u64) -> Vec<SessionSpec> {
    (0..n)
        .map(|id| {
            SessionSpec::new(id, 0x51ee7 + 131 * id)
                .with_duration_s(0.25)
                .with_priority((id % 5) as u8)
                .with_movement_every(if id % 3 == 1 { 20 } else { 0 })
        })
        .collect()
}

/// A dense schedule: every session arrives several times inside the
/// horizon, so a small resident set has to churn constantly.
fn dense_plan(sessions: u64, seed: u64) -> ArrivalPlan {
    ArrivalPlan::generate(&ArrivalConfig {
        horizon_us: 400_000,
        mean_gap_us: 60_000,
        ..ArrivalConfig::new(sessions, seed)
    })
}

/// The never-swapped oracle: a fresh session stepped the same number of
/// windows, decisions fingerprinted the same way.
fn twin_fnv(spec: &SessionSpec, windows: u64) -> u64 {
    let mut twin = Session::new(spec.clone());
    for _ in 0..windows {
        twin.step();
    }
    fnv1a(twin.decision_digest().as_bytes())
}

fn run_plan(specs: &[SessionSpec], cfg: SwapConfig, plan: &ArrivalPlan) -> SwapReport {
    let mut fleet = SwapFleet::new(cfg);
    for spec in specs {
        fleet.submit(spec.clone()).unwrap();
    }
    fleet.run(plan)
}

/// The tentpole property: evict → fault-in → resume is invisible to
/// decisions. A 3-slot fleet churning 12 sessions produces the same
/// fleet digest as a 64-slot fleet that never swaps, and every
/// session's fingerprint matches its never-swapped twin.
#[test]
fn evict_fault_in_resume_is_byte_identical_to_never_swapped() {
    let specs = population(12);
    let plan = dense_plan(12, 0x5ca1);

    let big = run_plan(&specs, SwapConfig::new(2, 64), &plan);
    let small = run_plan(&specs, SwapConfig::new(2, 3), &plan);

    assert_eq!(big.swap_outs, 0, "64 slots never need to evict");
    assert!(small.swap_outs > 0, "3 slots must churn: {small:?}");
    assert!(small.swap_ins > 0);
    assert!(small.resident_peak <= 3, "budget breached: {small:?}");
    assert!(big.resident_peak > 3);

    assert_eq!(
        small.digest_fnv, big.digest_fnv,
        "swapping changed decisions"
    );
    for s in &small.sessions {
        if s.windows == 0 {
            continue;
        }
        assert_eq!(
            s.decisions_fnv,
            twin_fnv(&specs[s.id as usize], s.windows),
            "session {} diverged from its never-swapped twin",
            s.id
        );
    }

    // The run is replayable: same plan, same budget, same digest.
    let again = run_plan(&specs, SwapConfig::new(2, 3), &plan);
    assert_eq!(again.digest_fnv, small.digest_fnv);
    assert_eq!(again.swap_outs, small.swap_outs);

    // Observability: gauges and swap histograms land in the export.
    assert!(small.metrics_json.contains("fleet.resident_sessions"));
    assert!(small.metrics_json.contains("fleet.nvm_image_bytes"));
    assert!(small.swap_in_us.count >= small.swap_ins);
    assert!(small.to_json().contains("\"digest_fnv\""));
}

/// Query-backed sessions swap like any other: admitted by query
/// string, evicted and faulted back in through the snapshot codec
/// (which round-trips the query), and byte-identical to the equivalent
/// spec-constructed population under the same churn.
#[test]
fn query_backed_sessions_survive_swap_churn() {
    use scalo_core::catalog;

    let sources = [
        catalog::SEIZURE_WATCH,
        catalog::SEIZURE_RELIABLE,
        catalog::MOVEMENT_MIX,
    ];
    // The spec-constructed twin population: bindings mirrored by hand.
    let specs: Vec<SessionSpec> = (0..6u64)
        .map(|id| {
            let mut spec = SessionSpec::new(id, query_seed(id)).with_duration_s(0.25);
            match id % 3 {
                1 => spec.use_reliable_transport = true,
                2 => spec.movement_every = 25,
                _ => {}
            }
            spec
        })
        .collect();
    let plan = dense_plan(6, 0x933);

    let baseline = run_plan(&specs, SwapConfig::new(2, 2), &plan);
    assert!(baseline.swap_outs > 0, "2 slots over 6 sessions must churn");

    let mut fleet = SwapFleet::new(SwapConfig::new(2, 2));
    for id in 0..6u64 {
        let base = SessionSpec::new(id, query_seed(id)).with_duration_s(0.25);
        fleet
            .submit_query(base, sources[(id % 3) as usize])
            .unwrap();
    }
    let queried = fleet.run(&plan);

    assert_eq!(
        queried.digest_fnv, baseline.digest_fnv,
        "query admission changed decisions under swap churn"
    );
    assert!(queried.metrics_json.contains("fleet.query_compile_us"));
}

fn query_seed(id: u64) -> u64 {
    0x9a0 + 977 * id
}

/// Priority pinning: pinned sessions are never eviction victims, while
/// the low-priority tail swaps around them.
#[test]
fn pinned_sessions_are_never_swapped() {
    let mut specs = population(8);
    specs[0] = specs[0].clone().with_priority(255);
    specs[4] = specs[4].clone().with_priority(200);
    let plan = dense_plan(8, 0x9177);

    let report = run_plan(&specs, SwapConfig::new(2, 3), &plan);
    assert!(report.swap_outs > 0, "the tail must churn: {report:?}");
    for s in &report.sessions {
        if s.pinned {
            assert_eq!(s.swap_outs, 0, "pinned session {} was evicted", s.id);
            assert!(s.windows > 0, "pinned session {} starved", s.id);
        }
        if s.windows > 0 {
            assert_eq!(s.decisions_fnv, twin_fnv(&specs[s.id as usize], s.windows));
        }
    }
    assert_eq!(report.sessions.iter().filter(|s| s.pinned).count(), 2);
}

/// Crash a durable swap fleet mid-schedule with sessions parked on the
/// image tier, recover from the WAL alone, and run everything to
/// completion: the swapped-then-recovered decisions are byte-identical
/// to sessions that never stopped.
#[test]
fn crashed_swap_fleet_recovers_swapped_sessions_byte_identical() {
    let specs = population(8);
    let plan = dense_plan(8, 0xc4a5);
    let dir = wal_dir("crash");
    let dcfg = DurabilityConfig::new(&dir);

    let mut fleet =
        SwapFleet::open_durable(SwapConfig::new(2, 2).with_halt_after_epochs(5), &dcfg).unwrap();
    for spec in &specs {
        fleet.submit(spec.clone()).unwrap();
    }
    let crashed = fleet.run(&plan);
    let d = crashed
        .durability
        .as_ref()
        .expect("durable run reports WAL");
    assert!(!d.clean_shutdown, "the halt must skip the final sync");
    assert!(d.error.is_none(), "{:?}", d.error);
    assert!(
        crashed.swap_outs > 0,
        "the crash must land with sessions parked on NVM: {crashed:?}"
    );

    // Recovery uses the classic fleet: every session the WAL knows
    // comes back (resident or swapped alike — the checkpoint IS the
    // swap image) and runs to completion.
    let (recovered, rec) = Fleet::recover(FleetConfig::new(2).with_budget(1e9), &dcfg).unwrap();
    let built: Vec<u64> = crashed
        .sessions
        .iter()
        .filter(|s| {
            matches!(
                s.state,
                SwapOutcomeState::Resident
                    | SwapOutcomeState::Swapped
                    | SwapOutcomeState::Completed
            )
        })
        .map(|s| s.id)
        .collect();
    assert_eq!(
        rec.sessions_recovered + rec.sessions_done,
        built.len(),
        "every built session is in the log: {rec:?}"
    );
    let finished = recovered.run();
    assert!(finished.durability.as_ref().unwrap().clean_shutdown);
    for s in &finished.sessions {
        let mut twin = Session::new(specs[s.id as usize].clone());
        while !twin.step().done {}
        assert_eq!(
            s.digest,
            twin.decision_digest(),
            "recovered session {} diverged from the uninterrupted run",
            s.id
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Seeded read-disturb faults on the swap device: transient corruption
/// is caught by the SCSS checksum and retried; a fully-corrupt device
/// fails closed — bursts are dropped, decisions never drift.
#[test]
fn nvm_faults_retry_then_fail_closed_without_corrupting_decisions() {
    let specs = population(10);
    let plan = dense_plan(10, 0xfa57);

    // Transient: 12% of page reads flip a bit; retries absorb them.
    let flaky = run_plan(
        &specs,
        SwapConfig::new(2, 2).with_faults(120_000, 0xbad5eed),
        &plan,
    );
    assert!(flaky.faults_injected > 0, "no faults fired: {flaky:?}");
    assert!(flaky.fault_retries > 0, "faults must surface as retries");
    assert!(flaky.swap_ins > 0);

    // Catastrophic: every page read is corrupt, so no fault-in ever
    // succeeds — swapped sessions stay parked at their old cursor.
    let dead = run_plan(
        &specs,
        SwapConfig::new(2, 2).with_faults(1_000_000, 1),
        &plan,
    );
    assert!(
        dead.fault_failures > 0,
        "all-corrupt reads must fail: {dead:?}"
    );
    assert_eq!(dead.swap_ins, 0, "no corrupt image may restore");
    assert_eq!(dead.count_state(SwapOutcomeState::Failed), 0);

    // Fail-closed means pure: whatever each session managed to step,
    // its decisions match the never-swapped twin at that cursor.
    for report in [&flaky, &dead] {
        for s in &report.sessions {
            if s.windows == 0 || s.state == SwapOutcomeState::Failed {
                continue;
            }
            assert_eq!(
                s.decisions_fnv,
                twin_fnv(&specs[s.id as usize], s.windows),
                "session {} corrupted by fault handling",
                s.id
            );
        }
    }
}

/// Scale smoke: thousands of cold-admitted sessions over a resident
/// set two orders of magnitude smaller, deterministic end to end.
#[test]
fn thousands_admitted_over_a_small_resident_set() {
    let n = 2_000u64;
    let specs: Vec<SessionSpec> = (0..n)
        .map(|id| {
            // Single-electrode implants keep 2k cold builds cheap; the
            // bench covers 10k sessions at realistic spec sizes.
            SessionSpec::new(id, 0xace + 7 * id)
                .with_deployment(1, 1)
                .with_duration_s(0.2)
                .with_priority((id % 3) as u8)
        })
        .collect();
    // Sparse arrivals: most sessions get one or two bursts, a hot tenth
    // keeps returning — only a fraction is ever warm at once.
    let plan = ArrivalPlan::generate(&ArrivalConfig {
        horizon_us: 200_000,
        mean_gap_us: 150_000,
        burst_windows: 6,
        ..ArrivalConfig::new(n, 0x10ad)
    });

    let cfg = SwapConfig::new(4, 64).with_admitted_capacity(4_096);
    let a = run_plan(&specs, cfg, &plan);
    assert_eq!(a.admitted, n as usize);
    assert!(a.resident_peak <= 64, "{a:?}");
    assert!(a.swap_outs > 0);
    assert!(a.windows > 0);

    let b = run_plan(&specs, cfg, &plan);
    assert_eq!(a.digest_fnv, b.digest_fnv, "scale run not replayable");
}

/// The resident hot loop — step, observe latency, bump counters — does
/// exactly what `FleetJob` does, and quiet windows stay zero-alloc.
#[test]
fn resident_burst_hot_loop_stays_zero_alloc() {
    let metrics = MetricsRegistry::new();
    let hist = metrics.histogram("fleet.step_latency_us");
    let steps = metrics.counter("fleet.steps");
    let misses = metrics.counter("fleet.deadline_misses");
    let mut session = Session::new(SessionSpec::new(1, 0x2e20).with_duration_s(0.4));
    // Window 0 warms rings and scratch.
    session.step();

    let mut quiet_zero = 0u32;
    while !session.is_done() {
        let (_, counts) = scalo_alloc::measure(|| {
            let out = session.step();
            hist.observe(out.wall_us);
            steps.incr();
            if out.deadline_missed {
                misses.incr();
            }
        });
        if counts.heap_ops() == 0 {
            quiet_zero += 1;
        }
    }
    assert!(
        quiet_zero > 20,
        "expected many zero-alloc resident windows, saw {quiet_zero}"
    );
}
