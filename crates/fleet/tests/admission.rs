//! Admission control at fleet scope: budget enforcement and strict
//! lowest-priority-first shedding.

use scalo_core::session::SessionSpec;
use scalo_fleet::{AdmissionEvent, AdmitError, Fleet, FleetConfig, SubmitState};

fn spec(id: u64, priority: u8) -> SessionSpec {
    SessionSpec::new(id, 0xace + id)
        .with_duration_s(0.3)
        .with_priority(priority)
}

#[test]
fn over_budget_submission_is_rejected() {
    // Default small sessions cost 8 each; budget 20 fits two.
    let mut fleet = Fleet::new(FleetConfig::new(2).with_budget(20.0));
    fleet.submit(spec(1, 3)).unwrap();
    fleet.submit(spec(2, 3)).unwrap();
    assert!(
        matches!(
            fleet.submit(spec(3, 3)),
            Err(AdmitError::BudgetExhausted { .. })
        ),
        "third equal-priority session overflows"
    );
    assert_eq!(fleet.submit_state(3), Some(SubmitState::Rejected));

    let report = fleet.run();
    assert_eq!(report.rejected, vec![3]);
    assert_eq!(report.sessions.len(), 2, "rejected session never ran");
    assert!(report.sessions.iter().all(|s| s.id != 3));
    assert!(
        report
            .admission_log
            .iter()
            .any(|e| matches!(e, AdmissionEvent::Rejected { id: 3, .. })),
        "{:?}",
        report.admission_log
    );
}

#[test]
fn shedding_evicts_strictly_lowest_priority_first() {
    // Budget 32 holds four cost-8 sessions; admit priorities 1, 2, 1, 4
    // then force an 8-unit high-priority arrival: the two priority-1
    // sessions must go (newest first), never the priority-2 or -4 ones.
    let mut fleet = Fleet::new(FleetConfig::new(2).with_budget(32.0));
    fleet.submit(spec(10, 1)).unwrap();
    fleet.submit(spec(11, 2)).unwrap();
    fleet.submit(spec(12, 1)).unwrap();
    fleet.submit(spec(13, 4)).unwrap();

    // Needs room for 16: shed both priority-1 sessions, id 12 before 10.
    let big = SessionSpec::new(14, 0xace + 14)
        .with_duration_s(0.3)
        .with_priority(9)
        .with_deployment(4, 4); // cost 16
    fleet.submit(big).unwrap();
    assert_eq!(
        fleet.submit(spec(12, 9)),
        Err(AdmitError::Shed { id: 12 }),
        "a shed id is not silently resurrected"
    );
    assert_eq!(
        fleet.submit(spec(11, 9)),
        Err(AdmitError::DuplicateId { id: 11 }),
        "resubmitting an admitted id is a caller bug"
    );

    let shed_order: Vec<u64> = fleet
        .admission()
        .log()
        .iter()
        .filter_map(|e| match e {
            AdmissionEvent::Shed { id, for_id: 14 } => Some(*id),
            _ => None,
        })
        .collect();
    assert_eq!(shed_order, vec![12, 10], "lowest priority, newest first");
    assert_eq!(fleet.submit_state(10), Some(SubmitState::Shed));
    assert_eq!(fleet.submit_state(12), Some(SubmitState::Shed));
    assert_eq!(fleet.submit_state(11), Some(SubmitState::Admitted));

    let report = fleet.run();
    let served: Vec<u64> = report.sessions.iter().map(|s| s.id).collect();
    assert_eq!(served, vec![11, 13, 14]);
    assert_eq!(report.shed, vec![10, 12]);
}

#[test]
fn equal_priority_never_displaces() {
    let mut fleet = Fleet::new(FleetConfig::new(1).with_budget(8.0));
    fleet.submit(spec(1, 5)).unwrap();
    assert!(
        matches!(
            fleet.submit(spec(2, 5)),
            Err(AdmitError::BudgetExhausted { .. })
        ),
        "first come, first served"
    );
    assert_eq!(fleet.submit_state(1), Some(SubmitState::Admitted));
}
