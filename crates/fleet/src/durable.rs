//! Durable fleet state: the write-ahead logger and crash recovery.
//!
//! A durable fleet records three things in the page-structured WAL
//! (`scalo_storage::wal`): an **admission** record carrying the new
//! session's window-0 snapshot (synced immediately — an admitted
//! patient is never forgotten), a **decision** record per served window
//! (the session's [`Session::step_digest`], group-committed every
//! [`DurabilityConfig::sync_every_records`] appends), and a periodic
//! **checkpoint** snapshot every
//! [`DurabilityConfig::checkpoint_every_windows`] windows, so recovery
//! replays a bounded suffix instead of the whole session.
//!
//! Recovery ([`recover_sessions`]) scans the log, folds it into
//! per-session state (latest checkpoint, decision suffix, shed/done
//! markers), restores each live session via deterministic re-execution
//! ([`Session::restore`]), then re-runs it to the log head asserting
//! every replayed window's digest is byte-identical to the logged one.
//! A mismatch is a hard error — recovery never resumes a session whose
//! decisions drifted from the logged run.
//!
//! The decision append path is allocation-free in steady state: quiet
//! windows with logging enabled stay 0-alloc (see the recovery
//! integration tests); only admissions, checkpoints, and segment
//! rotation touch the allocator.

use crate::metrics::{Counter, MetricsRegistry};
use scalo_core::session::Session;
use scalo_core::snapshot::{SessionSnapshot, SnapshotError};
use scalo_storage::nvm::NvmCost;
use scalo_storage::wal::{WalConfig, WalError, WalRecord, WalScan, WalStats, WalWriter};
use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Durability knobs for [`crate::Fleet::open_durable`] /
/// [`crate::Fleet::recover`].
#[derive(Debug, Clone, PartialEq)]
pub struct DurabilityConfig {
    /// Log directory (created on open).
    pub dir: PathBuf,
    /// Checkpoint a session's snapshot every this many of its windows
    /// (bounds the decision suffix recovery must replay).
    pub checkpoint_every_windows: u64,
    /// Group-commit cadence: fsync after this many decision records.
    pub sync_every_records: u64,
    /// Underlying log layout and NVM cost-model parameters.
    pub wal: WalConfig,
}

impl DurabilityConfig {
    /// Defaults: checkpoint every 64 windows, fsync every 32 decisions.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            checkpoint_every_windows: 64,
            sync_every_records: 32,
            wal: WalConfig::default(),
        }
    }

    /// Sets the checkpoint cadence, in per-session windows.
    pub fn with_checkpoint_every_windows(mut self, windows: u64) -> Self {
        assert!(windows >= 1, "checkpoint cadence must be positive");
        self.checkpoint_every_windows = windows;
        self
    }

    /// Sets the group-commit cadence, in decision records.
    pub fn with_sync_every_records(mut self, records: u64) -> Self {
        assert!(records >= 1, "sync cadence must be positive");
        self.sync_every_records = records;
        self
    }
}

/// Durability failures: log I/O and corruption, snapshot codec errors,
/// and replay divergence.
#[derive(Debug)]
pub enum DurabilityError {
    /// The write-ahead log failed (I/O, torn vs corrupt policy,
    /// version).
    Wal(WalError),
    /// A logged snapshot failed to decode or restore.
    Snapshot(SnapshotError),
    /// A replayed window's digest differs from the logged decision —
    /// the code's decisions drifted from the recorded run.
    Replay {
        /// Session id.
        session: u64,
        /// The diverging window.
        window: u64,
        /// Digest in the log.
        logged: u64,
        /// Digest produced by replay.
        replayed: u64,
    },
    /// The log admits a session but carries no snapshot for it.
    MissingSnapshot {
        /// Session id.
        session: u64,
    },
    /// A recovered session no longer fits the admission budget.
    ReadmissionFailed {
        /// Session id.
        session: u64,
    },
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Wal(e) => write!(f, "durability: {e}"),
            Self::Snapshot(e) => write!(f, "durability: {e}"),
            Self::Replay {
                session,
                window,
                logged,
                replayed,
            } => write!(
                f,
                "durability: session {session} window {window}: replay digest \
                 {replayed:016x} != logged {logged:016x}"
            ),
            Self::MissingSnapshot { session } => {
                write!(f, "durability: session {session}: no snapshot in log")
            }
            Self::ReadmissionFailed { session } => write!(
                f,
                "durability: session {session}: admission refused at recovery"
            ),
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<WalError> for DurabilityError {
    fn from(e: WalError) -> Self {
        Self::Wal(e)
    }
}

impl From<SnapshotError> for DurabilityError {
    fn from(e: SnapshotError) -> Self {
        Self::Snapshot(e)
    }
}

/// What one [`crate::Fleet::recover`] reconstructed.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Live sessions restored and re-admitted.
    pub sessions_recovered: usize,
    /// Sessions the log shows ran to completion (not resurrected).
    pub sessions_done: usize,
    /// Sessions the log shows were shed (not resurrected).
    pub sessions_shed: usize,
    /// Decision records re-run past checkpoints, digest-verified.
    pub windows_replayed: u64,
    /// Crash residue truncated from segment tails.
    pub torn_bytes: u64,
    /// Valid records scanned.
    pub log_records: usize,
    /// Log bytes on disk at scan time.
    pub log_disk_bytes: u64,
    /// Wall-clock time the scan + restore + replay took.
    pub recovery_ms: f64,
}

struct LoggerInner {
    wal: WalWriter,
    /// Decision records appended since the last fsync (group commit).
    records_since_sync: u64,
    /// Reusable snapshot-encode buffer (admissions and checkpoints).
    snap_buf: Vec<u8>,
    /// First append failure, surfaced in the fleet report.
    error: Option<WalError>,
}

/// The fleet's write-ahead logger: a [`WalWriter`] behind a mutex, with
/// metric handles pre-resolved so the hot decision path never touches
/// the registry lock.
pub struct FleetLogger {
    inner: Mutex<LoggerInner>,
    checkpoint_every_windows: u64,
    sync_every_records: u64,
    bytes: Arc<Counter>,
    records: Arc<Counter>,
    checkpoints: Arc<Counter>,
    fsyncs: Arc<Counter>,
}

impl fmt::Debug for FleetLogger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FleetLogger")
            .field("checkpoint_every_windows", &self.checkpoint_every_windows)
            .field("sync_every_records", &self.sync_every_records)
            .finish_non_exhaustive()
    }
}

impl FleetLogger {
    /// Opens the log for appending (a fresh segment; see
    /// [`WalWriter::create`]).
    pub fn open(
        cfg: &DurabilityConfig,
        metrics: &MetricsRegistry,
    ) -> Result<Self, DurabilityError> {
        let wal = WalWriter::create(&cfg.dir, cfg.wal)?;
        Ok(Self {
            inner: Mutex::new(LoggerInner {
                wal,
                records_since_sync: 0,
                snap_buf: Vec::with_capacity(4 * 1024),
                error: None,
            }),
            checkpoint_every_windows: cfg.checkpoint_every_windows,
            sync_every_records: cfg.sync_every_records,
            bytes: metrics.counter("wal.appended_bytes"),
            records: metrics.counter("wal.records"),
            checkpoints: metrics.counter("wal.checkpoints"),
            fsyncs: metrics.counter("wal.fsyncs"),
        })
    }

    /// The per-session checkpoint cadence.
    pub fn checkpoint_every_windows(&self) -> u64 {
        self.checkpoint_every_windows
    }

    fn lock(&self) -> MutexGuard<'_, LoggerInner> {
        // A panicking appender leaves plain data; the log's own
        // checksums decide validity, so poisoning carries no meaning.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Logs an admission: the session's snapshot, synced immediately so
    /// the fleet never forgets an admitted patient.
    pub fn log_admit(&self, session: &Session) -> Result<(), WalError> {
        let snap = session.snapshot();
        let mut inner = self.lock();
        let frame = append_snapshot(&mut inner, session.id(), snap, false)?;
        inner.wal.sync()?;
        inner.records_since_sync = 0;
        drop(inner);
        self.bytes.add(frame as u64);
        self.records.incr();
        self.fsyncs.incr();
        Ok(())
    }

    /// Logs a periodic checkpoint snapshot, synced immediately.
    pub fn log_checkpoint(&self, session: &Session) -> Result<(), WalError> {
        let snap = session.snapshot();
        let mut inner = self.lock();
        let frame = append_snapshot(&mut inner, session.id(), snap, true)?;
        inner.wal.sync()?;
        inner.records_since_sync = 0;
        drop(inner);
        self.bytes.add(frame as u64);
        self.records.incr();
        self.checkpoints.incr();
        self.fsyncs.incr();
        Ok(())
    }

    /// Logs a checkpoint from a **pre-encoded** SCSS image, synced
    /// immediately. This is the swap manager's path: one
    /// `SessionSnapshot::encode_into` feeds both the NVM image store
    /// and this record, so a session's swap image and its WAL
    /// checkpoint are byte-identical by construction (there is no
    /// second encoder to drift).
    pub fn log_checkpoint_image(&self, session: u64, image: &[u8]) -> Result<(), WalError> {
        let mut inner = self.lock();
        let mut buf = std::mem::take(&mut inner.snap_buf);
        buf.clear();
        buf.extend_from_slice(image);
        let record = WalRecord::Checkpoint {
            session,
            snapshot: buf,
        };
        let res = inner.wal.append(&record);
        inner.snap_buf = match record {
            WalRecord::Checkpoint { snapshot, .. } => snapshot,
            _ => unreachable!("checkpoint record only"),
        };
        let frame = res?;
        inner.wal.sync()?;
        inner.records_since_sync = 0;
        drop(inner);
        self.bytes.add(frame as u64);
        self.records.incr();
        self.checkpoints.incr();
        self.fsyncs.incr();
        Ok(())
    }

    /// Logs one window's decision digest. Group-committed: fsynced
    /// every [`DurabilityConfig::sync_every_records`] appends.
    /// Allocation-free in steady state.
    pub fn log_decision(&self, session: u64, window: u32, digest: u64) -> Result<(), WalError> {
        let mut inner = self.lock();
        let frame = inner.wal.append(&WalRecord::Decision {
            session,
            window,
            digest,
        })?;
        inner.records_since_sync += 1;
        let synced = inner.records_since_sync >= self.sync_every_records;
        if synced {
            inner.wal.sync()?;
            inner.records_since_sync = 0;
        }
        drop(inner);
        self.bytes.add(frame as u64);
        self.records.incr();
        if synced {
            self.fsyncs.incr();
        }
        Ok(())
    }

    /// Logs an admission-control eviction, synced immediately.
    pub fn log_shed(&self, session: u64) -> Result<(), WalError> {
        let mut inner = self.lock();
        let frame = inner.wal.append(&WalRecord::Shed { session })?;
        inner.wal.sync()?;
        inner.records_since_sync = 0;
        drop(inner);
        self.bytes.add(frame as u64);
        self.records.incr();
        self.fsyncs.incr();
        Ok(())
    }

    /// Logs a session completion with its decision fingerprint.
    pub fn log_done(&self, session: u64, decisions_fnv: u64) -> Result<(), WalError> {
        let mut inner = self.lock();
        let frame = inner.wal.append(&WalRecord::Done {
            session,
            decisions_fnv,
        })?;
        inner.wal.sync()?;
        inner.records_since_sync = 0;
        drop(inner);
        self.bytes.add(frame as u64);
        self.records.incr();
        self.fsyncs.incr();
        Ok(())
    }

    /// Final fsync at clean shutdown; a crashed run never gets one, so
    /// its buffered tail is genuinely lost (that is the experiment).
    pub fn finish(&self) -> Result<(), WalError> {
        let mut inner = self.lock();
        inner.wal.sync()?;
        inner.records_since_sync = 0;
        drop(inner);
        self.fsyncs.incr();
        Ok(())
    }

    /// Records the first append failure for the fleet report.
    pub(crate) fn poison(&self, err: WalError) {
        let mut inner = self.lock();
        inner.error.get_or_insert(err);
    }

    /// The first append failure, if any.
    pub fn error_string(&self) -> Option<String> {
        self.lock().error.as_ref().map(|e| e.to_string())
    }

    /// Append-path accounting so far.
    pub fn stats(&self) -> WalStats {
        self.lock().wal.stats()
    }

    /// Modeled NVM cost of the pages the log programmed.
    pub fn cost(&self) -> NvmCost {
        self.lock().wal.cost()
    }
}

/// Encodes `snap` into the reusable buffer and appends it as an admit
/// or checkpoint record, returning the frame size. The buffer round-trips
/// through the `WalRecord` so no fresh `Vec` is built per snapshot.
fn append_snapshot(
    inner: &mut LoggerInner,
    session: u64,
    snap: SessionSnapshot,
    checkpoint: bool,
) -> Result<usize, WalError> {
    let mut buf = std::mem::take(&mut inner.snap_buf);
    snap.encode_into(&mut buf);
    let record = if checkpoint {
        WalRecord::Checkpoint {
            session,
            snapshot: buf,
        }
    } else {
        WalRecord::Admit {
            session,
            snapshot: buf,
        }
    };
    let res = inner.wal.append(&record);
    inner.snap_buf = match record {
        WalRecord::Admit { snapshot, .. } | WalRecord::Checkpoint { snapshot, .. } => snapshot,
        _ => unreachable!("snapshot records only"),
    };
    res
}

/// Per-session fold of the log, oldest record first.
#[derive(Default)]
struct Rebuild {
    admit: Option<Vec<u8>>,
    checkpoint: Option<Vec<u8>>,
    decisions: Vec<(u32, u64)>,
    shed: bool,
    done: bool,
}

/// Scans the log at `dir` and reconstructs every live session at the
/// log head: restore at the latest checkpoint, then re-run the decision
/// suffix asserting byte-identical digests window by window.
pub fn recover_sessions(
    dir: &std::path::Path,
) -> Result<(Vec<Session>, RecoveryReport), DurabilityError> {
    let t0 = Instant::now();
    let scan = WalScan::open(dir)?;
    let mut fold: BTreeMap<u64, Rebuild> = BTreeMap::new();
    for record in &scan.records {
        match record {
            WalRecord::Admit { session, snapshot } => {
                fold.entry(*session).or_default().admit = Some(snapshot.clone());
            }
            WalRecord::Checkpoint { session, snapshot } => {
                fold.entry(*session).or_default().checkpoint = Some(snapshot.clone());
            }
            WalRecord::Decision {
                session,
                window,
                digest,
            } => {
                fold.entry(*session)
                    .or_default()
                    .decisions
                    .push((*window, *digest));
            }
            WalRecord::Shed { session } => fold.entry(*session).or_default().shed = true,
            WalRecord::Done { session, .. } => fold.entry(*session).or_default().done = true,
        }
    }

    let mut sessions = Vec::new();
    let mut windows_replayed = 0u64;
    let mut sessions_done = 0usize;
    let mut sessions_shed = 0usize;
    for (&id, state) in &fold {
        if state.shed {
            sessions_shed += 1;
            continue;
        }
        if state.done {
            sessions_done += 1;
            continue;
        }
        let image = state
            .checkpoint
            .as_deref()
            .or(state.admit.as_deref())
            .ok_or(DurabilityError::MissingSnapshot { session: id })?;
        let snap = SessionSnapshot::decode(image)?;
        let mut session = Session::restore(&snap)?;
        // Re-run the decision suffix past the checkpoint, verifying
        // each window's digest against the logged record. Windows below
        // the cursor are duplicates from earlier crash cycles (each run
        // re-logs from its restore point) — determinism makes them
        // redundant, so they are skipped; a window *above* the cursor
        // would be a gap in the log and is rejected.
        let mut next = snap.window;
        for &(window, logged) in &state.decisions {
            let window = u64::from(window);
            if window < next {
                continue;
            }
            if window > next || session.is_done() {
                return Err(DurabilityError::Replay {
                    session: id,
                    window,
                    logged,
                    replayed: 0,
                });
            }
            let out = session.step();
            let replayed = session.step_digest();
            if out.window as u64 != window || replayed != logged {
                return Err(DurabilityError::Replay {
                    session: id,
                    window,
                    logged,
                    replayed,
                });
            }
            windows_replayed += 1;
            next = window + 1;
        }
        sessions.push(session);
    }

    let report = RecoveryReport {
        sessions_recovered: sessions.len(),
        sessions_done,
        sessions_shed,
        windows_replayed,
        torn_bytes: scan.torn_bytes,
        log_records: scan.records.len(),
        log_disk_bytes: scan.disk_bytes,
        recovery_ms: t0.elapsed().as_secs_f64() * 1_000.0,
    };
    Ok((sessions, report))
}
