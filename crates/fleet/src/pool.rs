//! A std-only worker pool over lock-free Chase-Lev work-stealing deques.
//!
//! Each worker owns one deque and services it LIFO from the bottom
//! (`take`); a worker whose deque runs dry steals FIFO from the *top* of
//! its neighbours' deques, so a patient whose seizure-confirmation step
//! runs long ties up one worker while every other job drains through the
//! remaining deques. Jobs are cooperative: [`WorkUnit::run_quantum`] does
//! a bounded slice of work and yields, and a yielded job goes back to its
//! worker's deque.
//!
//! The deque is the fixed-capacity Chase-Lev design with the
//! memory-ordering recipe of Lê, Pop, Cohen & Zappa Nardelli ("Correct
//! and Efficient Work-Stealing for Weak Memory Models", PPoPP '13),
//! hand-rolled on `std::sync::atomic` — no locks, no condvars, no
//! dependencies. Queue entries are job *indices*; the jobs themselves
//! live in a shared slot table and ownership of slot `i` is conferred by
//! holding index `i` popped from a deque (each index is in at most one
//! deque at a time, so at most one thread can hold it).
//!
//! Why the buffer never needs to grow (the hard part of a general
//! Chase-Lev deque): the total number of queue entries alive across the
//! whole pool is bounded by the job count `n`, which is known up front.
//! With capacity the next power of two *strictly greater* than `n`, a
//! deque can never hold `capacity` entries, so a push can never overwrite
//! a ring slot a concurrent thief is still reading (overwriting slot
//! `t % cap` would require `bottom − t ≥ cap > n`). That removes the
//! buffer-growth/reclamation problem entirely.
//!
//! The pool is deliberately oblivious to what a job computes, which is
//! what makes fleet execution reproducible: a job owns all of its state,
//! so which worker (or how many workers) steps it can change only the
//! interleaving, never a result.

use std::cell::UnsafeCell;
use std::sync::atomic::{fence, AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// What one scheduling quantum accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantum {
    /// More work remains: requeue the job.
    Yield,
    /// The job is finished: retire it.
    Done,
}

/// A resumable, relocatable unit of work.
pub trait WorkUnit: Send {
    /// Performs a bounded slice of work.
    fn run_quantum(&mut self) -> Quantum;
}

/// Aggregate pool accounting for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolReport {
    /// Worker threads used.
    pub workers: usize,
    /// Quanta executed across all workers.
    pub quanta: u64,
    /// Quanta whose job was stolen from another worker's deque.
    pub steals: u64,
}

/// A fixed-capacity Chase-Lev work-stealing deque of `usize` entries.
///
/// One thread (the owner) calls [`Deque::push`]/[`Deque::take`] at the
/// bottom; any thread may call [`Deque::steal`] at the top. The memory
/// orderings are exactly the PPoPP '13 recipe:
///
/// * `push` writes the ring slot (`Relaxed`), issues a `Release` fence,
///   then publishes the new `bottom` (`Relaxed`). A thief that observes
///   the new `bottom` via its `Acquire` load therefore also observes the
///   slot write — and, transitively, every write the owner made before
///   the push (the job state handed over through the slot table).
/// * `take` decrements `bottom`, then a `SeqCst` fence orders that
///   decrement against the thief's `top` read: either the thief sees the
///   reservation and backs off, or the owner sees the thief's `top`
///   increment and backs off — the last entry is claimed by whoever wins
///   the `SeqCst` CAS on `top`.
/// * `steal` reads `top` (`Acquire`), fences `SeqCst`, reads `bottom`
///   (`Acquire`), reads the slot, then claims it with a `SeqCst` CAS on
///   `top`. A failed CAS means another thief (or the owner's `take`) won
///   the race for that entry; the caller retries from a fresh `top`.
///
/// A successful `top` CAS is what transfers entry ownership to a thief;
/// combined with the capacity bound argued at the module level, the value
/// read from the ring slot before the CAS cannot have been overwritten,
/// so a claimed index is never stale and never claimed twice.
pub(crate) struct Deque {
    top: AtomicI64,
    bottom: AtomicI64,
    ring: Box<[AtomicUsize]>,
    mask: i64,
}

/// Outcome of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Steal {
    /// The deque had no entries.
    Empty,
    /// Lost a race with the owner or another thief; retry is fair game.
    Retry,
    /// Claimed an entry.
    Got(usize),
}

impl Deque {
    /// A deque that can hold up to `n` entries concurrently.
    pub(crate) fn with_capacity_for(n: usize) -> Self {
        // Strictly greater than n so `bottom − top == capacity` is
        // unreachable (see the module-level growth argument).
        let cap = (n + 1).next_power_of_two();
        Self {
            top: AtomicI64::new(0),
            bottom: AtomicI64::new(0),
            ring: (0..cap).map(|_| AtomicUsize::new(0)).collect(),
            mask: cap as i64 - 1,
        }
    }

    /// Owner-only: pushes `entry` at the bottom.
    pub(crate) fn push(&self, entry: usize) {
        let b = self.bottom.load(Ordering::Relaxed);
        self.ring[(b & self.mask) as usize].store(entry, Ordering::Relaxed);
        // Publish the slot write (and everything before it) to thieves
        // that acquire the new bottom.
        fence(Ordering::Release);
        self.bottom.store(b + 1, Ordering::Relaxed);
    }

    /// Owner-only: pops from the bottom (LIFO).
    pub(crate) fn take(&self) -> Option<usize> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        // Order the bottom reservation against concurrent top reads: a
        // thief's SeqCst fence and this one are totally ordered, so one
        // side observes the other's write and backs off.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Empty: undo the reservation.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let entry = self.ring[(b & self.mask) as usize].load(Ordering::Relaxed);
        if t == b {
            // Last entry: race any thief for it via the top CAS.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            return won.then_some(entry);
        }
        Some(entry)
    }

    /// Any thread: steals from the top (FIFO).
    pub(crate) fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let entry = self.ring[(t & self.mask) as usize].load(Ordering::Relaxed);
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return Steal::Retry;
        }
        Steal::Got(entry)
    }
}

/// One job slot. Exclusive access is conferred by holding the slot's
/// index popped from a deque (or, before the workers start and after
/// they join, by `&mut` on the pool itself).
struct Slot<J>(UnsafeCell<Option<J>>);

// SAFETY: slots are shared across worker threads, but the deque protocol
// guarantees at most one thread holds a given index at a time (each
// index lives in at most one deque, and push/steal hand it over with
// Release/Acquire + SeqCst-CAS ordering), so all access to the inner
// `Option<J>` is externally synchronized. `J: Send` is required by
// `WorkUnit`, so moving the job between threads is sound.
unsafe impl<J: Send> Sync for Slot<J> {}

struct Pool<J> {
    deques: Vec<Deque>,
    slots: Vec<Slot<J>>,
    /// Jobs not yet retired; 0 means every worker should exit.
    pending: AtomicUsize,
    quanta: AtomicU64,
    steals: AtomicU64,
}

/// Runs every job to completion on `workers` threads and returns the
/// jobs in submission order, plus the pool accounting.
///
/// # Panics
///
/// Panics if `workers` is zero or a worker thread panics.
pub fn run_to_completion<J: WorkUnit>(jobs: Vec<J>, workers: usize) -> (Vec<J>, PoolReport) {
    assert!(workers >= 1, "need at least one worker");
    let n = jobs.len();
    let pool = Pool {
        deques: (0..workers).map(|_| Deque::with_capacity_for(n)).collect(),
        slots: jobs
            .into_iter()
            .map(|j| Slot(UnsafeCell::new(Some(j))))
            .collect(),
        pending: AtomicUsize::new(n),
        quanta: AtomicU64::new(0),
        steals: AtomicU64::new(0),
    };
    // Round-robin initial placement across the deques (single-threaded:
    // the workers have not started yet).
    for idx in 0..n {
        pool.deques[idx % workers].push(idx);
    }
    std::thread::scope(|s| {
        for me in 0..workers {
            let pool = &pool;
            s.spawn(move || worker_loop(pool, me));
        }
    });
    let report = PoolReport {
        workers,
        quanta: pool.quanta.load(Ordering::Relaxed),
        steals: pool.steals.load(Ordering::Relaxed),
    };
    let finished = pool
        .slots
        .into_iter()
        .map(|s| s.0.into_inner().expect("every job retired"))
        .collect();
    (finished, report)
}

fn worker_loop<J: WorkUnit>(pool: &Pool<J>, me: usize) {
    // Exponential idle backoff instead of a condvar: spin first (another
    // worker usually yields a stealable job within microseconds), then
    // yield the CPU, then sleep briefly. Wakeups are therefore batched
    // naturally — a burst of yielded jobs is picked up by one pass over
    // the victims rather than one notification per job.
    let mut idle = 0u32;
    loop {
        let claimed = match pool.deques[me].take() {
            Some(idx) => Some((idx, false)),
            None => steal_round(pool, me).map(|idx| (idx, true)),
        };
        let Some((idx, stolen)) = claimed else {
            if pool.pending.load(Ordering::Acquire) == 0 {
                break;
            }
            idle += 1;
            if idle < 64 {
                std::hint::spin_loop();
            } else if idle < 128 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
            continue;
        };
        idle = 0;
        // SAFETY: we hold `idx` freshly popped from a deque, which is the
        // pool's exclusivity token for slot `idx` (see `Slot`); the
        // take/steal orderings make the previous holder's writes visible.
        let mut job = unsafe { (*pool.slots[idx].0.get()).take() }.expect("queued slot is full");
        pool.quanta.fetch_add(1, Ordering::Relaxed);
        if stolen {
            pool.steals.fetch_add(1, Ordering::Relaxed);
        }
        let outcome = job.run_quantum();
        // SAFETY: still the exclusive holder of `idx`; returning the job
        // to its slot happens before the index is republished (push) or
        // retired (pending decrement), either of which orders the write
        // for the next observer.
        unsafe { *pool.slots[idx].0.get() = Some(job) };
        match outcome {
            Quantum::Done => {
                pool.pending.fetch_sub(1, Ordering::AcqRel);
            }
            Quantum::Yield => pool.deques[me].push(idx),
        }
    }
}

/// One pass over the other workers' deques, retrying a victim whose
/// steal raced (`Steal::Retry`) rather than skipping work that is still
/// there.
fn steal_round<J>(pool: &Pool<J>, me: usize) -> Option<usize> {
    let k = pool.deques.len();
    for off in 1..k {
        let victim = (me + off) % k;
        loop {
            match pool.deques[victim].steal() {
                Steal::Got(idx) => return Some(idx),
                Steal::Retry => std::hint::spin_loop(),
                Steal::Empty => break,
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// Counts down `remaining` one tick per quantum.
    struct Ticker {
        remaining: u32,
        ticks: u32,
    }

    impl WorkUnit for Ticker {
        fn run_quantum(&mut self) -> Quantum {
            self.ticks += 1;
            self.remaining -= 1;
            if self.remaining == 0 {
                Quantum::Done
            } else {
                Quantum::Yield
            }
        }
    }

    #[test]
    fn runs_everything_in_submission_order() {
        for workers in [1, 2, 4] {
            let jobs: Vec<Ticker> = (0..10)
                .map(|i| Ticker {
                    remaining: 1 + i % 4,
                    ticks: 0,
                })
                .collect();
            let (done, report) = run_to_completion(jobs, workers);
            assert_eq!(done.len(), 10);
            for (i, t) in done.iter().enumerate() {
                assert_eq!(t.ticks, 1 + (i as u32) % 4, "job {i} on {workers} workers");
                assert_eq!(t.remaining, 0);
            }
            assert_eq!(report.workers, workers);
            let expected: u32 = (0..10u32).map(|i| 1 + i % 4).sum();
            assert_eq!(report.quanta, u64::from(expected));
        }
    }

    #[test]
    fn empty_job_list_is_fine() {
        let (done, report) = run_to_completion(Vec::<Ticker>::new(), 4);
        assert!(done.is_empty());
        assert_eq!(report.quanta, 0);
    }

    #[test]
    fn one_long_job_does_not_stall_the_rest() {
        // One 512-quantum job plus many one-quantum jobs on 2 workers:
        // everything retires (and almost certainly some were stolen, but
        // scheduling noise makes that assertion too brittle to keep).
        let mut jobs = vec![Ticker {
            remaining: 512,
            ticks: 0,
        }];
        jobs.extend((0..32).map(|_| Ticker {
            remaining: 1,
            ticks: 0,
        }));
        let (done, report) = run_to_completion(jobs, 2);
        assert_eq!(done.len(), 33);
        assert!(done.iter().all(|t| t.remaining == 0));
        assert_eq!(report.quanta, 512 + 32);
    }

    /// The steal/take race, hammered directly on one deque: an owner
    /// pushes tokens and drains from the bottom while thieves gang up on
    /// the top. Every pushed token must be claimed by exactly one thread
    /// — a lost token means a steal observed a stale ring slot, a double
    /// claim means two threads won the same `top` CAS.
    #[test]
    fn chase_lev_steal_take_race_claims_each_entry_once() {
        const TOKENS: usize = 20_000;
        const THIEVES: usize = 3;
        // Capacity covers the worst case of every token outstanding at
        // once — the pool proper sizes its deques the same way.
        let deque = Deque::with_capacity_for(TOKENS);
        let claims: Vec<AtomicU32> = (0..TOKENS).map(|_| AtomicU32::new(0)).collect();
        let done = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let deque = &deque;
            let claims = &claims;
            for _ in 0..THIEVES {
                s.spawn(|| loop {
                    match deque.steal() {
                        Steal::Got(tok) => {
                            claims[tok].fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            // The owner drains the deque before raising
                            // the flag, so Empty + flag means finished.
                            if done.load(Ordering::Acquire) == 1 {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                });
            }
            // Owner: push in bursts, take a few back, repeat — keeps the
            // deque short so the bottom/top race on the *last* entry (the
            // contended case) fires constantly.
            let mut next = 0usize;
            while next < TOKENS {
                let burst = 1 + next % 7;
                for _ in 0..burst {
                    if next == TOKENS {
                        break;
                    }
                    deque.push(next);
                    next += 1;
                }
                for _ in 0..(burst / 2 + 1) {
                    if let Some(tok) = deque.take() {
                        claims[tok].fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            // Drain what the thieves leave behind.
            while let Some(tok) = deque.take() {
                claims[tok].fetch_add(1, Ordering::Relaxed);
            }
            done.store(1, Ordering::Release);
        });
        let mut missing = Vec::new();
        let mut duplicated = Vec::new();
        for (tok, c) in claims.iter().enumerate() {
            match c.load(Ordering::Relaxed) {
                1 => {}
                0 => missing.push(tok),
                _ => duplicated.push(tok),
            }
        }
        assert!(
            missing.is_empty() && duplicated.is_empty(),
            "lost {missing:?} / duplicated {duplicated:?}"
        );
    }
}
