//! A std-only worker pool over sharded run-queues with work stealing.
//!
//! Each worker owns one shard (a `Mutex<VecDeque>` + `Condvar`) and
//! services it front-to-back; a worker whose shard runs dry steals from
//! the *back* of its neighbours' shards, so a patient whose
//! seizure-confirmation step runs long ties up one worker while every
//! other session drains through the remaining shards. Jobs are
//! cooperative: [`WorkUnit::run_quantum`] does a bounded slice of work
//! and yields, and a yielded job goes to the back of its worker's shard
//! — round-robin service within a shard, stealing across them.
//!
//! The pool is deliberately oblivious to what a job computes, which is
//! what makes fleet execution reproducible: a job owns all of its
//! state, so which worker (or how many workers) steps it can change
//! only the interleaving, never a result.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// What one scheduling quantum accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantum {
    /// More work remains: requeue the job.
    Yield,
    /// The job is finished: retire it.
    Done,
}

/// A resumable, relocatable unit of work.
pub trait WorkUnit: Send {
    /// Performs a bounded slice of work.
    fn run_quantum(&mut self) -> Quantum;
}

/// Aggregate pool accounting for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolReport {
    /// Worker threads used.
    pub workers: usize,
    /// Quanta executed across all workers.
    pub quanta: u64,
    /// Quanta whose job was stolen from another worker's shard.
    pub steals: u64,
}

struct Shard<J> {
    queue: Mutex<VecDeque<(usize, J)>>,
    cv: Condvar,
}

struct Pool<J> {
    shards: Vec<Shard<J>>,
    /// Jobs not yet retired; 0 means every worker should exit.
    pending: AtomicUsize,
    finished: Mutex<Vec<Option<J>>>,
    quanta: AtomicU64,
    steals: AtomicU64,
}

/// Runs every job to completion on `workers` threads and returns the
/// jobs in submission order, plus the pool accounting.
///
/// # Panics
///
/// Panics if `workers` is zero or a worker thread panics.
pub fn run_to_completion<J: WorkUnit>(jobs: Vec<J>, workers: usize) -> (Vec<J>, PoolReport) {
    assert!(workers >= 1, "need at least one worker");
    let n = jobs.len();
    let pool = Pool {
        shards: (0..workers)
            .map(|_| Shard {
                queue: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
            })
            .collect(),
        pending: AtomicUsize::new(n),
        finished: Mutex::new((0..n).map(|_| None).collect()),
        quanta: AtomicU64::new(0),
        steals: AtomicU64::new(0),
    };
    // Round-robin initial placement across the shards. Lock poisoning
    // is neutralized throughout (`into_inner`): a poisoned shard means
    // another worker panicked, and the queue itself is still a
    // consistent VecDeque — draining it lets the surviving workers
    // finish before `thread::scope` re-raises the original panic.
    for (idx, job) in jobs.into_iter().enumerate() {
        pool.shards[idx % workers]
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back((idx, job));
    }
    std::thread::scope(|s| {
        for me in 0..workers {
            let pool = &pool;
            s.spawn(move || worker_loop(pool, me));
        }
    });
    let report = PoolReport {
        workers,
        quanta: pool.quanta.load(Ordering::Relaxed),
        steals: pool.steals.load(Ordering::Relaxed),
    };
    let finished = pool
        .finished
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .map(|j| j.expect("every job retired"))
        .collect();
    (finished, report)
}

fn worker_loop<J: WorkUnit>(pool: &Pool<J>, me: usize) {
    while pool.pending.load(Ordering::Acquire) > 0 {
        let Some((idx, mut job, stolen)) = take_job(pool, me) else {
            // Nothing runnable anywhere: park briefly on our own shard.
            // The timeout (rather than pure signalling) keeps the exit
            // path simple — a worker re-checks `pending` at worst 1 ms
            // after the last job retires.
            let guard = pool.shards[me]
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if pool.pending.load(Ordering::Acquire) == 0 {
                break;
            }
            let _ = pool.shards[me]
                .cv
                .wait_timeout(guard, Duration::from_millis(1))
                .unwrap_or_else(|e| e.into_inner());
            continue;
        };
        pool.quanta.fetch_add(1, Ordering::Relaxed);
        if stolen {
            pool.steals.fetch_add(1, Ordering::Relaxed);
        }
        match job.run_quantum() {
            Quantum::Done => {
                pool.finished.lock().unwrap_or_else(|e| e.into_inner())[idx] = Some(job);
                if pool.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                    for shard in &pool.shards {
                        shard.cv.notify_all();
                    }
                }
            }
            Quantum::Yield => {
                pool.shards[me]
                    .queue
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push_back((idx, job));
                pool.shards[me].cv.notify_one();
            }
        }
    }
}

/// Pops from the front of our own shard, or steals from the back of the
/// first non-empty neighbour.
fn take_job<J>(pool: &Pool<J>, me: usize) -> Option<(usize, J, bool)> {
    if let Some((idx, job)) = pool.shards[me]
        .queue
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .pop_front()
    {
        return Some((idx, job, false));
    }
    let k = pool.shards.len();
    for off in 1..k {
        let victim = (me + off) % k;
        if let Some((idx, job)) = pool.shards[victim]
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_back()
        {
            return Some((idx, job, true));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts down `remaining` one tick per quantum.
    struct Ticker {
        remaining: u32,
        ticks: u32,
    }

    impl WorkUnit for Ticker {
        fn run_quantum(&mut self) -> Quantum {
            self.ticks += 1;
            self.remaining -= 1;
            if self.remaining == 0 {
                Quantum::Done
            } else {
                Quantum::Yield
            }
        }
    }

    #[test]
    fn runs_everything_in_submission_order() {
        for workers in [1, 2, 4] {
            let jobs: Vec<Ticker> = (0..10)
                .map(|i| Ticker {
                    remaining: 1 + i % 4,
                    ticks: 0,
                })
                .collect();
            let (done, report) = run_to_completion(jobs, workers);
            assert_eq!(done.len(), 10);
            for (i, t) in done.iter().enumerate() {
                assert_eq!(t.ticks, 1 + (i as u32) % 4, "job {i} on {workers} workers");
                assert_eq!(t.remaining, 0);
            }
            assert_eq!(report.workers, workers);
            let expected: u32 = (0..10u32).map(|i| 1 + i % 4).sum();
            assert_eq!(report.quanta, u64::from(expected));
        }
    }

    #[test]
    fn empty_job_list_is_fine() {
        let (done, report) = run_to_completion(Vec::<Ticker>::new(), 4);
        assert!(done.is_empty());
        assert_eq!(report.quanta, 0);
    }

    #[test]
    fn one_long_job_does_not_stall_the_rest() {
        // One 512-quantum job plus many one-quantum jobs on 2 workers:
        // everything retires (and almost certainly some were stolen, but
        // scheduling noise makes that assertion too brittle to keep).
        let mut jobs = vec![Ticker {
            remaining: 512,
            ticks: 0,
        }];
        jobs.extend((0..32).map(|_| Ticker {
            remaining: 1,
            ticks: 0,
        }));
        let (done, report) = run_to_completion(jobs, 2);
        assert_eq!(done.len(), 33);
        assert!(done.iter().all(|t| t.remaining == 0));
        assert_eq!(report.quanta, 512 + 32);
    }
}
