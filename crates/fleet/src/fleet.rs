//! The fleet itself: admission at the front door, a worker pool in the
//! middle, metrics and per-session decision digests on the way out.

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionEvent};
use crate::durable::{DurabilityConfig, DurabilityError, FleetLogger, RecoveryReport};
use crate::metrics::{Counter, Histogram, MetricsRegistry};
use crate::pool::{self, PoolReport, Quantum, WorkUnit};
use scalo_core::cohort::{Cohort, CohortKey};
use scalo_core::plan::{resolve_budget, PlanConfig, PlanError, ProgramPlan};
use scalo_core::session::{Session, SessionSpec, StepOutcome};
use scalo_core::ScaloConfig;
use scalo_trace::SpanEvent;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Fleet configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Windows a session advances per scheduling quantum before it
    /// yields its worker.
    pub quantum_steps: usize,
    /// Admission-control budget.
    pub admission: AdmissionConfig,
    /// Kill switch for crash-recovery experiments: halt the whole pool
    /// after this many fleet-wide windows, *without* the final WAL sync
    /// a clean shutdown performs — buffered log records are genuinely
    /// lost, exactly as in a process kill.
    pub halt_after_windows: Option<u64>,
    /// Cohort-batched execution: group admitted sessions whose specs
    /// share a [`CohortKey`] (same deployment shape, duration, BER,
    /// cadence, transport, stall) and step each group in lockstep
    /// through the fused cohort engine — one radio stall, one block
    /// hash, one FFT-plan walk per cohort window. Decisions are
    /// bit-identical to solo stepping; sessions with a pending hot
    /// reconfiguration are ejected to solo jobs so cutover replay never
    /// runs inside a lockstep group.
    pub cohort: bool,
}

impl FleetConfig {
    /// A fleet with `workers` threads, an 8-window quantum, and the
    /// default admission budget.
    pub fn new(workers: usize) -> Self {
        Self {
            workers,
            quantum_steps: 8,
            admission: AdmissionConfig::default(),
            halt_after_windows: None,
            cohort: false,
        }
    }

    /// Enables (or disables) cohort-batched execution.
    pub fn with_cohort(mut self, on: bool) -> Self {
        self.cohort = on;
        self
    }

    /// Sets the scheduling quantum, in windows.
    pub fn with_quantum_steps(mut self, steps: usize) -> Self {
        assert!(steps >= 1, "quantum must make progress");
        self.quantum_steps = steps;
        self
    }

    /// Sets the admission budget.
    pub fn with_budget(mut self, budget: f64) -> Self {
        self.admission.budget = budget;
        self
    }

    /// Arms the seeded-kill switch: the run halts (un-synced) after
    /// `windows` fleet-wide windows.
    pub fn with_halt_after_windows(mut self, windows: u64) -> Self {
        assert!(windows >= 1, "a kill at window 0 serves nothing");
        self.halt_after_windows = Some(windows);
        self
    }
}

/// Why a [`Fleet::submit`] was refused.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmitError {
    /// The session does not fit the remaining admission budget, even
    /// after shedding every strictly lower-priority session.
    BudgetExhausted {
        /// The offered session's cost.
        cost: f64,
        /// Budget headroom after hypothetical shedding.
        headroom: f64,
    },
    /// The id was already submitted (a caller bug, not a capacity
    /// condition).
    DuplicateId {
        /// The colliding id.
        id: u64,
    },
    /// The id was admitted earlier and then shed by a higher-priority
    /// submission; it is not silently resurrected.
    Shed {
        /// The shed id.
        id: u64,
    },
    /// The admitted-set capacity (resident **plus** swapped, the
    /// NVM-image-backed tier) is exhausted — distinct from
    /// [`AdmitError::BudgetExhausted`], which is about *resident*
    /// compute.
    CapacityExhausted {
        /// Sessions currently admitted (resident + swapped).
        admitted: usize,
        /// The configured admitted-set capacity.
        capacity: usize,
    },
    /// A pin-priority (never-swapped) session could not be guaranteed a
    /// resident slot: the resident budget is already covered by pinned
    /// sessions.
    PinnedResidencyExhausted {
        /// Pinned sessions already holding resident slots.
        pinned: usize,
        /// The resident-set budget, in sessions.
        resident_budget: usize,
    },
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BudgetExhausted { cost, headroom } => {
                write!(f, "admission: cost {cost} exceeds headroom {headroom}")
            }
            Self::DuplicateId { id } => write!(f, "admission: id {id} already submitted"),
            Self::Shed { id } => write!(f, "admission: id {id} was shed; not resubmitting"),
            Self::CapacityExhausted { admitted, capacity } => write!(
                f,
                "admission: admitted set full ({admitted} of {capacity})"
            ),
            Self::PinnedResidencyExhausted {
                pinned,
                resident_budget,
            } => write!(
                f,
                "admission: {pinned} pinned sessions already cover the resident budget of {resident_budget}"
            ),
        }
    }
}

impl std::error::Error for AdmitError {}

/// Why a [`Fleet::submit_query`] was refused: either the query did not
/// compile to a servable, schedulable plan, or the compiled session
/// failed ordinary admission.
#[derive(Debug, Clone, PartialEq)]
pub enum QuerySubmitError {
    /// The compiled spec was refused by admission control.
    Admit(AdmitError),
    /// The query failed to compile or the seizure ILP found no feasible
    /// placement for it.
    Plan(PlanError),
}

impl fmt::Display for QuerySubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Admit(e) => write!(f, "{e}"),
            Self::Plan(e) => write!(f, "query admission: {e}"),
        }
    }
}

impl std::error::Error for QuerySubmitError {}

/// A pending hot reconfiguration: at `at_window`, recompile `source`
/// and cut the session over to it.
#[derive(Debug, Clone, PartialEq)]
struct ReconfigureRequest {
    at_window: u64,
    source: String,
    expected_step_digest: Option<u64>,
}

/// What one scheduled hot reconfiguration did (or failed to do).
#[derive(Debug, Clone, PartialEq)]
pub struct ReconfigureRecord {
    /// The session id.
    pub id: u64,
    /// The window boundary the cutover ran at.
    pub window: u64,
    /// Whether the cutover committed (false = typed rollback, the live
    /// session kept its old configuration).
    pub ok: bool,
    /// The failure, rendered, when `ok` is false.
    pub error: Option<String>,
    /// Query compile latency, µs.
    pub compile_us: u64,
    /// Seizure-ILP re-solve latency, µs.
    pub resolve_us: u64,
    /// Snapshot → digest-verified replay → swap latency, µs.
    pub cutover_us: u64,
    /// Windows the digest-checking replay re-executed.
    pub replayed_windows: u64,
}

/// Where a submitted session ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitState {
    /// Admitted and (still) scheduled to run.
    Admitted,
    /// Refused at the front door.
    Rejected,
    /// Admitted, then evicted by a later higher-priority submission.
    Shed,
}

/// One served session's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionServing {
    /// Session id.
    pub id: u64,
    /// Admission priority.
    pub priority: u8,
    /// Windows stepped.
    pub steps: u64,
    /// Steps that overran the session's deadline.
    pub deadline_misses: u64,
    /// Wall-clock µs spent stepping this session.
    pub wall_us: u64,
    /// Simulated µs served.
    pub sim_us: u64,
    /// The deterministic decision digest
    /// ([`Session::decision_digest`]).
    pub digest: String,
    /// The session's recorded spans, oldest first (empty unless the
    /// spec enabled tracing via `SessionSpec::trace_capacity`).
    pub trace: Vec<SpanEvent>,
}

/// The full outcome of one [`Fleet::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Worker threads used.
    pub workers: usize,
    /// End-to-end wall-clock time of the run, ms.
    pub wall_ms: f64,
    /// Windows stepped across all sessions.
    pub windows: u64,
    /// Deadline misses across all sessions.
    pub deadline_misses: u64,
    /// Served sessions, by id.
    pub sessions: Vec<SessionServing>,
    /// Ids refused at submission.
    pub rejected: Vec<u64>,
    /// Ids admitted then shed.
    pub shed: Vec<u64>,
    /// The admission transition log.
    pub admission_log: Vec<AdmissionEvent>,
    /// Hot reconfigurations attempted during the run, by session id.
    pub reconfigures: Vec<ReconfigureRecord>,
    /// Job group sizes the scheduler formed, largest first (cohort mode
    /// only; empty otherwise). A size ≥ 2 is a fused cohort; a 1 is a
    /// solo job — a shape with no twin, or a session ejected for a
    /// pending reconfiguration. The sizes sum to the served session
    /// count, so this doubles as the cohort occupancy histogram.
    pub cohorts: Vec<usize>,
    /// Worker-pool accounting.
    pub pool: PoolReport,
    /// The metrics registry's JSON export (counters + histograms).
    pub metrics_json: String,
    /// Write-ahead-log accounting (durable fleets only).
    pub durability: Option<DurabilitySummary>,
}

/// Write-ahead-log accounting for one durable run.
#[derive(Debug, Clone, PartialEq)]
pub struct DurabilitySummary {
    /// Records appended.
    pub records: u64,
    /// Frame bytes appended (padding excluded).
    pub appended_bytes: u64,
    /// Zero bytes spent sealing pages at fsync points.
    pub padding_bytes: u64,
    /// Pages programmed.
    pub pages_written: u64,
    /// Fsync points.
    pub fsyncs: u64,
    /// Segment files created.
    pub segments: u64,
    /// Modeled NVM time spent programming log pages, µs.
    pub nvm_time_us: f64,
    /// Whether the run ended with a final sync (false after a
    /// [`FleetConfig::halt_after_windows`] kill).
    pub clean_shutdown: bool,
    /// The first log-append failure, if any.
    pub error: Option<String>,
}

impl FleetReport {
    /// Fleet throughput: windows served per wall-clock second.
    pub fn windows_per_sec(&self) -> f64 {
        self.windows as f64 / (self.wall_ms / 1_000.0).max(1e-9)
    }

    /// Serialises the report as one JSON object (summary, per-session
    /// rows with FNV-1a decision fingerprints, admission log, and the
    /// full metrics export).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"workers\":{},\"wall_ms\":{:.3},\"windows\":{},\"windows_per_sec\":{:.1},\"deadline_misses\":{},\"pool\":{{\"quanta\":{},\"steals\":{}}}",
            self.workers,
            self.wall_ms,
            self.windows,
            self.windows_per_sec(),
            self.deadline_misses,
            self.pool.quanta,
            self.pool.steals,
        );
        let _ = write!(out, ",\"cohorts\":{:?}", self.cohorts);
        out.push_str(",\"sessions\":[");
        for (i, s) in self.sessions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{},\"priority\":{},\"steps\":{},\"deadline_misses\":{},\"wall_us\":{},\"sim_us\":{},\"decisions_fnv\":\"{:016x}\"}}",
                s.id,
                s.priority,
                s.steps,
                s.deadline_misses,
                s.wall_us,
                s.sim_us,
                fnv1a(s.digest.as_bytes()),
            );
        }
        out.push_str("],\"reconfigures\":[");
        for (i, r) in self.reconfigures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{},\"window\":{},\"ok\":{},\"error\":{},\"compile_us\":{},\"resolve_us\":{},\"cutover_us\":{},\"replayed_windows\":{}}}",
                r.id,
                r.window,
                r.ok,
                match &r.error {
                    Some(e) => format!("{e:?}"),
                    None => "null".to_string(),
                },
                r.compile_us,
                r.resolve_us,
                r.cutover_us,
                r.replayed_windows,
            );
        }
        let _ = write!(
            out,
            "],\"rejected\":{:?},\"shed\":{:?},\"admission_events\":{},\"metrics\":{}",
            self.rejected,
            self.shed,
            admission_log_json(&self.admission_log),
            self.metrics_json,
        );
        if let Some(d) = &self.durability {
            let _ = write!(
                out,
                ",\"wal\":{{\"records\":{},\"appended_bytes\":{},\"padding_bytes\":{},\"pages_written\":{},\"fsyncs\":{},\"segments\":{},\"nvm_time_us\":{:.1},\"clean_shutdown\":{},\"error\":{}}}",
                d.records,
                d.appended_bytes,
                d.padding_bytes,
                d.pages_written,
                d.fsyncs,
                d.segments,
                d.nvm_time_us,
                d.clean_shutdown,
                match &d.error {
                    Some(e) => format!("{:?}", e),
                    None => "null".to_string(),
                },
            );
        }
        out.push('}');
        out
    }
}

fn admission_log_json(log: &[AdmissionEvent]) -> String {
    let mut out = String::from("[");
    for (i, ev) in log.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match ev {
            AdmissionEvent::Admitted { id, cost } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"admitted\",\"id\":{id},\"cost\":{cost}}}"
                );
            }
            AdmissionEvent::Rejected { id, cost, headroom } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"rejected\",\"id\":{id},\"cost\":{cost},\"headroom\":{headroom}}}"
                );
            }
            AdmissionEvent::Shed { id, for_id } => {
                let _ = write!(out, "{{\"event\":\"shed\",\"id\":{id},\"for\":{for_id}}}");
            }
        }
    }
    out.push(']');
    out
}

/// 64-bit FNV-1a, for compact decision fingerprints in JSON output.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One pooled session plus its metric handles (resolved once here so
/// the step loop never takes the registry lock).
struct FleetJob {
    session: Session,
    quantum_steps: usize,
    fleet_latency: Arc<Histogram>,
    session_latency: Arc<Histogram>,
    steps: Arc<Counter>,
    misses: Arc<Counter>,
    /// Write-ahead logging (durable fleets only).
    logger: Option<Arc<FleetLogger>>,
    /// Fleet-wide window counter feeding the kill switch.
    windows_stepped: Arc<AtomicU64>,
    /// Kill switch: once set, every job returns immediately.
    halted: Arc<AtomicBool>,
    halt_after_windows: Option<u64>,
    /// Pending hot reconfiguration, taken when its window arrives.
    reconfigure: Option<ReconfigureRequest>,
    /// What the reconfiguration did, harvested into the report.
    reconfigure_record: Option<ReconfigureRecord>,
    reconfigure_total: Arc<Counter>,
    reconfigure_failed: Arc<Counter>,
    cutover_hist: Arc<Histogram>,
}

/// Per-window durability hooks, shared by solo and cohort jobs: one
/// decision record per window (allocation-free), a checkpoint snapshot
/// every cadence windows, and a completion record. A log failure halts
/// the fleet — it must never keep serving while silently losing its
/// history.
fn log_window(
    logger: &Option<Arc<FleetLogger>>,
    halted: &AtomicBool,
    session: &Session,
    window: usize,
    done: bool,
) {
    let Some(logger) = logger else { return };
    let id = session.id();
    let digest = session.step_digest();
    let mut result = logger.log_decision(id, window as u32, digest);
    if result.is_ok() {
        let completed = window as u64 + 1;
        if !done && completed.is_multiple_of(logger.checkpoint_every_windows()) {
            result = logger.log_checkpoint(session);
        }
        if done && result.is_ok() {
            let fnv = fnv1a(session.decision_digest().as_bytes());
            result = logger.log_done(id, fnv);
        }
    }
    if let Err(e) = result {
        logger.poison(e);
        halted.store(true, Ordering::Relaxed);
    }
}

impl FleetJob {
    /// Applies a scheduled reconfiguration once its window boundary has
    /// arrived: recompile the new query against the session's
    /// deployment, re-solve the seizure ILP, and hand the resulting
    /// spec to the session's digest-checked cutover. Every failure is a
    /// typed rollback — the session keeps serving its old configuration
    /// and the record says why.
    fn maybe_reconfigure(&mut self) {
        let due = self
            .reconfigure
            .as_ref()
            .is_some_and(|req| self.session.window() >= req.at_window);
        if !due || self.session.is_done() {
            return;
        }
        let req = self.reconfigure.take().expect("checked above");
        self.reconfigure_total.incr();
        let window = self.session.window();
        let spec = self.session.spec().clone();
        let t_compile = Instant::now();
        let cfg = PlanConfig {
            channels: spec.electrodes,
            seed: spec.seed,
        };
        let compiled = ProgramPlan::compile(&req.source, &cfg);
        let compile_us = t_compile.elapsed().as_micros() as u64;
        let mut record = ReconfigureRecord {
            id: spec.id,
            window,
            ok: false,
            error: None,
            compile_us,
            resolve_us: 0,
            cutover_us: 0,
            replayed_windows: 0,
        };
        let outcome = compiled
            .and_then(|plan| {
                let t_resolve = Instant::now();
                let budget =
                    resolve_budget(&plan, spec.nodes, ScaloConfig::default().power_limit_mw);
                record.resolve_us = t_resolve.elapsed().as_micros() as u64;
                budget.map(|_| plan)
            })
            .map_err(|e| e.to_string())
            .and_then(|plan| {
                let binding = plan.binding();
                let mut new_spec = spec;
                new_spec.movement_every = binding.movement_every;
                new_spec.use_reliable_transport = binding.use_reliable_transport;
                new_spec.query = Some(plan.source().to_string());
                let t_cut = Instant::now();
                let result = self
                    .session
                    .reconfigure(new_spec, req.expected_step_digest)
                    .map_err(|e| e.to_string());
                let cutover_ns = t_cut.elapsed().as_nanos() as u64;
                record.cutover_us = cutover_ns / 1_000;
                self.cutover_hist.observe(record.cutover_us);
                if result.is_ok() {
                    self.session.note_reconfigured(cutover_ns);
                }
                result
            });
        match outcome {
            Ok(out) => {
                record.ok = true;
                record.replayed_windows = out.replayed_windows;
                // Checkpoint right at the cutover so durable recovery
                // replays the decision suffix from a snapshot that
                // already carries the new binding epoch.
                if let Some(logger) = &self.logger {
                    if let Err(e) = logger.log_checkpoint(&self.session) {
                        logger.poison(e);
                        self.halted.store(true, Ordering::Relaxed);
                    }
                }
            }
            Err(e) => {
                record.error = Some(e);
                self.reconfigure_failed.incr();
            }
        }
        self.reconfigure_record = Some(record);
    }
}

impl WorkUnit for FleetJob {
    fn run_quantum(&mut self) -> Quantum {
        if self.halted.load(Ordering::Relaxed) {
            return Quantum::Done;
        }
        // Close any pending run-queue gap as a `queue` span (no-op when
        // the session's recorder is disabled).
        self.session.note_scheduled();
        for _ in 0..self.quantum_steps {
            self.maybe_reconfigure();
            let out = self.session.step();
            self.fleet_latency.observe(out.wall_us);
            self.session_latency.observe(out.wall_us);
            self.steps.incr();
            if out.deadline_missed {
                self.misses.incr();
            }
            log_window(
                &self.logger,
                &self.halted,
                &self.session,
                out.window,
                out.done,
            );
            if let Some(halt) = self.halt_after_windows {
                if self.windows_stepped.fetch_add(1, Ordering::Relaxed) + 1 >= halt {
                    // The kill: stop the pool mid-flight, no final sync.
                    self.halted.store(true, Ordering::Relaxed);
                    return Quantum::Done;
                }
            }
            if out.done {
                return Quantum::Done;
            }
            if self.halted.load(Ordering::Relaxed) {
                return Quantum::Done;
            }
        }
        self.session.note_yielded();
        Quantum::Yield
    }
}

/// A pooled *cohort*: structurally identical sessions stepped in
/// lockstep through the fused kernel engine ([`scalo_core::cohort`]).
/// One quantum advances every member by `quantum_steps` windows, so the
/// scheduling granularity is `members × quantum_steps` session-windows.
struct CohortJob {
    sessions: Vec<Session>,
    cohort: Cohort,
    outcomes: Vec<StepOutcome>,
    quantum_steps: usize,
    fleet_latency: Arc<Histogram>,
    /// Per-member `session.<id>.step_latency_us` handles, member order.
    session_latency: Vec<Arc<Histogram>>,
    steps: Arc<Counter>,
    misses: Arc<Counter>,
    logger: Option<Arc<FleetLogger>>,
    windows_stepped: Arc<AtomicU64>,
    halted: Arc<AtomicBool>,
    halt_after_windows: Option<u64>,
}

impl WorkUnit for CohortJob {
    fn run_quantum(&mut self) -> Quantum {
        if self.halted.load(Ordering::Relaxed) {
            return Quantum::Done;
        }
        for s in self.sessions.iter_mut() {
            s.note_scheduled();
        }
        for _ in 0..self.quantum_steps {
            self.cohort
                .step_window(&mut self.sessions, &mut self.outcomes);
            for (m, out) in self.outcomes.iter().enumerate() {
                self.fleet_latency.observe(out.wall_us);
                self.session_latency[m].observe(out.wall_us);
                self.steps.incr();
                if out.deadline_missed {
                    self.misses.incr();
                }
                log_window(
                    &self.logger,
                    &self.halted,
                    &self.sessions[m],
                    out.window,
                    out.done,
                );
            }
            if let Some(halt) = self.halt_after_windows {
                let n = self.outcomes.len() as u64;
                if self.windows_stepped.fetch_add(n, Ordering::Relaxed) + n >= halt {
                    self.halted.store(true, Ordering::Relaxed);
                    return Quantum::Done;
                }
            }
            // Lockstep: a shared duration means members finish together.
            if self.outcomes.iter().all(|o| o.done) {
                return Quantum::Done;
            }
            if self.halted.load(Ordering::Relaxed) {
                return Quantum::Done;
            }
        }
        for s in self.sessions.iter_mut() {
            s.note_yielded();
        }
        Quantum::Yield
    }
}

/// The pool's single job type: a solo session or a fused cohort. The
/// generic Chase-Lev pool runs one job type per invocation, so the two
/// shapes meet here.
enum JobKind {
    Solo(Box<FleetJob>),
    Cohort(Box<CohortJob>),
}

impl WorkUnit for JobKind {
    fn run_quantum(&mut self) -> Quantum {
        match self {
            JobKind::Solo(j) => j.run_quantum(),
            JobKind::Cohort(j) => j.run_quantum(),
        }
    }
}

/// A multi-patient serving fleet: submit sessions, then run the
/// admitted set to completion on the worker pool.
#[derive(Debug)]
pub struct Fleet {
    cfg: FleetConfig,
    admission: AdmissionController,
    metrics: Arc<MetricsRegistry>,
    active: Vec<Session>,
    states: BTreeMap<u64, (u8, SubmitState)>,
    logger: Option<Arc<FleetLogger>>,
    reconfigures: BTreeMap<u64, ReconfigureRequest>,
}

impl Fleet {
    /// An empty fleet.
    pub fn new(cfg: FleetConfig) -> Self {
        assert!(cfg.workers >= 1, "need at least one worker");
        Self {
            cfg,
            admission: AdmissionController::new(cfg.admission),
            metrics: Arc::new(MetricsRegistry::new()),
            active: Vec::new(),
            states: BTreeMap::new(),
            logger: None,
            reconfigures: BTreeMap::new(),
        }
    }

    /// An empty durable fleet: admissions, per-window decisions, and
    /// periodic checkpoints are written ahead to the log at `dcfg.dir`,
    /// so a killed process can [`Self::recover`].
    pub fn open_durable(
        cfg: FleetConfig,
        dcfg: &DurabilityConfig,
    ) -> Result<Self, DurabilityError> {
        let mut fleet = Self::new(cfg);
        fleet.logger = Some(Arc::new(FleetLogger::open(dcfg, &fleet.metrics)?));
        Ok(fleet)
    }

    /// Recovers a durable fleet from the log at `dcfg.dir`: every
    /// admitted-but-unfinished session is reconstructed at its last
    /// checkpoint and re-run to the log head with byte-identical digests
    /// asserted window by window (see [`crate::durable::recover_sessions`]).
    /// Recovered sessions are re-admitted, re-checkpointed into a fresh
    /// log segment (bounding the next recovery), and the fleet is ready
    /// to [`Self::run`] the remainder.
    pub fn recover(
        cfg: FleetConfig,
        dcfg: &DurabilityConfig,
    ) -> Result<(Self, RecoveryReport), DurabilityError> {
        let (sessions, report) = crate::durable::recover_sessions(&dcfg.dir)?;
        let mut fleet = Self::new(cfg);
        let logger = Arc::new(FleetLogger::open(dcfg, &fleet.metrics)?);
        for session in sessions {
            let spec = session.spec();
            let decision = fleet
                .admission
                .offer(spec.id, spec.priority, spec.cost_estimate());
            if !decision.admitted || !decision.shed.is_empty() {
                // Same specs, same budget: re-admission shedding or
                // refusing means the configs diverged from the logged
                // run — refuse to limp along with a partial fleet.
                return Err(DurabilityError::ReadmissionFailed { session: spec.id });
            }
            fleet
                .states
                .insert(spec.id, (spec.priority, SubmitState::Admitted));
            logger.log_checkpoint(&session)?;
            fleet.active.push(session);
        }
        fleet.logger = Some(logger);
        fleet.metrics.counter("fleet.recoveries").incr();
        fleet
            .metrics
            .counter("fleet.recovered_sessions")
            .add(report.sessions_recovered as u64);
        fleet
            .metrics
            .counter("fleet.replayed_windows")
            .add(report.windows_replayed);
        fleet
            .metrics
            .histogram("fleet.recovery_ms")
            .observe(report.recovery_ms as u64);
        Ok((fleet, report))
    }

    /// The fleet's metrics registry.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The admission controller (budget usage, transition log).
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// The write-ahead logger (durable fleets only).
    pub fn logger(&self) -> Option<&Arc<FleetLogger>> {
        self.logger.as_ref()
    }

    /// Where each submitted session currently stands.
    pub fn submit_state(&self, id: u64) -> Option<SubmitState> {
        self.states.get(&id).map(|&(_, s)| s)
    }

    /// Offers a session to the fleet. On admission the session is built
    /// (recording generated, detectors trained) and queued; sessions
    /// the admission controller shed to make room are dropped from the
    /// queue. Refusals say why: budget pressure ([`AdmitError::
    /// BudgetExhausted`]), an id collision ([`AdmitError::DuplicateId`]),
    /// or an earlier eviction ([`AdmitError::Shed`]).
    pub fn submit(&mut self, spec: SessionSpec) -> Result<(), AdmitError> {
        match self.states.get(&spec.id) {
            Some(&(_, SubmitState::Shed)) => return Err(AdmitError::Shed { id: spec.id }),
            Some(_) => return Err(AdmitError::DuplicateId { id: spec.id }),
            None => {}
        }
        let cost = spec.cost_estimate();
        let decision = self.admission.offer(spec.id, spec.priority, cost);
        if !decision.admitted {
            self.states
                .insert(spec.id, (spec.priority, SubmitState::Rejected));
            self.metrics.counter("fleet.rejected").incr();
            // The controller logged the post-hypothetical-shed headroom
            // with its rejection; surface that number to the caller.
            let headroom = match self.admission.log().last() {
                Some(AdmissionEvent::Rejected { headroom, .. }) => *headroom,
                _ => self.admission.headroom(),
            };
            return Err(AdmitError::BudgetExhausted { cost, headroom });
        }
        for victim in decision.shed {
            self.active.retain(|s| s.id() != victim);
            if let Some(st) = self.states.get_mut(&victim) {
                st.1 = SubmitState::Shed;
            }
            self.metrics.counter("fleet.shed").incr();
            if let Some(logger) = &self.logger {
                if let Err(e) = logger.log_shed(victim) {
                    logger.poison(e);
                }
            }
        }
        self.states
            .insert(spec.id, (spec.priority, SubmitState::Admitted));
        self.metrics.counter("fleet.admitted").incr();
        let session = Session::new(spec);
        if let Some(logger) = &self.logger {
            if let Err(e) = logger.log_admit(&session) {
                logger.poison(e);
            }
        }
        self.active.push(session);
        Ok(())
    }

    /// Offers a query-backed session: compiles `source` into a window
    /// plan, re-solves the ILP admission budget for the spec's
    /// deployment, binds the derived session knobs (movement cadence,
    /// reliable transport, canonical query text) onto `base`, and then
    /// admits through the normal [`Fleet::submit`] path. Compile and
    /// budget-resolve latency land in the `fleet.query_compile_us` /
    /// `fleet.query_resolve_us` histograms.
    pub fn submit_query(
        &mut self,
        base: SessionSpec,
        source: &str,
    ) -> Result<(), QuerySubmitError> {
        let cfg = PlanConfig {
            channels: base.electrodes,
            seed: base.seed,
        };
        let t0 = Instant::now();
        let plan = ProgramPlan::compile(source, &cfg).map_err(QuerySubmitError::Plan)?;
        self.metrics
            .histogram("fleet.query_compile_us")
            .observe(t0.elapsed().as_micros() as u64);
        let t1 = Instant::now();
        resolve_budget(&plan, base.nodes, ScaloConfig::default().power_limit_mw)
            .map_err(QuerySubmitError::Plan)?;
        self.metrics
            .histogram("fleet.query_resolve_us")
            .observe(t1.elapsed().as_micros() as u64);
        let binding = plan.binding();
        let mut spec = base;
        spec.movement_every = binding.movement_every;
        spec.use_reliable_transport = binding.use_reliable_transport;
        spec.query = Some(plan.source().to_string());
        self.submit(spec).map_err(QuerySubmitError::Admit)
    }

    /// Schedules a hot reconfiguration for session `id`: once the
    /// session reaches `at_window` during [`Fleet::run`], `source` is
    /// compiled, the budget re-solved, and the session cut over at the
    /// window boundary — rolling back (and recording the error) if the
    /// compile, solve, or digest pin fails. One pending request per
    /// session; a later call replaces an earlier one.
    pub fn schedule_reconfigure(
        &mut self,
        id: u64,
        at_window: u64,
        source: &str,
        expected_step_digest: Option<u64>,
    ) {
        self.reconfigures.insert(
            id,
            ReconfigureRequest {
                at_window,
                source: source.to_string(),
                expected_step_digest,
            },
        );
    }

    /// Runs every admitted session to completion (or to the
    /// [`FleetConfig::halt_after_windows`] kill point) and reports.
    pub fn run(mut self) -> FleetReport {
        let windows_stepped = Arc::new(AtomicU64::new(0));
        let halted = Arc::new(AtomicBool::new(false));
        // Group the admitted set into pool jobs. In cohort mode,
        // sessions sharing a CohortKey step as one fused lockstep job;
        // sessions with a pending reconfiguration (whose cutover replay
        // would desync the lockstep cursor) and shapes without a twin
        // stay solo. BTreeMap keeps the grouping order deterministic.
        let groups: Vec<Vec<Session>> = if self.cfg.cohort {
            let mut by_key: BTreeMap<CohortKey, Vec<Session>> = BTreeMap::new();
            let mut solo: Vec<Session> = Vec::new();
            for session in self.active.drain(..) {
                if self.reconfigures.contains_key(&session.id()) {
                    solo.push(session);
                } else {
                    by_key
                        .entry(CohortKey::of(session.spec()))
                        .or_default()
                        .push(session);
                }
            }
            let mut groups: Vec<Vec<Session>> = by_key.into_values().collect();
            groups.extend(solo.into_iter().map(|s| vec![s]));
            groups
        } else {
            self.active.drain(..).map(|s| vec![s]).collect()
        };
        let mut cohorts: Vec<usize> = Vec::new();
        let jobs: Vec<JobKind> = groups
            .into_iter()
            .map(|mut group| {
                if self.cfg.cohort {
                    cohorts.push(group.len());
                }
                if group.len() >= 2 {
                    let session_latency = group
                        .iter()
                        .map(|s| {
                            self.metrics
                                .histogram(&format!("session.{}.step_latency_us", s.id()))
                        })
                        .collect();
                    JobKind::Cohort(Box::new(CohortJob {
                        cohort: Cohort::new(),
                        outcomes: Vec::with_capacity(group.len()),
                        quantum_steps: self.cfg.quantum_steps,
                        fleet_latency: self.metrics.histogram("fleet.step_latency_us"),
                        session_latency,
                        steps: self.metrics.counter("fleet.steps"),
                        misses: self.metrics.counter("fleet.deadline_misses"),
                        logger: self.logger.clone(),
                        windows_stepped: Arc::clone(&windows_stepped),
                        halted: Arc::clone(&halted),
                        halt_after_windows: self.cfg.halt_after_windows,
                        sessions: group,
                    }))
                } else {
                    let session = group.pop().expect("groups are non-empty");
                    let id = session.id();
                    JobKind::Solo(Box::new(FleetJob {
                        fleet_latency: self.metrics.histogram("fleet.step_latency_us"),
                        session_latency: self
                            .metrics
                            .histogram(&format!("session.{id}.step_latency_us")),
                        steps: self.metrics.counter("fleet.steps"),
                        misses: self.metrics.counter("fleet.deadline_misses"),
                        quantum_steps: self.cfg.quantum_steps,
                        logger: self.logger.clone(),
                        windows_stepped: Arc::clone(&windows_stepped),
                        halted: Arc::clone(&halted),
                        halt_after_windows: self.cfg.halt_after_windows,
                        reconfigure: self.reconfigures.remove(&id),
                        reconfigure_record: None,
                        reconfigure_total: self.metrics.counter("fleet.reconfigure_total"),
                        reconfigure_failed: self.metrics.counter("fleet.reconfigure_failed"),
                        cutover_hist: self.metrics.histogram("fleet.reconfigure_cutover_us"),
                        session,
                    }))
                }
            })
            .collect();
        cohorts.sort_unstable_by(|a, b| b.cmp(a));
        let t0 = Instant::now();
        let (done, pool_report) = pool::run_to_completion(jobs, self.cfg.workers);
        let wall_ms = t0.elapsed().as_secs_f64() * 1_000.0;

        // A clean shutdown seals and fsyncs the log tail; a halted run
        // deliberately skips this — the kill loses the buffered tail.
        let durability = self.logger.as_ref().map(|logger| {
            let clean_shutdown = !halted.load(Ordering::Relaxed);
            if clean_shutdown {
                if let Err(e) = logger.finish() {
                    logger.poison(e);
                }
            }
            let stats = logger.stats();
            DurabilitySummary {
                records: stats.records,
                appended_bytes: stats.appended_bytes,
                padding_bytes: stats.padding_bytes,
                pages_written: stats.pages_written,
                fsyncs: stats.fsyncs,
                segments: stats.segments,
                nvm_time_us: logger.cost().time_us,
                clean_shutdown,
                error: logger.error_string(),
            }
        });

        // Per-stage histogram handles for the trace merge below, resolved
        // lazily (name formatting + registry lock once per *stage*, not
        // once per span — traced fleets drain tens of thousands of spans)
        // so an untraced run never materializes empty trace histograms.
        let mut stage_hists: Vec<Option<Arc<Histogram>>> =
            vec![None; scalo_trace::Stage::ALL.len()];
        let mut reconfigures: Vec<ReconfigureRecord> = Vec::new();
        let mut served: Vec<Session> = Vec::new();
        for job in done {
            match job {
                JobKind::Solo(mut j) => {
                    if let Some(rec) = j.reconfigure_record.take() {
                        reconfigures.push(rec);
                    }
                    served.push(j.session);
                }
                JobKind::Cohort(c) => served.extend(c.sessions),
            }
        }
        let mut sessions: Vec<SessionServing> = served
            .into_iter()
            .map(|mut session| {
                let report = session.report();
                self.admission.release(report.id);
                let trace = session.take_trace_events();
                // Merge the session's spans into the registry as
                // per-stage latency histograms, alongside the counters
                // the step loop already feeds.
                for ev in &trace {
                    // Stage::ALL covers every stage the recorder can
                    // emit; a span outside it (a future stage this
                    // build predates) is skipped, not a crash.
                    let Some(idx) = scalo_trace::Stage::ALL.iter().position(|s| *s == ev.stage)
                    else {
                        continue;
                    };
                    stage_hists[idx]
                        .get_or_insert_with(|| {
                            self.metrics
                                .histogram(&format!("trace.stage.{}.span_us", ev.stage.name()))
                        })
                        .observe(ev.dur_ns() / 1_000);
                }
                let rec = session.trace();
                self.metrics.counter("trace.spans").add(trace.len() as u64);
                self.metrics.counter("trace.dropped").add(rec.dropped());
                self.metrics
                    .counter("trace.unbalanced")
                    .add(rec.unbalanced());
                SessionServing {
                    id: report.id,
                    priority: session.priority(),
                    steps: report.steps,
                    deadline_misses: report.deadline_misses,
                    wall_us: report.wall_us,
                    sim_us: report.sim_us,
                    digest: session.decision_digest(),
                    trace,
                }
            })
            .collect();
        sessions.sort_by_key(|s| s.id);
        reconfigures.sort_by_key(|r| r.id);

        let by_state = |want: SubmitState| {
            self.states
                .iter()
                .filter(|(_, &(_, s))| s == want)
                .map(|(&id, _)| id)
                .collect::<Vec<u64>>()
        };
        FleetReport {
            workers: self.cfg.workers,
            wall_ms,
            windows: sessions.iter().map(|s| s.steps).sum(),
            deadline_misses: sessions.iter().map(|s| s.deadline_misses).sum(),
            sessions,
            reconfigures,
            cohorts,
            rejected: by_state(SubmitState::Rejected),
            shed: by_state(SubmitState::Shed),
            admission_log: self.admission.log().to_vec(),
            pool: pool_report,
            metrics_json: self.metrics.to_json(),
            durability,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(id: u64) -> SessionSpec {
        SessionSpec::new(id, 0x100 + id).with_duration_s(0.3)
    }

    #[test]
    fn serves_a_small_fleet() {
        let mut fleet = Fleet::new(FleetConfig::new(2).with_quantum_steps(4));
        for id in 0..3 {
            fleet.submit(small_spec(id)).unwrap();
        }
        let report = fleet.run();
        assert_eq!(report.sessions.len(), 3);
        assert_eq!(report.windows, 3 * 75);
        assert!(report.windows_per_sec() > 0.0);
        assert!(report.rejected.is_empty());
        assert!(report.metrics_json.contains("fleet.step_latency_us"));
        assert!(report.to_json().contains("\"decisions_fnv\""));
    }

    #[test]
    fn workspace_reuse_across_quantum_switches_keeps_digests() {
        // Each session's Workspace is warmed by its first window and
        // then carried across every quantum switch. Quantum 1 forces a
        // worker to hop sessions after every single window — maximal
        // interleaving of warm workspaces — and must still produce the
        // same decision digests as run-to-completion (quantum larger
        // than any session).
        let run = |quantum: usize| {
            let mut fleet = Fleet::new(FleetConfig::new(1).with_quantum_steps(quantum));
            for id in 0..3 {
                fleet.submit(small_spec(id)).unwrap();
            }
            fleet.run()
        };
        let interleaved = run(1);
        let monolithic = run(100_000);
        assert_eq!(interleaved.sessions.len(), monolithic.sessions.len());
        for (a, b) in interleaved.sessions.iter().zip(&monolithic.sessions) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.digest, b.digest, "session {} digest drifted", a.id);
        }
    }

    #[test]
    fn traced_serving_keeps_digests_and_merges_histograms() {
        let run = |cap: usize| {
            let mut fleet = Fleet::new(FleetConfig::new(2).with_quantum_steps(3));
            for id in 0..3 {
                fleet
                    .submit(small_spec(id).with_trace_capacity(cap))
                    .unwrap();
            }
            fleet.run()
        };
        let untraced = run(0);
        let traced = run(16 * 1024);
        // Tracing observes, never steers: per-session decisions are
        // byte-identical with the recorder on or off.
        assert_eq!(untraced.sessions.len(), traced.sessions.len());
        for (a, b) in untraced.sessions.iter().zip(&traced.sessions) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.digest, b.digest, "session {} digest drifted", a.id);
        }
        assert!(untraced.sessions.iter().all(|s| s.trace.is_empty()));
        assert!(traced.sessions.iter().all(|s| !s.trace.is_empty()));
        // Quantum switches were recorded as run-queue waits.
        assert!(traced
            .sessions
            .iter()
            .any(|s| s.trace.iter().any(|e| e.stage == scalo_trace::Stage::Queue)));
        // The registry export carries the per-stage latency histograms.
        assert!(traced.metrics_json.contains("trace.stage.window.span_us"));
        assert!(traced.metrics_json.contains("trace.stage.filter.span_us"));
        assert!(!untraced.metrics_json.contains("trace.stage."));
    }

    #[test]
    fn over_budget_submission_is_rejected_not_run() {
        let mut fleet = Fleet::new(FleetConfig::new(1).with_budget(8.0));
        fleet.submit(small_spec(1)).unwrap();
        assert!(
            matches!(
                fleet.submit(small_spec(2)),
                Err(AdmitError::BudgetExhausted { .. })
            ),
            "budget 8 fits one cost-8"
        );
        assert_eq!(fleet.submit_state(2), Some(SubmitState::Rejected));
        let report = fleet.run();
        assert_eq!(report.sessions.len(), 1);
        assert_eq!(report.rejected, vec![2]);
    }

    #[test]
    fn higher_priority_sheds_queued_lower_priority() {
        let mut fleet = Fleet::new(FleetConfig::new(1).with_budget(16.0));
        fleet.submit(small_spec(1).with_priority(1)).unwrap();
        fleet.submit(small_spec(2).with_priority(1)).unwrap();
        fleet.submit(small_spec(3).with_priority(7)).unwrap();
        assert_eq!(fleet.submit_state(2), Some(SubmitState::Shed));
        let report = fleet.run();
        let ids: Vec<u64> = report.sessions.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![1, 3], "newest low-priority session shed first");
        assert_eq!(report.shed, vec![2]);
    }

    #[test]
    fn cohort_mode_keeps_digests_and_records_occupancy() {
        // Three shapes: four plain sessions, two movement-mix, one
        // reliable — cohort mode must fuse [4, 2] and leave the loner
        // solo, with every decision digest identical to solo serving.
        let submit_all = |fleet: &mut Fleet| {
            for id in 0..4 {
                fleet.submit(small_spec(id)).unwrap();
            }
            for id in 4..6 {
                fleet
                    .submit(small_spec(id).with_movement_every(25))
                    .unwrap();
            }
            let mut reliable = small_spec(6);
            reliable.use_reliable_transport = true;
            fleet.submit(reliable).unwrap();
        };
        let mut solo = Fleet::new(FleetConfig::new(2).with_quantum_steps(4));
        submit_all(&mut solo);
        let solo = solo.run();
        assert!(solo.cohorts.is_empty(), "cohort mode off records no groups");

        let mut fused = Fleet::new(FleetConfig::new(2).with_quantum_steps(4).with_cohort(true));
        submit_all(&mut fused);
        let fused = fused.run();
        assert_eq!(fused.cohorts, vec![4, 2, 1], "occupancy histogram");
        assert_eq!(
            fused.cohorts.iter().sum::<usize>(),
            fused.sessions.len(),
            "group sizes cover the served set"
        );
        assert_eq!(solo.sessions.len(), fused.sessions.len());
        assert_eq!(solo.windows, fused.windows);
        for (a, b) in solo.sessions.iter().zip(&fused.sessions) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.digest, b.digest, "session {} digest drifted", a.id);
            assert_eq!(a.steps, b.steps);
        }
    }

    #[test]
    fn cohort_mode_ejects_pending_reconfigures_to_solo() {
        use scalo_core::catalog;

        // Session 1 has a scheduled cutover: it must run solo (lockstep
        // replay would desync a cohort) while its three shape-twins fuse
        // — and the cutover must still commit with digests matching a
        // solo fleet running the same schedule.
        let run = |cohort: bool| {
            let mut fleet = Fleet::new(
                FleetConfig::new(2)
                    .with_quantum_steps(4)
                    .with_cohort(cohort),
            );
            for id in 0..4 {
                fleet.submit(small_spec(id)).unwrap();
            }
            fleet.schedule_reconfigure(1, 20, catalog::MOVEMENT_MIX, None);
            fleet.run()
        };
        let solo = run(false);
        let fused = run(true);
        assert_eq!(fused.cohorts, vec![3, 1], "reconfigure-due session ejected");
        assert_eq!(fused.reconfigures.len(), 1);
        assert!(
            fused.reconfigures[0].ok,
            "{:?}",
            fused.reconfigures[0].error
        );
        for (a, b) in solo.sessions.iter().zip(&fused.sessions) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.digest, b.digest, "session {} digest drifted", a.id);
        }
    }

    #[test]
    fn query_admission_matches_spec_construction() {
        use scalo_core::catalog;

        // Every built-in app, admitted by query string, must decide
        // byte-identically to the same deployment built by hand.
        let mut reliable = small_spec(2);
        reliable.use_reliable_transport = true;
        let by_hand = [
            small_spec(1),
            reliable,
            small_spec(3).with_movement_every(25),
        ];
        let sources = [
            catalog::SEIZURE_WATCH,
            catalog::SEIZURE_RELIABLE,
            catalog::MOVEMENT_MIX,
        ];

        let mut spec_fleet = Fleet::new(FleetConfig::new(2));
        for spec in &by_hand {
            spec_fleet.submit(spec.clone()).unwrap();
        }
        let baseline = spec_fleet.run();

        let mut query_fleet = Fleet::new(FleetConfig::new(2));
        for (spec, source) in by_hand.iter().zip(sources) {
            // The base spec carries deployment knobs only; the query
            // supplies movement cadence and transport reliability.
            let base = SessionSpec::new(spec.id, spec.seed).with_duration_s(0.3);
            query_fleet.submit_query(base, source).unwrap();
        }
        let report = query_fleet.run();

        for (a, b) in baseline.sessions.iter().zip(&report.sessions) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.digest, b.digest, "session {} diverged", a.id);
        }
        assert!(report.metrics_json.contains("fleet.query_compile_us"));
        assert!(report.metrics_json.contains("fleet.query_resolve_us"));
    }

    #[test]
    fn malformed_query_is_refused_before_admission() {
        let mut fleet = Fleet::new(FleetConfig::new(1));
        let err = fleet
            .submit_query(small_spec(9), "var broken = stream.window(wsize=4ms")
            .unwrap_err();
        assert!(matches!(err, QuerySubmitError::Plan(_)));
        assert_eq!(fleet.submit_state(9), None, "nothing was admitted");
    }

    #[test]
    fn hot_reconfigure_cuts_over_mid_run() {
        use scalo_core::catalog;

        let mut fleet = Fleet::new(FleetConfig::new(1).with_quantum_steps(4));
        fleet
            .submit_query(small_spec(4), catalog::SEIZURE_WATCH)
            .unwrap();
        fleet.schedule_reconfigure(4, 20, catalog::MOVEMENT_MIX, None);
        let report = fleet.run();

        assert_eq!(report.reconfigures.len(), 1);
        let rec = &report.reconfigures[0];
        assert_eq!(rec.id, 4);
        assert!(rec.ok, "cutover failed: {:?}", rec.error);
        assert_eq!(rec.window, 20);
        assert_eq!(rec.replayed_windows, 20);
        assert!(report.metrics_json.contains("fleet.reconfigure_total"));
        assert!(report.metrics_json.contains("fleet.reconfigure_cutover_us"));
        assert!(report.to_json().contains("\"reconfigures\""));
    }

    #[test]
    fn reconfigure_digest_mismatch_rolls_back() {
        use scalo_core::catalog;

        // Pin the cutover to a digest the session will never have: the
        // reconfiguration must fail, and the session must finish with
        // decisions identical to a run that never tried.
        let mut baseline = Fleet::new(FleetConfig::new(1));
        baseline.submit(small_spec(5)).unwrap();
        let want = baseline.run().sessions[0].digest.clone();

        let mut fleet = Fleet::new(FleetConfig::new(1));
        fleet.submit(small_spec(5)).unwrap();
        fleet.schedule_reconfigure(5, 10, catalog::MOVEMENT_MIX, Some(0xdead_beef));
        let report = fleet.run();

        let rec = &report.reconfigures[0];
        assert!(!rec.ok);
        assert!(
            rec.error.as_deref().unwrap_or("").contains("digest"),
            "unexpected error: {:?}",
            rec.error
        );
        assert_eq!(
            report.sessions[0].digest, want,
            "rolled-back session must keep its old configuration"
        );
        assert!(report.metrics_json.contains("fleet.reconfigure_failed"));
    }
}
