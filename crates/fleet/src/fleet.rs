//! The fleet itself: admission at the front door, a worker pool in the
//! middle, metrics and per-session decision digests on the way out.

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionEvent};
use crate::metrics::{Counter, Histogram, MetricsRegistry};
use crate::pool::{self, PoolReport, Quantum, WorkUnit};
use scalo_core::session::{Session, SessionSpec};
use scalo_trace::SpanEvent;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Fleet configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Windows a session advances per scheduling quantum before it
    /// yields its worker.
    pub quantum_steps: usize,
    /// Admission-control budget.
    pub admission: AdmissionConfig,
}

impl FleetConfig {
    /// A fleet with `workers` threads, an 8-window quantum, and the
    /// default admission budget.
    pub fn new(workers: usize) -> Self {
        Self {
            workers,
            quantum_steps: 8,
            admission: AdmissionConfig::default(),
        }
    }

    /// Sets the scheduling quantum, in windows.
    pub fn with_quantum_steps(mut self, steps: usize) -> Self {
        assert!(steps >= 1, "quantum must make progress");
        self.quantum_steps = steps;
        self
    }

    /// Sets the admission budget.
    pub fn with_budget(mut self, budget: f64) -> Self {
        self.admission = AdmissionConfig { budget };
        self
    }
}

/// Where a submitted session ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitState {
    /// Admitted and (still) scheduled to run.
    Admitted,
    /// Refused at the front door.
    Rejected,
    /// Admitted, then evicted by a later higher-priority submission.
    Shed,
}

/// One served session's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionServing {
    /// Session id.
    pub id: u64,
    /// Admission priority.
    pub priority: u8,
    /// Windows stepped.
    pub steps: u64,
    /// Steps that overran the session's deadline.
    pub deadline_misses: u64,
    /// Wall-clock µs spent stepping this session.
    pub wall_us: u64,
    /// Simulated µs served.
    pub sim_us: u64,
    /// The deterministic decision digest
    /// ([`Session::decision_digest`]).
    pub digest: String,
    /// The session's recorded spans, oldest first (empty unless the
    /// spec enabled tracing via `SessionSpec::trace_capacity`).
    pub trace: Vec<SpanEvent>,
}

/// The full outcome of one [`Fleet::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Worker threads used.
    pub workers: usize,
    /// End-to-end wall-clock time of the run, ms.
    pub wall_ms: f64,
    /// Windows stepped across all sessions.
    pub windows: u64,
    /// Deadline misses across all sessions.
    pub deadline_misses: u64,
    /// Served sessions, by id.
    pub sessions: Vec<SessionServing>,
    /// Ids refused at submission.
    pub rejected: Vec<u64>,
    /// Ids admitted then shed.
    pub shed: Vec<u64>,
    /// The admission transition log.
    pub admission_log: Vec<AdmissionEvent>,
    /// Worker-pool accounting.
    pub pool: PoolReport,
    /// The metrics registry's JSON export (counters + histograms).
    pub metrics_json: String,
}

impl FleetReport {
    /// Fleet throughput: windows served per wall-clock second.
    pub fn windows_per_sec(&self) -> f64 {
        self.windows as f64 / (self.wall_ms / 1_000.0).max(1e-9)
    }

    /// Serialises the report as one JSON object (summary, per-session
    /// rows with FNV-1a decision fingerprints, admission log, and the
    /// full metrics export).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"workers\":{},\"wall_ms\":{:.3},\"windows\":{},\"windows_per_sec\":{:.1},\"deadline_misses\":{},\"pool\":{{\"quanta\":{},\"steals\":{}}}",
            self.workers,
            self.wall_ms,
            self.windows,
            self.windows_per_sec(),
            self.deadline_misses,
            self.pool.quanta,
            self.pool.steals,
        );
        out.push_str(",\"sessions\":[");
        for (i, s) in self.sessions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{},\"priority\":{},\"steps\":{},\"deadline_misses\":{},\"wall_us\":{},\"sim_us\":{},\"decisions_fnv\":\"{:016x}\"}}",
                s.id,
                s.priority,
                s.steps,
                s.deadline_misses,
                s.wall_us,
                s.sim_us,
                fnv1a(s.digest.as_bytes()),
            );
        }
        let _ = write!(
            out,
            "],\"rejected\":{:?},\"shed\":{:?},\"admission_events\":{},\"metrics\":{}}}",
            self.rejected,
            self.shed,
            admission_log_json(&self.admission_log),
            self.metrics_json,
        );
        out
    }
}

fn admission_log_json(log: &[AdmissionEvent]) -> String {
    let mut out = String::from("[");
    for (i, ev) in log.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match ev {
            AdmissionEvent::Admitted { id, cost } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"admitted\",\"id\":{id},\"cost\":{cost}}}"
                );
            }
            AdmissionEvent::Rejected { id, cost, headroom } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"rejected\",\"id\":{id},\"cost\":{cost},\"headroom\":{headroom}}}"
                );
            }
            AdmissionEvent::Shed { id, for_id } => {
                let _ = write!(out, "{{\"event\":\"shed\",\"id\":{id},\"for\":{for_id}}}");
            }
        }
    }
    out.push(']');
    out
}

/// 64-bit FNV-1a, for compact decision fingerprints in JSON output.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One pooled session plus its metric handles (resolved once here so
/// the step loop never takes the registry lock).
struct FleetJob {
    session: Session,
    quantum_steps: usize,
    fleet_latency: Arc<Histogram>,
    session_latency: Arc<Histogram>,
    steps: Arc<Counter>,
    misses: Arc<Counter>,
}

impl WorkUnit for FleetJob {
    fn run_quantum(&mut self) -> Quantum {
        // Close any pending run-queue gap as a `queue` span (no-op when
        // the session's recorder is disabled).
        self.session.note_scheduled();
        for _ in 0..self.quantum_steps {
            let out = self.session.step();
            self.fleet_latency.observe(out.wall_us);
            self.session_latency.observe(out.wall_us);
            self.steps.incr();
            if out.deadline_missed {
                self.misses.incr();
            }
            if out.done {
                return Quantum::Done;
            }
        }
        self.session.note_yielded();
        Quantum::Yield
    }
}

/// A multi-patient serving fleet: submit sessions, then run the
/// admitted set to completion on the worker pool.
#[derive(Debug)]
pub struct Fleet {
    cfg: FleetConfig,
    admission: AdmissionController,
    metrics: Arc<MetricsRegistry>,
    active: Vec<Session>,
    states: BTreeMap<u64, (u8, SubmitState)>,
}

impl Fleet {
    /// An empty fleet.
    pub fn new(cfg: FleetConfig) -> Self {
        assert!(cfg.workers >= 1, "need at least one worker");
        Self {
            cfg,
            admission: AdmissionController::new(cfg.admission),
            metrics: Arc::new(MetricsRegistry::new()),
            active: Vec::new(),
            states: BTreeMap::new(),
        }
    }

    /// The fleet's metrics registry.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The admission controller (budget usage, transition log).
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// Where each submitted session currently stands.
    pub fn submit_state(&self, id: u64) -> Option<SubmitState> {
        self.states.get(&id).map(|&(_, s)| s)
    }

    /// Offers a session to the fleet. On admission the session is built
    /// (recording generated, detectors trained) and queued; sessions
    /// the admission controller shed to make room are dropped from the
    /// queue. Returns whether the session was admitted.
    ///
    /// # Panics
    ///
    /// Panics if `spec.id` was already submitted.
    pub fn submit(&mut self, spec: SessionSpec) -> bool {
        assert!(
            !self.states.contains_key(&spec.id),
            "session id {} already submitted",
            spec.id
        );
        let decision = self
            .admission
            .offer(spec.id, spec.priority, spec.cost_estimate());
        if !decision.admitted {
            self.states
                .insert(spec.id, (spec.priority, SubmitState::Rejected));
            self.metrics.counter("fleet.rejected").incr();
            return false;
        }
        for victim in decision.shed {
            self.active.retain(|s| s.id() != victim);
            if let Some(st) = self.states.get_mut(&victim) {
                st.1 = SubmitState::Shed;
            }
            self.metrics.counter("fleet.shed").incr();
        }
        self.states
            .insert(spec.id, (spec.priority, SubmitState::Admitted));
        self.metrics.counter("fleet.admitted").incr();
        self.active.push(Session::new(spec));
        true
    }

    /// Runs every admitted session to completion and reports.
    pub fn run(mut self) -> FleetReport {
        let jobs: Vec<FleetJob> = self
            .active
            .drain(..)
            .map(|session| {
                let id = session.id();
                FleetJob {
                    fleet_latency: self.metrics.histogram("fleet.step_latency_us"),
                    session_latency: self
                        .metrics
                        .histogram(&format!("session.{id}.step_latency_us")),
                    steps: self.metrics.counter("fleet.steps"),
                    misses: self.metrics.counter("fleet.deadline_misses"),
                    quantum_steps: self.cfg.quantum_steps,
                    session,
                }
            })
            .collect();
        let t0 = Instant::now();
        let (done, pool_report) = pool::run_to_completion(jobs, self.cfg.workers);
        let wall_ms = t0.elapsed().as_secs_f64() * 1_000.0;

        // Per-stage histogram handles for the trace merge below, resolved
        // lazily (name formatting + registry lock once per *stage*, not
        // once per span — traced fleets drain tens of thousands of spans)
        // so an untraced run never materializes empty trace histograms.
        let mut stage_hists: Vec<Option<Arc<Histogram>>> =
            vec![None; scalo_trace::Stage::ALL.len()];
        let mut sessions: Vec<SessionServing> = done
            .into_iter()
            .map(|mut job| {
                let report = job.session.report();
                self.admission.release(report.id);
                let trace = job.session.take_trace_events();
                // Merge the session's spans into the registry as
                // per-stage latency histograms, alongside the counters
                // the step loop already feeds.
                for ev in &trace {
                    let idx = scalo_trace::Stage::ALL
                        .iter()
                        .position(|s| *s == ev.stage)
                        .expect("every span stage appears in Stage::ALL");
                    stage_hists[idx]
                        .get_or_insert_with(|| {
                            self.metrics
                                .histogram(&format!("trace.stage.{}.span_us", ev.stage.name()))
                        })
                        .observe(ev.dur_ns() / 1_000);
                }
                let rec = job.session.trace();
                self.metrics.counter("trace.spans").add(trace.len() as u64);
                self.metrics.counter("trace.dropped").add(rec.dropped());
                self.metrics
                    .counter("trace.unbalanced")
                    .add(rec.unbalanced());
                SessionServing {
                    id: report.id,
                    priority: job.session.priority(),
                    steps: report.steps,
                    deadline_misses: report.deadline_misses,
                    wall_us: report.wall_us,
                    sim_us: report.sim_us,
                    digest: job.session.decision_digest(),
                    trace,
                }
            })
            .collect();
        sessions.sort_by_key(|s| s.id);

        let by_state = |want: SubmitState| {
            self.states
                .iter()
                .filter(|(_, &(_, s))| s == want)
                .map(|(&id, _)| id)
                .collect::<Vec<u64>>()
        };
        FleetReport {
            workers: self.cfg.workers,
            wall_ms,
            windows: sessions.iter().map(|s| s.steps).sum(),
            deadline_misses: sessions.iter().map(|s| s.deadline_misses).sum(),
            sessions,
            rejected: by_state(SubmitState::Rejected),
            shed: by_state(SubmitState::Shed),
            admission_log: self.admission.log().to_vec(),
            pool: pool_report,
            metrics_json: self.metrics.to_json(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(id: u64) -> SessionSpec {
        SessionSpec::new(id, 0x100 + id).with_duration_s(0.3)
    }

    #[test]
    fn serves_a_small_fleet() {
        let mut fleet = Fleet::new(FleetConfig::new(2).with_quantum_steps(4));
        for id in 0..3 {
            assert!(fleet.submit(small_spec(id)));
        }
        let report = fleet.run();
        assert_eq!(report.sessions.len(), 3);
        assert_eq!(report.windows, 3 * 75);
        assert!(report.windows_per_sec() > 0.0);
        assert!(report.rejected.is_empty());
        assert!(report.metrics_json.contains("fleet.step_latency_us"));
        assert!(report.to_json().contains("\"decisions_fnv\""));
    }

    #[test]
    fn workspace_reuse_across_quantum_switches_keeps_digests() {
        // Each session's Workspace is warmed by its first window and
        // then carried across every quantum switch. Quantum 1 forces a
        // worker to hop sessions after every single window — maximal
        // interleaving of warm workspaces — and must still produce the
        // same decision digests as run-to-completion (quantum larger
        // than any session).
        let run = |quantum: usize| {
            let mut fleet = Fleet::new(FleetConfig::new(1).with_quantum_steps(quantum));
            for id in 0..3 {
                assert!(fleet.submit(small_spec(id)));
            }
            fleet.run()
        };
        let interleaved = run(1);
        let monolithic = run(100_000);
        assert_eq!(interleaved.sessions.len(), monolithic.sessions.len());
        for (a, b) in interleaved.sessions.iter().zip(&monolithic.sessions) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.digest, b.digest, "session {} digest drifted", a.id);
        }
    }

    #[test]
    fn traced_serving_keeps_digests_and_merges_histograms() {
        let run = |cap: usize| {
            let mut fleet = Fleet::new(FleetConfig::new(2).with_quantum_steps(3));
            for id in 0..3 {
                assert!(fleet.submit(small_spec(id).with_trace_capacity(cap)));
            }
            fleet.run()
        };
        let untraced = run(0);
        let traced = run(16 * 1024);
        // Tracing observes, never steers: per-session decisions are
        // byte-identical with the recorder on or off.
        assert_eq!(untraced.sessions.len(), traced.sessions.len());
        for (a, b) in untraced.sessions.iter().zip(&traced.sessions) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.digest, b.digest, "session {} digest drifted", a.id);
        }
        assert!(untraced.sessions.iter().all(|s| s.trace.is_empty()));
        assert!(traced.sessions.iter().all(|s| !s.trace.is_empty()));
        // Quantum switches were recorded as run-queue waits.
        assert!(traced
            .sessions
            .iter()
            .any(|s| s.trace.iter().any(|e| e.stage == scalo_trace::Stage::Queue)));
        // The registry export carries the per-stage latency histograms.
        assert!(traced.metrics_json.contains("trace.stage.window.span_us"));
        assert!(traced.metrics_json.contains("trace.stage.filter.span_us"));
        assert!(!untraced.metrics_json.contains("trace.stage."));
    }

    #[test]
    fn over_budget_submission_is_rejected_not_run() {
        let mut fleet = Fleet::new(FleetConfig::new(1).with_budget(8.0));
        assert!(fleet.submit(small_spec(1)));
        assert!(!fleet.submit(small_spec(2)), "budget 8 fits one cost-8");
        assert_eq!(fleet.submit_state(2), Some(SubmitState::Rejected));
        let report = fleet.run();
        assert_eq!(report.sessions.len(), 1);
        assert_eq!(report.rejected, vec![2]);
    }

    #[test]
    fn higher_priority_sheds_queued_lower_priority() {
        let mut fleet = Fleet::new(FleetConfig::new(1).with_budget(16.0));
        assert!(fleet.submit(small_spec(1).with_priority(1)));
        assert!(fleet.submit(small_spec(2).with_priority(1)));
        assert!(fleet.submit(small_spec(3).with_priority(7)));
        assert_eq!(fleet.submit_state(2), Some(SubmitState::Shed));
        let report = fleet.run();
        let ids: Vec<u64> = report.sessions.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![1, 3], "newest low-priority session shed first");
        assert_eq!(report.shed, vec![2]);
    }
}
