//! `scalo-fleet`: a concurrent multi-patient serving layer.
//!
//! The core crates simulate *one* patient's implant network. This crate
//! serves *many*: each patient is a [`scalo_core::session::Session`]
//! (own seed, deployment preset, and application mix — a resumable unit
//! of work), and the fleet multiplexes them over a std-only worker
//! pool:
//!
//! * [`pool`] — lock-free Chase-Lev work-stealing deques (built on
//!   `std::thread` and atomics, no locks), so one patient's slow
//!   seizure-confirmation step never stalls the rest of the fleet and
//!   idle workers steal without contending on a mutex;
//! * [`admission`] — an aggregate compute budget at the front door,
//!   degrading gracefully by shedding lowest-priority sessions first
//!   (the membership layer's eviction idiom, one level up);
//! * [`metrics`] — atomic counters and fixed-bucket latency histograms
//!   for per-session and fleet-wide step latency, deadline misses, and
//!   throughput, exported as JSON;
//! * [`fleet`] — the serving loop tying the three together;
//! * [`durable`] — write-ahead durability: admissions, per-window
//!   decision digests, and periodic checkpoints in a page-structured
//!   log (`scalo_storage::wal`), with crash recovery by deterministic
//!   re-execution and digest-verified replay;
//! * [`swap`] — resident-set management (`scalo-swap`): cold admission
//!   of 10k+ sessions over a bounded DRAM resident set, LRU eviction to
//!   a modeled NVM image tier through the single SCSS snapshot codec,
//!   priority pinning, and bounded-latency fault-in on data arrival,
//!   driven by an open-loop bursty arrival generator
//!   ([`swap::arrivals`]).
//!
//! Determinism is the load-bearing property: a session owns all of its
//! state and wall-clock timing feeds metrics only, so the same set of
//! seeded sessions produces byte-identical per-session decisions on one
//! worker or many — threading changes the interleaving, never a result.
//!
//! # Quickstart
//!
//! ```
//! use scalo_core::session::SessionSpec;
//! use scalo_fleet::{Fleet, FleetConfig};
//!
//! let mut fleet = Fleet::new(FleetConfig::new(2));
//! for id in 0..4 {
//!     fleet
//!         .submit(SessionSpec::new(id, 0xbc1 + id).with_duration_s(0.3))
//!         .unwrap();
//! }
//! let report = fleet.run();
//! assert_eq!(report.sessions.len(), 4);
//! ```

pub mod admission;
pub mod durable;
pub mod fleet;
pub mod metrics;
pub mod pool;
pub mod swap;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionEvent};
pub use durable::{DurabilityConfig, DurabilityError, FleetLogger, RecoveryReport};
pub use fleet::{
    AdmitError, DurabilitySummary, Fleet, FleetConfig, FleetReport, QuerySubmitError,
    ReconfigureRecord, SessionServing, SubmitState,
};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use pool::{PoolReport, Quantum, WorkUnit};
pub use swap::arrivals::{Arrival, ArrivalConfig, ArrivalPlan};
pub use swap::{SwapConfig, SwapFleet, SwapOutcomeState, SwapReport, SwapSessionOutcome};
