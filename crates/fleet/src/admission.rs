//! Admission control: an aggregate compute budget over the admitted
//! session set, with graceful degradation by priority.
//!
//! The fleet serves real-time sessions, so oversubscription is worse
//! than refusal: an over-budget fleet misses every patient's deadlines
//! instead of one patient's admission. The controller therefore tracks
//! each admitted session's compute cost (electrode-windows per step,
//! see `SessionSpec::cost_estimate`; refreshed from measured
//! sim-time-per-wall-time as sessions run) against a fixed budget.
//! A submission that does not fit may *shed* strictly lower-priority
//! admitted sessions — lowest priority first, newest first within a
//! priority — mirroring the membership layer's eviction idiom one level
//! up: a deterministic, logged state machine that degrades the fleet to
//! the highest-priority load it can serve.
//!
//! With `scalo-swap` the controller reasons about **two tiers**: the
//! compute budget covers only the *resident* sessions (the ones holding
//! DRAM state and eligible to step), while a separate
//! [`AdmissionConfig::admitted_capacity`] bounds the *total* admitted
//! set — resident plus swapped-to-NVM. A swapped session burns no
//! compute, so it costs admission capacity but no budget; faulting it
//! back in ([`AdmissionController::make_resident`]) is what must fit
//! the budget again.

use std::collections::BTreeMap;

/// Admission-controller configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Aggregate compute budget over the *resident* session set, in
    /// session cost units.
    pub budget: f64,
    /// Maximum total admitted sessions, resident **plus** swapped
    /// (`usize::MAX` = unbounded, the classic all-resident fleet).
    pub admitted_capacity: usize,
}

impl Default for AdmissionConfig {
    /// Room for sixteen of the default small sessions (cost 8 each),
    /// with no separate cap on the admitted set.
    fn default() -> Self {
        Self {
            budget: 128.0,
            admitted_capacity: usize::MAX,
        }
    }
}

/// One admission-control transition, for post-run analysis (the fleet
/// analogue of the membership log).
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionEvent {
    /// The session fit (possibly after shedding) and was admitted.
    Admitted {
        /// Admitted session.
        id: u64,
        /// Its cost at admission.
        cost: f64,
    },
    /// The session did not fit even after shedding every strictly
    /// lower-priority session.
    Rejected {
        /// Refused session.
        id: u64,
        /// Its cost.
        cost: f64,
        /// Budget headroom at the time, after hypothetical shedding.
        headroom: f64,
    },
    /// An admitted session was evicted to make room for `for_id`.
    Shed {
        /// Evicted session.
        id: u64,
        /// The higher-priority session it made room for.
        for_id: u64,
    },
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    priority: u8,
    cost: f64,
    /// Whether the session holds DRAM state (charged against the
    /// budget) or sits swapped on NVM (charged against capacity only).
    resident: bool,
}

/// The outcome of one [`AdmissionController::offer`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionDecision {
    /// Whether the offered session was admitted.
    pub admitted: bool,
    /// Sessions shed to make room, in eviction order.
    pub shed: Vec<u64>,
}

/// Budget-tracking admission controller for one fleet.
#[derive(Debug, Default)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    admitted: BTreeMap<u64, Entry>,
    log: Vec<AdmissionEvent>,
}

impl AdmissionController {
    /// A controller over the given budget.
    pub fn new(cfg: AdmissionConfig) -> Self {
        Self {
            cfg,
            admitted: BTreeMap::new(),
            log: Vec::new(),
        }
    }

    /// Aggregate cost of the **resident** admitted set (swapped
    /// sessions burn no compute).
    pub fn used(&self) -> f64 {
        self.admitted
            .values()
            .filter(|e| e.resident)
            .map(|e| e.cost)
            .sum()
    }

    /// Remaining budget.
    pub fn headroom(&self) -> f64 {
        self.cfg.budget - self.used()
    }

    /// Ids of the admitted sessions, ascending.
    pub fn admitted_ids(&self) -> Vec<u64> {
        self.admitted.keys().copied().collect()
    }

    /// Whether `id` is currently admitted.
    pub fn is_admitted(&self, id: u64) -> bool {
        self.admitted.contains_key(&id)
    }

    /// Total admitted sessions (resident + swapped).
    pub fn admitted_count(&self) -> usize {
        self.admitted.len()
    }

    /// Admitted sessions currently resident.
    pub fn resident_count(&self) -> usize {
        self.admitted.values().filter(|e| e.resident).count()
    }

    /// Admitted sessions currently swapped out.
    pub fn swapped_count(&self) -> usize {
        self.admitted.len() - self.resident_count()
    }

    /// Whether `id` is admitted *and* resident.
    pub fn is_resident(&self, id: u64) -> bool {
        self.admitted.get(&id).is_some_and(|e| e.resident)
    }

    /// Remaining admitted-set capacity (resident + swapped).
    pub fn capacity_headroom(&self) -> usize {
        self.cfg
            .admitted_capacity
            .saturating_sub(self.admitted.len())
    }

    /// Every admission transition so far.
    pub fn log(&self) -> &[AdmissionEvent] {
        &self.log
    }

    /// Offers a session. Admits it if it fits the remaining budget,
    /// shedding strictly lower-priority sessions (lowest priority
    /// first; newest — highest id — first within a priority) when
    /// necessary; rejects it, shedding nothing, if even that cannot
    /// make room.
    pub fn offer(&mut self, id: u64, priority: u8, cost: f64) -> AdmissionDecision {
        assert!(
            !self.admitted.contains_key(&id),
            "session id {id} already admitted"
        );
        // Plan the eviction sequence without touching state: strictly
        // lower priority *resident* sessions only (equal priority never
        // displaces — first come, first served; swapped sessions hold
        // no budget, so shedding them frees nothing), worst candidates
        // first.
        let mut candidates: Vec<(u64, Entry)> = self
            .admitted
            .iter()
            .filter(|(_, e)| e.priority < priority && e.resident)
            .map(|(&i, &e)| (i, e))
            .collect();
        candidates.sort_by(|a, b| (a.1.priority, b.0).cmp(&(b.1.priority, a.0)));

        let mut headroom = self.headroom();
        let mut to_shed = Vec::new();
        for (victim, entry) in candidates {
            if headroom >= cost {
                break;
            }
            headroom += entry.cost;
            to_shed.push(victim);
        }
        let over_capacity = self.admitted.len() - to_shed.len() >= self.cfg.admitted_capacity;
        if headroom < cost || over_capacity {
            self.log
                .push(AdmissionEvent::Rejected { id, cost, headroom });
            return AdmissionDecision {
                admitted: false,
                shed: Vec::new(),
            };
        }
        for &victim in &to_shed {
            self.admitted.remove(&victim);
            self.log.push(AdmissionEvent::Shed {
                id: victim,
                for_id: id,
            });
        }
        self.admitted.insert(
            id,
            Entry {
                priority,
                cost,
                resident: true,
            },
        );
        self.log.push(AdmissionEvent::Admitted { id, cost });
        AdmissionDecision {
            admitted: true,
            shed: to_shed,
        }
    }

    /// Admits a session directly into the **swapped** tier (the
    /// `scalo-swap` cold-admit path: the session exists only as a spec
    /// until its first arrival, so it needs admitted-set capacity but
    /// no compute budget). Returns `false`, admitting nothing, when the
    /// admitted set is at capacity. Never sheds.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already admitted.
    pub fn offer_swapped(&mut self, id: u64, priority: u8, cost: f64) -> bool {
        assert!(
            !self.admitted.contains_key(&id),
            "session id {id} already admitted"
        );
        if self.admitted.len() >= self.cfg.admitted_capacity {
            self.log.push(AdmissionEvent::Rejected {
                id,
                cost,
                headroom: self.headroom(),
            });
            return false;
        }
        self.admitted.insert(
            id,
            Entry {
                priority,
                cost,
                resident: false,
            },
        );
        self.log.push(AdmissionEvent::Admitted { id, cost });
        true
    }

    /// Moves a swapped session into the resident tier (fault-in),
    /// charging its cost against the budget. Returns `false` — leaving
    /// the session swapped — when the budget cannot take it; the caller
    /// (the swap manager) is expected to evict first. Never sheds. A
    /// no-op `true` when the session is already resident.
    pub fn make_resident(&mut self, id: u64) -> bool {
        let Some(&Entry { cost, resident, .. }) = self.admitted.get(&id) else {
            return false;
        };
        if resident {
            return true;
        }
        if self.headroom() < cost {
            return false;
        }
        self.admitted.get_mut(&id).expect("checked above").resident = true;
        true
    }

    /// Moves a resident session into the swapped tier (eviction),
    /// returning its cost to the budget. A no-op when the session is
    /// unknown or already swapped.
    pub fn make_swapped(&mut self, id: u64) {
        if let Some(e) = self.admitted.get_mut(&id) {
            e.resident = false;
        }
    }

    /// Releases a finished (or externally cancelled) session's budget.
    pub fn release(&mut self, id: u64) {
        self.admitted.remove(&id);
    }

    /// Refreshes an admitted session's cost from a measured load (e.g.
    /// windows of sim-time per wall-second); future offers see the
    /// measured value instead of the estimate.
    pub fn update_cost(&mut self, id: u64, measured_cost: f64) {
        if let Some(e) = self.admitted.get_mut(&id) {
            e.cost = measured_cost;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(budget: f64) -> AdmissionController {
        AdmissionController::new(AdmissionConfig {
            budget,
            ..AdmissionConfig::default()
        })
    }

    #[test]
    fn admits_until_budget_then_rejects_equal_priority() {
        let mut ac = controller(10.0);
        assert!(ac.offer(1, 1, 4.0).admitted);
        assert!(ac.offer(2, 1, 4.0).admitted);
        let d = ac.offer(3, 1, 4.0);
        assert!(!d.admitted);
        assert!(d.shed.is_empty(), "equal priority never sheds");
        assert_eq!(ac.admitted_ids(), vec![1, 2]);
        assert!(matches!(
            ac.log().last(),
            Some(AdmissionEvent::Rejected { id: 3, .. })
        ));
    }

    #[test]
    fn sheds_lowest_priority_newest_first() {
        let mut ac = controller(12.0);
        assert!(ac.offer(1, 1, 4.0).admitted);
        assert!(ac.offer(2, 2, 4.0).admitted);
        assert!(ac.offer(3, 1, 4.0).admitted);
        // Needs 8: must shed both priority-1 sessions, newest (3) first.
        let d = ac.offer(4, 5, 8.0);
        assert!(d.admitted);
        assert_eq!(d.shed, vec![3, 1]);
        assert_eq!(ac.admitted_ids(), vec![2, 4]);
    }

    #[test]
    fn rejection_sheds_nothing() {
        let mut ac = controller(8.0);
        assert!(ac.offer(1, 1, 4.0).admitted);
        assert!(ac.offer(2, 2, 4.0).admitted);
        // Even shedding session 1 leaves only 4 headroom < 20.
        let d = ac.offer(3, 9, 20.0);
        assert!(!d.admitted);
        assert!(d.shed.is_empty());
        assert_eq!(ac.admitted_ids(), vec![1, 2], "no collateral eviction");
    }

    #[test]
    fn swapped_tier_costs_capacity_not_budget() {
        let mut ac = AdmissionController::new(AdmissionConfig {
            budget: 8.0,
            admitted_capacity: 3,
        });
        assert!(ac.offer(1, 1, 8.0).admitted);
        // Budget is full, but the swapped tier still has capacity.
        assert!(ac.offer_swapped(2, 1, 8.0));
        assert!(ac.offer_swapped(3, 1, 8.0));
        assert_eq!((ac.resident_count(), ac.swapped_count()), (1, 2));
        assert!((ac.used() - 8.0).abs() < 1e-12, "swapped burn no budget");
        // Capacity exhausted: both admit paths refuse.
        assert!(!ac.offer_swapped(4, 1, 8.0));
        assert!(!ac.offer(5, 1, 0.0).admitted);
        assert_eq!(ac.capacity_headroom(), 0);
        assert!(matches!(
            ac.log().last(),
            Some(AdmissionEvent::Rejected { id: 5, .. })
        ));
    }

    #[test]
    fn residency_flips_charge_and_release_budget() {
        let mut ac = AdmissionController::new(AdmissionConfig {
            budget: 8.0,
            admitted_capacity: 8,
        });
        assert!(ac.offer(1, 1, 8.0).admitted);
        assert!(ac.offer_swapped(2, 1, 8.0));
        assert!(!ac.make_resident(2), "budget full: stays swapped");
        assert!(!ac.is_resident(2));
        ac.make_swapped(1);
        assert_eq!(ac.used(), 0.0);
        assert!(ac.make_resident(2), "eviction freed the budget");
        assert!(ac.is_resident(2));
        assert!(ac.make_resident(2), "already resident is a no-op true");
        // A swapped session is never a shedding candidate: the shed
        // plan reaches for resident session 2, not swapped session 1.
        let d = ac.offer(3, 9, 8.0);
        assert!(d.admitted);
        assert_eq!(d.shed, vec![2]);
        assert!(ac.is_admitted(1), "swapped session untouched by shed");
    }

    #[test]
    fn release_and_remeasure_free_budget() {
        let mut ac = controller(8.0);
        assert!(ac.offer(1, 1, 8.0).admitted);
        assert!(!ac.offer(2, 1, 8.0).admitted);
        ac.release(1);
        assert!(ac.offer(2, 1, 8.0).admitted);
        ac.update_cost(2, 2.0);
        assert!(ac.offer(3, 1, 6.0).admitted, "re-measured cost freed room");
    }
}
