//! Admission control: an aggregate compute budget over the admitted
//! session set, with graceful degradation by priority.
//!
//! The fleet serves real-time sessions, so oversubscription is worse
//! than refusal: an over-budget fleet misses every patient's deadlines
//! instead of one patient's admission. The controller therefore tracks
//! each admitted session's compute cost (electrode-windows per step,
//! see `SessionSpec::cost_estimate`; refreshed from measured
//! sim-time-per-wall-time as sessions run) against a fixed budget.
//! A submission that does not fit may *shed* strictly lower-priority
//! admitted sessions — lowest priority first, newest first within a
//! priority — mirroring the membership layer's eviction idiom one level
//! up: a deterministic, logged state machine that degrades the fleet to
//! the highest-priority load it can serve.

use std::collections::BTreeMap;

/// Admission-controller configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Aggregate compute budget, in session cost units.
    pub budget: f64,
}

impl Default for AdmissionConfig {
    /// Room for sixteen of the default small sessions (cost 8 each).
    fn default() -> Self {
        Self { budget: 128.0 }
    }
}

/// One admission-control transition, for post-run analysis (the fleet
/// analogue of the membership log).
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionEvent {
    /// The session fit (possibly after shedding) and was admitted.
    Admitted {
        /// Admitted session.
        id: u64,
        /// Its cost at admission.
        cost: f64,
    },
    /// The session did not fit even after shedding every strictly
    /// lower-priority session.
    Rejected {
        /// Refused session.
        id: u64,
        /// Its cost.
        cost: f64,
        /// Budget headroom at the time, after hypothetical shedding.
        headroom: f64,
    },
    /// An admitted session was evicted to make room for `for_id`.
    Shed {
        /// Evicted session.
        id: u64,
        /// The higher-priority session it made room for.
        for_id: u64,
    },
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    priority: u8,
    cost: f64,
}

/// The outcome of one [`AdmissionController::offer`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionDecision {
    /// Whether the offered session was admitted.
    pub admitted: bool,
    /// Sessions shed to make room, in eviction order.
    pub shed: Vec<u64>,
}

/// Budget-tracking admission controller for one fleet.
#[derive(Debug, Default)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    admitted: BTreeMap<u64, Entry>,
    log: Vec<AdmissionEvent>,
}

impl AdmissionController {
    /// A controller over the given budget.
    pub fn new(cfg: AdmissionConfig) -> Self {
        Self {
            cfg,
            admitted: BTreeMap::new(),
            log: Vec::new(),
        }
    }

    /// Aggregate cost of the admitted set.
    pub fn used(&self) -> f64 {
        self.admitted.values().map(|e| e.cost).sum()
    }

    /// Remaining budget.
    pub fn headroom(&self) -> f64 {
        self.cfg.budget - self.used()
    }

    /// Ids of the admitted sessions, ascending.
    pub fn admitted_ids(&self) -> Vec<u64> {
        self.admitted.keys().copied().collect()
    }

    /// Whether `id` is currently admitted.
    pub fn is_admitted(&self, id: u64) -> bool {
        self.admitted.contains_key(&id)
    }

    /// Every admission transition so far.
    pub fn log(&self) -> &[AdmissionEvent] {
        &self.log
    }

    /// Offers a session. Admits it if it fits the remaining budget,
    /// shedding strictly lower-priority sessions (lowest priority
    /// first; newest — highest id — first within a priority) when
    /// necessary; rejects it, shedding nothing, if even that cannot
    /// make room.
    pub fn offer(&mut self, id: u64, priority: u8, cost: f64) -> AdmissionDecision {
        assert!(
            !self.admitted.contains_key(&id),
            "session id {id} already admitted"
        );
        // Plan the eviction sequence without touching state: strictly
        // lower priority only (equal priority never displaces — first
        // come, first served), worst candidates first.
        let mut candidates: Vec<(u64, Entry)> = self
            .admitted
            .iter()
            .filter(|(_, e)| e.priority < priority)
            .map(|(&i, &e)| (i, e))
            .collect();
        candidates.sort_by(|a, b| (a.1.priority, b.0).cmp(&(b.1.priority, a.0)));

        let mut headroom = self.headroom();
        let mut to_shed = Vec::new();
        for (victim, entry) in candidates {
            if headroom >= cost {
                break;
            }
            headroom += entry.cost;
            to_shed.push(victim);
        }
        if headroom < cost {
            self.log
                .push(AdmissionEvent::Rejected { id, cost, headroom });
            return AdmissionDecision {
                admitted: false,
                shed: Vec::new(),
            };
        }
        for &victim in &to_shed {
            self.admitted.remove(&victim);
            self.log.push(AdmissionEvent::Shed {
                id: victim,
                for_id: id,
            });
        }
        self.admitted.insert(id, Entry { priority, cost });
        self.log.push(AdmissionEvent::Admitted { id, cost });
        AdmissionDecision {
            admitted: true,
            shed: to_shed,
        }
    }

    /// Releases a finished (or externally cancelled) session's budget.
    pub fn release(&mut self, id: u64) {
        self.admitted.remove(&id);
    }

    /// Refreshes an admitted session's cost from a measured load (e.g.
    /// windows of sim-time per wall-second); future offers see the
    /// measured value instead of the estimate.
    pub fn update_cost(&mut self, id: u64, measured_cost: f64) {
        if let Some(e) = self.admitted.get_mut(&id) {
            e.cost = measured_cost;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(budget: f64) -> AdmissionController {
        AdmissionController::new(AdmissionConfig { budget })
    }

    #[test]
    fn admits_until_budget_then_rejects_equal_priority() {
        let mut ac = controller(10.0);
        assert!(ac.offer(1, 1, 4.0).admitted);
        assert!(ac.offer(2, 1, 4.0).admitted);
        let d = ac.offer(3, 1, 4.0);
        assert!(!d.admitted);
        assert!(d.shed.is_empty(), "equal priority never sheds");
        assert_eq!(ac.admitted_ids(), vec![1, 2]);
        assert!(matches!(
            ac.log().last(),
            Some(AdmissionEvent::Rejected { id: 3, .. })
        ));
    }

    #[test]
    fn sheds_lowest_priority_newest_first() {
        let mut ac = controller(12.0);
        assert!(ac.offer(1, 1, 4.0).admitted);
        assert!(ac.offer(2, 2, 4.0).admitted);
        assert!(ac.offer(3, 1, 4.0).admitted);
        // Needs 8: must shed both priority-1 sessions, newest (3) first.
        let d = ac.offer(4, 5, 8.0);
        assert!(d.admitted);
        assert_eq!(d.shed, vec![3, 1]);
        assert_eq!(ac.admitted_ids(), vec![2, 4]);
    }

    #[test]
    fn rejection_sheds_nothing() {
        let mut ac = controller(8.0);
        assert!(ac.offer(1, 1, 4.0).admitted);
        assert!(ac.offer(2, 2, 4.0).admitted);
        // Even shedding session 1 leaves only 4 headroom < 20.
        let d = ac.offer(3, 9, 20.0);
        assert!(!d.admitted);
        assert!(d.shed.is_empty());
        assert_eq!(ac.admitted_ids(), vec![1, 2], "no collateral eviction");
    }

    #[test]
    fn release_and_remeasure_free_budget() {
        let mut ac = controller(8.0);
        assert!(ac.offer(1, 1, 8.0).admitted);
        assert!(!ac.offer(2, 1, 8.0).admitted);
        ac.release(1);
        assert!(ac.offer(2, 1, 8.0).admitted);
        ac.update_cost(2, 2.0);
        assert!(ac.offer(3, 1, 6.0).admitted, "re-measured cost freed room");
    }
}
