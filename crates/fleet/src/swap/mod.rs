//! `scalo-swap`: resident-set management — serving 10k+ admitted
//! sessions through a bounded resident set with NVM session swapping.
//!
//! The classic [`crate::Fleet`] keeps every admitted session hot in
//! DRAM, which caps a node at the admission budget (16 default
//! sessions). The paper's "millions of users" story is a resident-set
//! problem: most sessions are quiet most of the time, so the fleet
//! should keep only the active ones materialized and park the rest as
//! compact SCSS snapshots on the modeled NVM tier. This module does
//! exactly that:
//!
//! * **Cold admission** — [`SwapFleet::submit`] admits a session *by
//!   spec only* (no recording generated, no detectors trained): it
//!   charges admitted-set capacity, not resident budget. The expensive
//!   [`Session::new`] runs at first data arrival.
//! * **Swap-out** — under resident pressure the LRU session (by
//!   last-arrival sequence, id tie-break — never wall clock, so runs
//!   replay by seed) is serialized through the *single* SCSS codec
//!   ([`SessionSnapshot::encode_into`]) into the
//!   [`scalo_storage::image::ImageStore`], charged per page via
//!   [`NvmParams`]. Durable fleets append the **same bytes** as a WAL
//!   checkpoint ([`crate::FleetLogger::log_checkpoint_image`]), so a
//!   swapped-out session still recovers after a crash.
//! * **Priority pinning** — sessions at or above
//!   [`SwapConfig::pin_priority`] are never eviction candidates;
//!   [`SwapFleet::submit`] refuses pinned sessions that cannot be
//!   guaranteed a resident slot
//!   ([`AdmitError::PinnedResidencyExhausted`]).
//! * **Fault-in** — a swapped session's arrival reads the image back
//!   (modeled NVM read time), decodes it (SCSS checksum; seeded
//!   read-disturb faults are retried up to [`SwapConfig::fault_retries`]
//!   times and then **fail closed** — the burst is dropped, the image
//!   and the session's decisions stay intact), and restores it by
//!   deterministic re-execution on a pool worker. The end-to-end
//!   fault-in latency lands in the `fleet.swap_in_us` histogram and as
//!   a [`Stage::SwapIn`](scalo_trace::Stage) span on traced sessions.
//!
//! Arrivals come from the open-loop generator ([`arrivals`]) quantized
//! into epochs; within an epoch every arriving session's burst runs in
//! parallel on the [`crate::pool`], and the coordinator applies
//! admissions, evictions, and durability between epochs — so decisions
//! stay a pure function of each session's seed no matter how the
//! resident set churns.

pub mod arrivals;

use crate::admission::{AdmissionConfig, AdmissionController};
use crate::durable::{DurabilityConfig, DurabilityError, FleetLogger};
use crate::fleet::{AdmitError, DurabilitySummary, QuerySubmitError};
use crate::metrics::{Counter, Gauge, Histogram, MetricsRegistry};
use crate::pool::{self, PoolReport, Quantum, WorkUnit};
use arrivals::{Arrival, ArrivalPlan};
use scalo_core::plan::{resolve_budget, PlanConfig, ProgramPlan};
use scalo_core::session::{Session, SessionSpec};
use scalo_core::snapshot::{fnv1a, Fnv64, SessionSnapshot};
use scalo_core::ScaloConfig;
use scalo_storage::image::{ImageStore, ImageStoreError};
use scalo_storage::nvm::{NvmCost, NvmParams};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Swap-fleet configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwapConfig {
    /// Worker threads stepping arrival bursts.
    pub workers: usize,
    /// Maximum sessions materialized in DRAM at once.
    pub resident_budget: usize,
    /// Sessions with priority ≥ this are **pinned**: once resident,
    /// never evicted. `u8::MAX` disables pinning.
    pub pin_priority: u8,
    /// Maximum admitted sessions, resident + swapped + cold.
    pub admitted_capacity: usize,
    /// Swap-device size in 4 KB pages.
    pub image_pages: usize,
    /// NVM timing/energy parameters charged per image page.
    pub nvm: NvmParams,
    /// Seeded read-disturb fault probability per page read, ppm.
    pub fault_rate_ppm: u32,
    /// Seed for the fault schedule.
    pub fault_seed: u64,
    /// Image-read attempts per fault-in before failing closed.
    pub fault_retries: u32,
    /// Crash switch: stop serving after this many epochs, skipping the
    /// final resident checkpoints and WAL sync a clean shutdown does.
    pub halt_after_epochs: Option<usize>,
}

impl SwapConfig {
    /// A swap fleet with `workers` threads and a `resident_budget`-slot
    /// resident set: capacity for 16 Ki admitted sessions, a 64 Ki-page
    /// (256 MB) swap device, pinning at priority 200, three fault
    /// retries, fault injection off.
    pub fn new(workers: usize, resident_budget: usize) -> Self {
        Self {
            workers,
            resident_budget,
            pin_priority: 200,
            admitted_capacity: 16 * 1024,
            image_pages: 64 * 1024,
            nvm: NvmParams::default(),
            fault_rate_ppm: 0,
            fault_seed: 0,
            fault_retries: 3,
            halt_after_epochs: None,
        }
    }

    /// Sets the admitted-set capacity.
    pub fn with_admitted_capacity(mut self, capacity: usize) -> Self {
        self.admitted_capacity = capacity;
        self
    }

    /// Sets the pin threshold.
    pub fn with_pin_priority(mut self, priority: u8) -> Self {
        self.pin_priority = priority;
        self
    }

    /// Enables seeded read-disturb faults on the swap device.
    pub fn with_faults(mut self, rate_ppm: u32, seed: u64) -> Self {
        self.fault_rate_ppm = rate_ppm;
        self.fault_seed = seed;
        self
    }

    /// Sets the swap-device size, in pages.
    pub fn with_image_pages(mut self, pages: usize) -> Self {
        self.image_pages = pages;
        self
    }

    /// Arms the crash switch: serving stops after `epochs` epochs with
    /// no final checkpoints or WAL sync.
    pub fn with_halt_after_epochs(mut self, epochs: usize) -> Self {
        self.halt_after_epochs = Some(epochs);
        self
    }
}

/// Where a session's state lives right now.
enum Residency {
    /// Admitted by spec only; never built.
    Cold,
    /// Materialized in DRAM.
    Resident(Box<Session>),
    /// Parked as an SCSS image on the swap device.
    Swapped {
        /// Window cursor at swap-out.
        window: u64,
        /// Decision fingerprint at swap-out.
        decisions_fnv: u64,
    },
    /// Moved into a pool job for this epoch.
    InFlight,
    /// Ran to completion.
    Done {
        /// Final decision fingerprint.
        decisions_fnv: u64,
    },
    /// Fail-closed: a restore diverged from its snapshot digests.
    Failed,
}

/// Coordinator-side bookkeeping for one admitted session.
struct SessionState {
    spec: SessionSpec,
    pinned: bool,
    /// Logical LRU clock: the global arrival sequence number of this
    /// session's most recent arrival (never wall time).
    last_arrival_seq: u64,
    residency: Residency,
    /// Accounting mirrored from the session whenever it is in hand.
    steps: u64,
    deadline_misses: u64,
    swap_ins: u64,
    swap_outs: u64,
    /// Whether a durable fleet has logged this session's admission.
    admit_logged: bool,
}

/// One session's final standing in a [`SwapReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapOutcomeState {
    /// Never built (no arrival reached it).
    Cold,
    /// Still materialized at end of run.
    Resident,
    /// Parked on the swap device at end of run.
    Swapped,
    /// Ran to completion.
    Completed,
    /// Failed closed during a fault-in restore.
    Failed,
}

/// Per-session outcome row.
#[derive(Debug, Clone, PartialEq)]
pub struct SwapSessionOutcome {
    /// Session id.
    pub id: u64,
    /// Admission priority.
    pub priority: u8,
    /// Whether the session was pinned resident.
    pub pinned: bool,
    /// Window cursor reached (windows stepped since window 0).
    pub windows: u64,
    /// Deadline misses across its stepped windows.
    pub deadline_misses: u64,
    /// Times this session was faulted in.
    pub swap_ins: u64,
    /// Times this session was swapped out.
    pub swap_outs: u64,
    /// FNV-1a of [`Session::decision_digest`] at the cursor (0 when the
    /// session never ran).
    pub decisions_fnv: u64,
    /// Final standing.
    pub state: SwapOutcomeState,
}

/// Latency percentiles lifted from one metrics histogram.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyQuantiles {
    /// Observations.
    pub count: u64,
    /// p50, µs.
    pub p50_us: u64,
    /// p99, µs.
    pub p99_us: u64,
    /// p99.9, µs.
    pub p999_us: u64,
    /// Max, µs.
    pub max_us: u64,
}

impl LatencyQuantiles {
    fn from(h: &Histogram) -> Self {
        Self {
            count: h.count(),
            p50_us: h.quantile_us(0.50),
            p99_us: h.quantile_us(0.99),
            p999_us: h.quantile_us(0.999),
            max_us: h.max_us(),
        }
    }

    fn to_json(self) -> String {
        format!(
            "{{\"count\":{},\"p50_us\":{},\"p99_us\":{},\"p999_us\":{},\"max_us\":{}}}",
            self.count, self.p50_us, self.p99_us, self.p999_us, self.max_us
        )
    }
}

/// Deadline-miss-rate distribution across sessions that stepped.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MissRates {
    /// Fleet-wide misses / windows.
    pub overall: f64,
    /// Median per-session miss rate.
    pub p50: f64,
    /// p99 per-session miss rate.
    pub p99: f64,
    /// p99.9 per-session miss rate.
    pub p999: f64,
}

/// The full outcome of one [`SwapFleet::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct SwapReport {
    /// Worker threads used.
    pub workers: usize,
    /// Resident-set budget, sessions.
    pub resident_budget: usize,
    /// End-to-end wall time, ms.
    pub wall_ms: f64,
    /// Windows stepped across all sessions.
    pub windows: u64,
    /// Deadline misses across all sessions.
    pub deadline_misses: u64,
    /// Sessions admitted (cold or otherwise).
    pub admitted: usize,
    /// Ids refused at submission.
    pub rejected: Vec<u64>,
    /// Arrivals served (a burst actually stepped).
    pub arrivals_served: u64,
    /// Arrivals pushed to a later epoch for want of a resident slot.
    pub arrivals_deferred: u64,
    /// Arrivals for already-completed (or failed) sessions, ignored.
    pub arrivals_late: u64,
    /// Deferred arrivals dropped because no slot ever opened.
    pub arrivals_dropped: u64,
    /// Epochs served.
    pub epochs: usize,
    /// Fault-ins (image read + decode + restore).
    pub swap_ins: u64,
    /// Evictions (encode + image program).
    pub swap_outs: u64,
    /// First-arrival session builds.
    pub cold_builds: u64,
    /// Corrupt image reads that were retried.
    pub fault_retries: u64,
    /// Fault-ins that failed closed after all retries.
    pub fault_failures: u64,
    /// Read-disturb faults the seeded device injected.
    pub faults_injected: u64,
    /// Peak resident sessions.
    pub resident_peak: u64,
    /// Peak bytes of parked images.
    pub nvm_image_bytes_peak: u64,
    /// Accumulated swap-device cost.
    pub nvm: NvmCost,
    /// Fault-in latency distribution (modeled NVM read + decode +
    /// restore).
    pub swap_in_us: LatencyQuantiles,
    /// Eviction latency distribution (encode + modeled NVM program).
    pub swap_out_us: LatencyQuantiles,
    /// Per-window step latency distribution.
    pub step_us: LatencyQuantiles,
    /// Deadline-miss-rate distribution.
    pub miss_rates: MissRates,
    /// Per-session rows, by id.
    pub sessions: Vec<SwapSessionOutcome>,
    /// Fleet-wide decision fingerprint: FNV-1a over every stepped
    /// session's `(id, cursor, decisions_fnv)`, ascending by id —
    /// byte-identical across runs of the same seeds and plan.
    pub digest_fnv: u64,
    /// Pool accounting summed over every epoch.
    pub pool: PoolReport,
    /// The metrics registry's JSON export.
    pub metrics_json: String,
    /// Write-ahead-log accounting (durable fleets only).
    pub durability: Option<DurabilitySummary>,
}

impl SwapReport {
    /// Fleet throughput: windows served per wall-clock second.
    pub fn windows_per_sec(&self) -> f64 {
        self.windows as f64 / (self.wall_ms / 1_000.0).max(1e-9)
    }

    /// Sessions in a given final standing.
    pub fn count_state(&self, state: SwapOutcomeState) -> usize {
        self.sessions.iter().filter(|s| s.state == state).count()
    }

    /// Serialises the report as the `"swap"` JSON section (per-session
    /// rows summarized, not dumped — 10k sessions stay 10k struct rows,
    /// one aggregate object on disk).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"sessions\":{},\"resident_budget\":{},\"workers\":{},\"wall_ms\":{:.3},\
             \"windows\":{},\"windows_per_sec\":{:.1},\"deadline_misses\":{},\"epochs\":{}",
            self.admitted,
            self.resident_budget,
            self.workers,
            self.wall_ms,
            self.windows,
            self.windows_per_sec(),
            self.deadline_misses,
            self.epochs,
        );
        let _ = write!(
            out,
            ",\"arrivals\":{{\"served\":{},\"deferred\":{},\"late\":{},\"dropped\":{}}}",
            self.arrivals_served, self.arrivals_deferred, self.arrivals_late, self.arrivals_dropped,
        );
        let _ = write!(
            out,
            ",\"completed\":{},\"resident\":{},\"swapped\":{},\"cold\":{},\"failed\":{},\"rejected\":{}",
            self.count_state(SwapOutcomeState::Completed),
            self.count_state(SwapOutcomeState::Resident),
            self.count_state(SwapOutcomeState::Swapped),
            self.count_state(SwapOutcomeState::Cold),
            self.count_state(SwapOutcomeState::Failed),
            self.rejected.len(),
        );
        let _ = write!(
            out,
            ",\"swap_ins\":{},\"swap_outs\":{},\"cold_builds\":{},\"fault_retries\":{},\
             \"fault_failures\":{},\"faults_injected\":{}",
            self.swap_ins,
            self.swap_outs,
            self.cold_builds,
            self.fault_retries,
            self.fault_failures,
            self.faults_injected,
        );
        let _ = write!(
            out,
            ",\"resident_peak\":{},\"nvm_image_bytes_peak\":{}",
            self.resident_peak, self.nvm_image_bytes_peak,
        );
        let _ = write!(
            out,
            ",\"nvm\":{{\"time_us\":{:.1},\"energy_nj\":{:.1},\"pages_read\":{},\
             \"pages_written\":{},\"blocks_erased\":{}}}",
            self.nvm.time_us,
            self.nvm.energy_nj,
            self.nvm.pages_read,
            self.nvm.pages_written,
            self.nvm.blocks_erased,
        );
        let _ = write!(
            out,
            ",\"swap_in_us\":{},\"swap_out_us\":{},\"step_us\":{}",
            self.swap_in_us.to_json(),
            self.swap_out_us.to_json(),
            self.step_us.to_json(),
        );
        let _ = write!(
            out,
            ",\"miss_rate\":{:.6},\"miss_rate_p50\":{:.6},\"miss_rate_p99\":{:.6},\
             \"miss_rate_p999\":{:.6}",
            self.miss_rates.overall, self.miss_rates.p50, self.miss_rates.p99, self.miss_rates.p999,
        );
        let _ = write!(out, ",\"digest_fnv\":\"{:016x}\"", self.digest_fnv);
        out.push('}');
        out
    }
}

/// What one pool job does for its session this epoch.
enum JobKind {
    /// Step a burst on an already-resident session.
    Step(Box<Session>),
    /// First arrival: build the session, then step.
    Build(SessionSpec),
    /// Fault-in: restore from a decoded snapshot, then step.
    FaultIn {
        snap: Box<SessionSnapshot>,
        /// Modeled NVM read time + decode wall time already spent, µs.
        pre_us: u64,
    },
}

/// One arrival burst on the worker pool.
struct SwapJob {
    id: u64,
    kind: Option<JobKind>,
    windows: u32,
    result: Option<Result<Box<Session>, String>>,
    step_latency: Arc<Histogram>,
    swap_in_us: Arc<Histogram>,
    cold_build_us: Arc<Histogram>,
    steps: Arc<Counter>,
    misses: Arc<Counter>,
}

impl WorkUnit for SwapJob {
    fn run_quantum(&mut self) -> Quantum {
        let kind = self.kind.take().expect("a job runs exactly one quantum");
        let mut session = match kind {
            JobKind::Step(s) => s,
            JobKind::Build(spec) => {
                let t0 = Instant::now();
                let session = Box::new(Session::new(spec));
                self.cold_build_us.observe(t0.elapsed().as_micros() as u64);
                session
            }
            JobKind::FaultIn { snap, pre_us } => {
                let t0 = Instant::now();
                match Session::restore(&snap) {
                    Ok(session) => {
                        let total_us = pre_us + t0.elapsed().as_micros() as u64;
                        self.swap_in_us.observe(total_us);
                        let mut session = Box::new(session);
                        session.note_swapped_in(total_us.saturating_mul(1_000));
                        session
                    }
                    Err(e) => {
                        // Fail closed: a corrupt image beat the SCSS
                        // checksum or decisions drifted. Never serve it.
                        self.result = Some(Err(e.to_string()));
                        return Quantum::Done;
                    }
                }
            }
        };
        for _ in 0..self.windows {
            if session.is_done() {
                break;
            }
            let out = session.step();
            self.step_latency.observe(out.wall_us);
            self.steps.incr();
            if out.deadline_missed {
                self.misses.incr();
            }
            if out.done {
                break;
            }
        }
        self.result = Some(Ok(session));
        Quantum::Done
    }
}

/// The swap fleet: cold admission over a bounded resident set, LRU
/// eviction to the NVM image tier, fault-in on arrival. See the
/// [module docs](self).
pub struct SwapFleet {
    cfg: SwapConfig,
    admission: AdmissionController,
    metrics: Arc<MetricsRegistry>,
    store: ImageStore,
    states: BTreeMap<u64, SessionState>,
    rejected: Vec<u64>,
    pinned_admitted: usize,
    next_arrival_seq: u64,
    logger: Option<Arc<FleetLogger>>,
    /// Reusable SCSS encode buffer (one per fleet, not per eviction).
    image_buf: Vec<u8>,
    // Pre-resolved handles.
    resident_gauge: Arc<Gauge>,
    swapped_gauge: Arc<Gauge>,
    image_bytes_gauge: Arc<Gauge>,
    swap_in_hist: Arc<Histogram>,
    swap_out_hist: Arc<Histogram>,
    step_hist: Arc<Histogram>,
    cold_build_hist: Arc<Histogram>,
    steps_ctr: Arc<Counter>,
    misses_ctr: Arc<Counter>,
    /// Lazily resolved per-stage trace histograms, indexed by
    /// `Stage::ALL` position (same idiom as `Fleet::run`).
    stage_hists: Vec<Option<Arc<Histogram>>>,
}

impl SwapFleet {
    /// An empty swap fleet.
    pub fn new(cfg: SwapConfig) -> Self {
        assert!(cfg.workers >= 1, "need at least one worker");
        assert!(cfg.resident_budget >= 1, "need at least one resident slot");
        let metrics = Arc::new(MetricsRegistry::new());
        let store = ImageStore::new(cfg.image_pages, cfg.nvm)
            .with_faults(cfg.fault_rate_ppm, cfg.fault_seed);
        Self {
            admission: AdmissionController::new(AdmissionConfig {
                budget: cfg.resident_budget as f64,
                admitted_capacity: cfg.admitted_capacity,
            }),
            store,
            states: BTreeMap::new(),
            rejected: Vec::new(),
            pinned_admitted: 0,
            next_arrival_seq: 0,
            logger: None,
            image_buf: Vec::with_capacity(4 * 1024),
            resident_gauge: metrics.gauge("fleet.resident_sessions"),
            swapped_gauge: metrics.gauge("fleet.swapped_sessions"),
            image_bytes_gauge: metrics.gauge("fleet.nvm_image_bytes"),
            swap_in_hist: metrics.histogram("fleet.swap_in_us"),
            swap_out_hist: metrics.histogram("fleet.swap_out_us"),
            step_hist: metrics.histogram("fleet.step_latency_us"),
            cold_build_hist: metrics.histogram("fleet.cold_build_us"),
            steps_ctr: metrics.counter("fleet.steps"),
            misses_ctr: metrics.counter("fleet.deadline_misses"),
            stage_hists: vec![None; scalo_trace::Stage::ALL.len()],
            metrics,
            cfg,
        }
    }

    /// An empty durable swap fleet: admissions (at first build),
    /// swap-out checkpoints, and completions are written ahead to the
    /// log at `dcfg.dir`, so a crashed process can hand its sessions to
    /// [`crate::Fleet::recover`].
    pub fn open_durable(cfg: SwapConfig, dcfg: &DurabilityConfig) -> Result<Self, DurabilityError> {
        let mut fleet = Self::new(cfg);
        fleet.logger = Some(Arc::new(FleetLogger::open(dcfg, &fleet.metrics)?));
        Ok(fleet)
    }

    /// The fleet's metrics registry.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The admission controller (two-tier budget usage).
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// Cold-admits a session by spec: charges admitted-set capacity
    /// only — the expensive build runs at first arrival. Refusals are
    /// distinct: [`AdmitError::CapacityExhausted`] when the admitted
    /// set (resident + swapped) is full,
    /// [`AdmitError::PinnedResidencyExhausted`] when a pinned session
    /// cannot be guaranteed a resident slot,
    /// [`AdmitError::DuplicateId`] on id collision.
    pub fn submit(&mut self, spec: SessionSpec) -> Result<(), AdmitError> {
        if self.states.contains_key(&spec.id) {
            return Err(AdmitError::DuplicateId { id: spec.id });
        }
        let pinned = spec.priority >= self.cfg.pin_priority;
        if pinned && self.pinned_admitted >= self.cfg.resident_budget {
            return Err(AdmitError::PinnedResidencyExhausted {
                pinned: self.pinned_admitted,
                resident_budget: self.cfg.resident_budget,
            });
        }
        if !self.admission.offer_swapped(spec.id, spec.priority, 1.0) {
            self.rejected.push(spec.id);
            self.metrics.counter("fleet.rejected").incr();
            return Err(AdmitError::CapacityExhausted {
                admitted: self.admission.admitted_count(),
                capacity: self.cfg.admitted_capacity,
            });
        }
        if pinned {
            self.pinned_admitted += 1;
        }
        self.metrics.counter("fleet.admitted").incr();
        self.states.insert(
            spec.id,
            SessionState {
                pinned,
                last_arrival_seq: 0,
                residency: Residency::Cold,
                steps: 0,
                deadline_misses: 0,
                swap_ins: 0,
                swap_outs: 0,
                admit_logged: false,
                spec,
            },
        );
        Ok(())
    }

    /// Cold-admits a query-backed session: compiles `source`, re-solves
    /// the admission budget for the spec's deployment, binds the
    /// derived knobs onto `base`, and admits through
    /// [`SwapFleet::submit`]. The expensive session build (and thus the
    /// query-backed configuration) still happens lazily at first
    /// arrival — swap-out and fault-in round-trip the query through the
    /// snapshot codec.
    pub fn submit_query(
        &mut self,
        base: SessionSpec,
        source: &str,
    ) -> Result<(), QuerySubmitError> {
        let cfg = PlanConfig {
            channels: base.electrodes,
            seed: base.seed,
        };
        let t0 = Instant::now();
        let plan = ProgramPlan::compile(source, &cfg).map_err(QuerySubmitError::Plan)?;
        self.metrics
            .histogram("fleet.query_compile_us")
            .observe(t0.elapsed().as_micros() as u64);
        let t1 = Instant::now();
        resolve_budget(&plan, base.nodes, ScaloConfig::default().power_limit_mw)
            .map_err(QuerySubmitError::Plan)?;
        self.metrics
            .histogram("fleet.query_resolve_us")
            .observe(t1.elapsed().as_micros() as u64);
        let binding = plan.binding();
        let mut spec = base;
        spec.movement_every = binding.movement_every;
        spec.use_reliable_transport = binding.use_reliable_transport;
        spec.query = Some(plan.source().to_string());
        self.submit(spec).map_err(QuerySubmitError::Admit)
    }

    /// Serves the arrival plan epoch by epoch and reports.
    pub fn run(mut self, plan: &ArrivalPlan) -> SwapReport {
        let t0 = Instant::now();
        let served = self.metrics.counter("fleet.arrivals_served");
        let deferred_ctr = self.metrics.counter("fleet.arrivals_deferred");
        let late_ctr = self.metrics.counter("fleet.arrivals_late");
        let dropped_ctr = self.metrics.counter("fleet.arrivals_dropped");
        let mut pool_total = PoolReport {
            workers: self.cfg.workers,
            quanta: 0,
            steals: 0,
        };
        let mut deferred: Vec<Arrival> = Vec::new();
        let mut epochs_served = 0usize;
        let mut halted = false;
        let mut epoch_idx = 0usize;
        loop {
            if self.cfg.halt_after_epochs == Some(epochs_served) {
                halted = true;
                break;
            }
            // This epoch's work: last epoch's deferrals first (they are
            // older), then the plan's batch; same-session entries merge.
            let fresh = plan.epochs.get(epoch_idx).cloned().unwrap_or_default();
            if epoch_idx >= plan.epochs.len() && deferred.is_empty() {
                break;
            }
            let arrivals = merge_arrivals(std::mem::take(&mut deferred), fresh);
            epoch_idx += 1;
            if arrivals.is_empty() {
                continue;
            }
            let before_deferred = deferred.len();
            let pool_report = self.run_epoch(&arrivals, &mut deferred, &served, &late_ctr);
            epochs_served += 1;
            pool_total.quanta += pool_report.quanta;
            pool_total.steals += pool_report.steals;
            deferred_ctr.add((deferred.len() - before_deferred) as u64);
            if epoch_idx >= plan.epochs.len() && deferred.len() == arrivals.len() {
                // Drain stall: every remaining arrival needs a slot and
                // none can open (all residents pinned or arriving).
                dropped_ctr.add(deferred.len() as u64);
                deferred.clear();
                break;
            }
        }
        if !halted {
            self.clean_shutdown();
        }
        self.refresh_gauges();
        let wall_ms = t0.elapsed().as_secs_f64() * 1_000.0;
        self.build_report(wall_ms, epochs_served, pool_total, halted)
    }

    /// Serves one epoch's merged arrivals. Returns the pool report.
    fn run_epoch(
        &mut self,
        arrivals: &[Arrival],
        deferred: &mut Vec<Arrival>,
        served: &Counter,
        late: &Counter,
    ) -> PoolReport {
        let arriving: std::collections::BTreeSet<u64> =
            arrivals.iter().map(|a| a.session).collect();
        let mut jobs: Vec<SwapJob> = Vec::new();
        for &arrival in arrivals {
            let id = arrival.session;
            let Some(state) = self.states.get_mut(&id) else {
                late.incr();
                continue;
            };
            match state.residency {
                Residency::Done { .. } | Residency::Failed => {
                    late.incr();
                    continue;
                }
                Residency::InFlight => unreachable!("one merged arrival per session per epoch"),
                _ => {}
            }
            state.last_arrival_seq = self.next_arrival_seq;
            self.next_arrival_seq += 1;
            let kind = match std::mem::replace(&mut state.residency, Residency::InFlight) {
                Residency::Resident(session) => JobKind::Step(session),
                Residency::Cold => {
                    if !self.ensure_resident_slot(&arriving) {
                        self.states.get_mut(&id).expect("still admitted").residency =
                            Residency::Cold;
                        deferred.push(arrival);
                        continue;
                    }
                    let st = self.states.get_mut(&id).expect("still admitted");
                    assert!(
                        self.admission.make_resident(id),
                        "slot was just ensured for session {id}"
                    );
                    self.metrics.counter("fleet.cold_builds").incr();
                    JobKind::Build(st.spec.clone())
                }
                Residency::Swapped {
                    window,
                    decisions_fnv,
                } => {
                    if !self.ensure_resident_slot(&arriving) {
                        self.states.get_mut(&id).expect("still admitted").residency =
                            Residency::Swapped {
                                window,
                                decisions_fnv,
                            };
                        deferred.push(arrival);
                        continue;
                    }
                    match self.fault_in(id) {
                        Some((snap, pre_us)) => {
                            assert!(
                                self.admission.make_resident(id),
                                "slot was just ensured for session {id}"
                            );
                            let st = self.states.get_mut(&id).expect("still admitted");
                            st.swap_ins += 1;
                            self.metrics.counter("fleet.swap_ins").incr();
                            JobKind::FaultIn {
                                snap: Box::new(snap),
                                pre_us,
                            }
                        }
                        None => {
                            // Fail closed: burst dropped, image intact,
                            // session stays swapped at its old cursor.
                            self.metrics.counter("fleet.swap_fault_failures").incr();
                            self.states.get_mut(&id).expect("still admitted").residency =
                                Residency::Swapped {
                                    window,
                                    decisions_fnv,
                                };
                            continue;
                        }
                    }
                }
                Residency::InFlight | Residency::Done { .. } | Residency::Failed => {
                    unreachable!("filtered above")
                }
            };
            served.incr();
            jobs.push(SwapJob {
                id,
                kind: Some(kind),
                windows: arrival.windows,
                result: None,
                step_latency: Arc::clone(&self.step_hist),
                swap_in_us: Arc::clone(&self.swap_in_hist),
                cold_build_us: Arc::clone(&self.cold_build_hist),
                steps: Arc::clone(&self.steps_ctr),
                misses: Arc::clone(&self.misses_ctr),
            });
        }
        let report = if jobs.is_empty() {
            PoolReport {
                workers: self.cfg.workers,
                quanta: 0,
                steals: 0,
            }
        } else {
            let (done, report) = pool::run_to_completion(jobs, self.cfg.workers);
            for job in done {
                self.finish_job(job);
            }
            report
        };
        self.refresh_gauges();
        report
    }

    /// Reads and decodes `id`'s image, retrying seeded read faults up
    /// to the configured attempts. `None` = fail closed (image stays).
    /// Returns the snapshot and the µs already spent (modeled NVM read
    /// time across attempts + decode wall time).
    fn fault_in(&mut self, id: u64) -> Option<(SessionSnapshot, u64)> {
        let mut pre_us = 0u64;
        for attempt in 0..=self.cfg.fault_retries {
            let t0 = Instant::now();
            let (bytes, cost) = self
                .store
                .read(id)
                .expect("a swapped session always has an image");
            pre_us += cost.time_us as u64;
            let decoded = SessionSnapshot::decode(&bytes);
            pre_us += t0.elapsed().as_micros() as u64;
            match decoded {
                Ok(snap) => {
                    // The DRAM copy becomes authoritative; durable
                    // fleets still hold the WAL checkpoint.
                    self.store
                        .remove(id)
                        .expect("image present: it was just read");
                    return Some((snap, pre_us));
                }
                Err(_) if attempt < self.cfg.fault_retries => {
                    self.metrics.counter("fleet.swap_fault_retries").incr();
                }
                Err(_) => {}
            }
        }
        None
    }

    /// Makes sure a resident slot is free, evicting the LRU
    /// non-pinned, non-arriving resident if needed. `false` = no slot.
    fn ensure_resident_slot(&mut self, arriving: &std::collections::BTreeSet<u64>) -> bool {
        if self.admission.resident_count() < self.cfg.resident_budget {
            return true;
        }
        let victim = self
            .states
            .iter()
            .filter(|(id, st)| {
                matches!(st.residency, Residency::Resident(_))
                    && !st.pinned
                    && !arriving.contains(id)
            })
            .min_by_key(|(id, st)| (st.last_arrival_seq, **id))
            .map(|(&id, _)| id);
        match victim {
            Some(id) => self.swap_out(id),
            None => false,
        }
    }

    /// Evicts resident session `id`: trace drained, snapshot encoded
    /// once, image programmed (and WAL-checkpointed from the same
    /// bytes), session dropped. `false` when the swap device is full.
    fn swap_out(&mut self, id: u64) -> bool {
        let state = self.states.get_mut(&id).expect("eviction victim exists");
        let Residency::Resident(mut session) =
            std::mem::replace(&mut state.residency, Residency::InFlight)
        else {
            unreachable!("only resident sessions are evicted");
        };
        let t0 = Instant::now();
        let snap = session.snapshot();
        let mut buf = std::mem::take(&mut self.image_buf);
        snap.encode_into(&mut buf);
        let put = self.store.put(id, &buf);
        let cost = match put {
            Ok(cost) => cost,
            Err(ImageStoreError::Full { .. }) => {
                // Nowhere to park it: keep it resident and tell the
                // caller no slot opened.
                self.metrics.counter("fleet.swap_device_full").incr();
                self.image_buf = buf;
                self.states.get_mut(&id).expect("still admitted").residency =
                    Residency::Resident(session);
                return false;
            }
            Err(e) => unreachable!("swap-out put cannot fail with {e}"),
        };
        if let Some(logger) = &self.logger {
            // A session is only resident after `finish_job`, which has
            // already logged its admission — the checkpoint alone keeps
            // recovery whole.
            if let Err(e) = logger.log_checkpoint_image(id, &buf) {
                logger.poison(e);
            }
        }
        self.image_buf = buf;
        let swap_us = t0.elapsed().as_micros() as u64 + cost.time_us as u64;
        session.note_swapped_out(swap_us.saturating_mul(1_000));
        let events = session.take_trace_events();
        self.merge_trace(&events);
        drop(session);
        self.swap_out_hist.observe(swap_us);
        self.metrics.counter("fleet.swap_outs").incr();
        self.admission.make_swapped(id);
        let state = self.states.get_mut(&id).expect("still admitted");
        state.swap_outs += 1;
        state.steps = snap.steps;
        state.deadline_misses = snap.deadline_misses;
        state.residency = Residency::Swapped {
            window: snap.window,
            decisions_fnv: snap.decisions_fnv,
        };
        true
    }

    /// Puts a finished pool job's session back into the state machine.
    fn finish_job(&mut self, mut job: SwapJob) {
        let id = job.id;
        match job.result.take().expect("job ran") {
            Ok(mut session) => {
                let report = session.report();
                let done = session.is_done();
                let state = self.states.get_mut(&id).expect("in-flight session");
                state.steps = report.steps;
                state.deadline_misses = report.deadline_misses;
                let needs_admit = self.logger.is_some() && !state.admit_logged;
                if needs_admit {
                    if let Some(logger) = &self.logger {
                        if let Err(e) = logger.log_admit(&session) {
                            logger.poison(e);
                        }
                    }
                    self.states.get_mut(&id).expect("in-flight").admit_logged = true;
                }
                if done {
                    let fnv = fnv1a(session.decision_digest().as_bytes());
                    if let Some(logger) = &self.logger {
                        if let Err(e) = logger.log_done(id, fnv) {
                            logger.poison(e);
                        }
                    }
                    let events = session.take_trace_events();
                    self.merge_trace(&events);
                    self.admission.release(id);
                    let state = self.states.get_mut(&id).expect("in-flight");
                    if state.pinned {
                        self.pinned_admitted -= 1;
                    }
                    state.residency = Residency::Done { decisions_fnv: fnv };
                    self.metrics.counter("fleet.completed").incr();
                } else {
                    self.states.get_mut(&id).expect("in-flight").residency =
                        Residency::Resident(session);
                }
            }
            Err(msg) => {
                // Restore diverged from its digests: fail closed.
                self.metrics.counter("fleet.swap_fault_failures").incr();
                self.metrics.counter("fleet.restore_failures").incr();
                let _ = msg;
                self.admission.release(id);
                let state = self.states.get_mut(&id).expect("in-flight session");
                if state.pinned {
                    self.pinned_admitted -= 1;
                }
                state.residency = Residency::Failed;
            }
        }
    }

    /// Clean shutdown: durable fleets checkpoint every resident
    /// unfinished session and sync the log tail.
    fn clean_shutdown(&mut self) {
        let Some(logger) = self.logger.clone() else {
            return;
        };
        for (&id, state) in &mut self.states {
            if let Residency::Resident(session) = &state.residency {
                let result = if state.admit_logged {
                    logger.log_checkpoint(session)
                } else {
                    logger.log_admit(session)
                };
                state.admit_logged = true;
                if let Err(e) = result {
                    logger.poison(e);
                    break;
                }
                let _ = id;
            }
        }
        if let Err(e) = logger.finish() {
            logger.poison(e);
        }
    }

    /// Merges drained trace spans into per-stage latency histograms
    /// (same lazy-resolution idiom as `Fleet::run`).
    fn merge_trace(&mut self, events: &[scalo_trace::SpanEvent]) {
        if events.is_empty() {
            return;
        }
        for ev in events {
            let Some(idx) = scalo_trace::Stage::ALL.iter().position(|s| *s == ev.stage) else {
                continue;
            };
            self.stage_hists[idx]
                .get_or_insert_with(|| {
                    self.metrics
                        .histogram(&format!("trace.stage.{}.span_us", ev.stage.name()))
                })
                .observe(ev.dur_ns() / 1_000);
        }
        self.metrics.counter("trace.spans").add(events.len() as u64);
    }

    fn refresh_gauges(&self) {
        self.resident_gauge
            .set(self.admission.resident_count() as u64);
        self.swapped_gauge.set(self.store.len() as u64);
        self.image_bytes_gauge.set(self.store.bytes_stored());
    }

    fn build_report(
        self,
        wall_ms: f64,
        epochs: usize,
        pool: PoolReport,
        halted: bool,
    ) -> SwapReport {
        let mut sessions: Vec<SwapSessionOutcome> = Vec::with_capacity(self.states.len());
        let mut digest = Fnv64::new();
        for (&id, state) in &self.states {
            let (outcome, decisions_fnv) = match &state.residency {
                Residency::Cold => (SwapOutcomeState::Cold, 0),
                Residency::Resident(session) => (
                    SwapOutcomeState::Resident,
                    fnv1a(session.decision_digest().as_bytes()),
                ),
                Residency::Swapped { decisions_fnv, .. } => {
                    (SwapOutcomeState::Swapped, *decisions_fnv)
                }
                Residency::Done { decisions_fnv } => (SwapOutcomeState::Completed, *decisions_fnv),
                Residency::Failed => (SwapOutcomeState::Failed, 0),
                Residency::InFlight => unreachable!("no jobs in flight after run"),
            };
            if state.steps > 0 && outcome != SwapOutcomeState::Failed {
                digest.write_u64(id);
                digest.write_u64(state.steps);
                digest.write_u64(decisions_fnv);
            }
            sessions.push(SwapSessionOutcome {
                id,
                priority: state.spec.priority,
                pinned: state.pinned,
                windows: state.steps,
                deadline_misses: state.deadline_misses,
                swap_ins: state.swap_ins,
                swap_outs: state.swap_outs,
                decisions_fnv,
                state: outcome,
            });
        }
        let mut rates: Vec<f64> = sessions
            .iter()
            .filter(|s| s.windows > 0)
            .map(|s| s.deadline_misses as f64 / s.windows as f64)
            .collect();
        rates.sort_by(f64::total_cmp);
        let rate_q = |q: f64| -> f64 {
            if rates.is_empty() {
                return 0.0;
            }
            let rank = ((q * rates.len() as f64).ceil() as usize).clamp(1, rates.len());
            rates[rank - 1]
        };
        let windows: u64 = sessions.iter().map(|s| s.windows).sum();
        let deadline_misses: u64 = sessions.iter().map(|s| s.deadline_misses).sum();
        let counter = |name: &str| self.metrics.counter(name).get();
        let durability = self.logger.as_ref().map(|logger| {
            let stats = logger.stats();
            DurabilitySummary {
                records: stats.records,
                appended_bytes: stats.appended_bytes,
                padding_bytes: stats.padding_bytes,
                pages_written: stats.pages_written,
                fsyncs: stats.fsyncs,
                segments: stats.segments,
                nvm_time_us: logger.cost().time_us,
                clean_shutdown: !halted,
                error: logger.error_string(),
            }
        });
        SwapReport {
            workers: self.cfg.workers,
            resident_budget: self.cfg.resident_budget,
            wall_ms,
            windows,
            deadline_misses,
            admitted: self.states.len(),
            rejected: self.rejected.clone(),
            arrivals_served: counter("fleet.arrivals_served"),
            arrivals_deferred: counter("fleet.arrivals_deferred"),
            arrivals_late: counter("fleet.arrivals_late"),
            arrivals_dropped: counter("fleet.arrivals_dropped"),
            epochs,
            swap_ins: counter("fleet.swap_ins"),
            swap_outs: counter("fleet.swap_outs"),
            cold_builds: counter("fleet.cold_builds"),
            fault_retries: counter("fleet.swap_fault_retries"),
            fault_failures: counter("fleet.swap_fault_failures"),
            faults_injected: self.store.faults_injected(),
            resident_peak: self.resident_gauge.peak(),
            nvm_image_bytes_peak: self.image_bytes_gauge.peak(),
            nvm: self.store.cost(),
            swap_in_us: LatencyQuantiles::from(&self.swap_in_hist),
            swap_out_us: LatencyQuantiles::from(&self.swap_out_hist),
            step_us: LatencyQuantiles::from(&self.step_hist),
            miss_rates: MissRates {
                overall: if windows == 0 {
                    0.0
                } else {
                    deadline_misses as f64 / windows as f64
                },
                p50: rate_q(0.50),
                p99: rate_q(0.99),
                p999: rate_q(0.999),
            },
            sessions,
            digest_fnv: digest.finish(),
            pool,
            metrics_json: self.metrics.to_json(),
            durability,
        }
    }
}

/// Concatenates deferred (older) and fresh arrivals, merging
/// same-session entries into one bigger burst.
fn merge_arrivals(deferred: Vec<Arrival>, fresh: Vec<Arrival>) -> Vec<Arrival> {
    if deferred.is_empty() {
        return fresh;
    }
    let mut out: Vec<Arrival> = deferred;
    let mut index: BTreeMap<u64, usize> = out
        .iter()
        .enumerate()
        .map(|(i, a)| (a.session, i))
        .collect();
    for a in fresh {
        match index.get(&a.session) {
            Some(&i) => {
                out[i].windows = out[i].windows.saturating_add(a.windows);
                out[i].at_us = out[i].at_us.min(a.at_us);
            }
            None => {
                index.insert(a.session, out.len());
                out.push(a);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalo_storage::wal::{WalRecord, WalScan};
    use std::path::PathBuf;

    fn wal_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("scalo-swap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// The dedup satellite: the bytes the swap manager parks on the
    /// image tier and the WAL checkpoint it appends for the same
    /// session come from ONE `SessionSnapshot::encode_into` call, so
    /// they are byte-identical — there is no second encoder to drift.
    #[test]
    fn swap_image_and_wal_checkpoint_are_byte_identical() {
        let dir = wal_dir("imagewal");
        let dcfg = DurabilityConfig::new(&dir);
        let mut fleet = SwapFleet::open_durable(SwapConfig::new(1, 2), &dcfg).unwrap();
        fleet
            .submit(SessionSpec::new(7, 0xabc).with_duration_s(0.4))
            .unwrap();
        let served = fleet.metrics.counter("fleet.arrivals_served");
        let late = fleet.metrics.counter("fleet.arrivals_late");
        let arrivals = [Arrival {
            at_us: 0,
            session: 7,
            windows: 23,
        }];
        let mut deferred = Vec::new();
        fleet.run_epoch(&arrivals, &mut deferred, &served, &late);
        assert!(deferred.is_empty());
        assert!(fleet.swap_out(7), "eviction of a resident session");

        let (image, _) = fleet.store.read(7).unwrap();
        let snap = SessionSnapshot::decode(&image).expect("swap image is valid SCSS");
        assert_eq!(snap.steps, 23, "evicted at the burst boundary");

        let scan = WalScan::open(&dir).unwrap();
        let checkpoint = scan
            .records
            .iter()
            .find_map(|r| match r {
                WalRecord::Checkpoint {
                    session: 7,
                    snapshot,
                } => Some(snapshot.clone()),
                _ => None,
            })
            .expect("swap-out appends a WAL checkpoint");
        assert_eq!(checkpoint, image, "swap image and WAL checkpoint drifted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_arrivals_sums_bursts_and_keeps_order() {
        let a = |s: u64, w: u32, t: u64| Arrival {
            at_us: t,
            session: s,
            windows: w,
        };
        let merged = merge_arrivals(
            vec![a(1, 4, 10), a(2, 6, 11)],
            vec![a(2, 5, 90), a(3, 1, 95)],
        );
        assert_eq!(merged, vec![a(1, 4, 10), a(2, 11, 11), a(3, 1, 95)]);
        assert_eq!(merge_arrivals(vec![], vec![a(9, 2, 0)]), vec![a(9, 2, 0)]);
    }

    #[test]
    fn submit_distinguishes_capacity_and_pinned_refusals() {
        let cfg = SwapConfig::new(1, 2).with_admitted_capacity(3);
        let mut fleet = SwapFleet::new(cfg);
        let spec = |id: u64, prio: u8| {
            SessionSpec::new(id, 0x100 + id)
                .with_duration_s(0.1)
                .with_priority(prio)
        };
        fleet.submit(spec(1, 255)).unwrap();
        fleet.submit(spec(2, 201)).unwrap();
        // Both resident slots are spoken for by pinned sessions.
        assert!(matches!(
            fleet.submit(spec(3, 255)),
            Err(AdmitError::PinnedResidencyExhausted {
                pinned: 2,
                resident_budget: 2
            })
        ));
        // Unpinned sessions still fit — until the admitted set is full.
        fleet.submit(spec(3, 1)).unwrap();
        assert!(matches!(
            fleet.submit(spec(4, 1)),
            Err(AdmitError::CapacityExhausted {
                admitted: 3,
                capacity: 3
            })
        ));
        assert!(matches!(
            fleet.submit(spec(2, 1)),
            Err(AdmitError::DuplicateId { id: 2 })
        ));
    }
}
