//! The open-loop load generator: seeded bursty/Poisson arrivals over
//! thousands of sessions.
//!
//! Each session is an independent Poisson process — its first arrival
//! lands uniformly inside one mean gap (so a cold fleet ramps instead
//! of stampeding), and subsequent arrivals follow exponential
//! inter-arrival gaps. A seeded **hot fraction** of sessions arrives
//! [`ArrivalConfig::hot_speedup`]× more often; the rest form the long
//! tail that goes quiet between bursts — exactly the skew a resident
//! set exploits. Arrivals are quantized into **epochs** of
//! [`ArrivalConfig::epoch_us`]: the swap fleet serves one epoch's
//! arrivals as a parallel batch, and multiple arrivals by one session
//! inside one epoch merge into a single larger burst.
//!
//! Everything is a pure function of [`ArrivalConfig::seed`] — the plan
//! never reads a clock, so a run is replayable by seed alone.

/// One data arrival: at `at_us`, `session`'s implant has `windows`
/// windows ready to serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival time on the open-loop clock, µs.
    pub at_us: u64,
    /// The arriving session.
    pub session: u64,
    /// Windows of work this arrival carries.
    pub windows: u32,
}

/// Load-generator knobs. See the [module docs](self) for the model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalConfig {
    /// Number of sessions (ids `base_id .. base_id + sessions`).
    pub sessions: u64,
    /// First session id.
    pub base_id: u64,
    /// Open-loop horizon, µs: no arrival lands at or past it.
    pub horizon_us: u64,
    /// Epoch (batch) granularity, µs.
    pub epoch_us: u64,
    /// Mean inter-arrival gap per cold session, µs.
    pub mean_gap_us: u64,
    /// Windows each arrival carries.
    pub burst_windows: u32,
    /// Fraction of sessions that are hot (arrive `hot_speedup`× more
    /// often), in `0.0..=1.0`.
    pub hot_fraction: f64,
    /// How much shorter a hot session's mean gap is.
    pub hot_speedup: u64,
    /// Seed for the whole plan.
    pub seed: u64,
}

impl ArrivalConfig {
    /// A plan over `sessions` sessions starting at id 0: 1 s horizon,
    /// 50 ms epochs, 400 ms mean gaps, 12-window bursts, a 10% hot
    /// fraction arriving 8× as often.
    pub fn new(sessions: u64, seed: u64) -> Self {
        Self {
            sessions,
            base_id: 0,
            horizon_us: 1_000_000,
            epoch_us: 50_000,
            mean_gap_us: 400_000,
            burst_windows: 12,
            hot_fraction: 0.1,
            hot_speedup: 8,
            seed,
        }
    }
}

/// A generated arrival schedule, already quantized into epochs.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalPlan {
    /// Arrivals per epoch, each epoch sorted by `(at_us, session)`,
    /// with at most one (merged) arrival per session per epoch.
    pub epochs: Vec<Vec<Arrival>>,
    /// Total merged arrivals across all epochs.
    pub total_arrivals: usize,
    /// The epoch granularity the plan was quantized at, µs.
    pub epoch_us: u64,
}

impl ArrivalPlan {
    /// Generates the plan for `cfg`. Deterministic: a pure function of
    /// the config.
    ///
    /// # Panics
    ///
    /// Panics if the horizon, epoch, mean gap, hot speed-up, or burst
    /// size is zero.
    pub fn generate(cfg: &ArrivalConfig) -> Self {
        assert!(cfg.horizon_us > 0, "horizon must be positive");
        assert!(cfg.epoch_us > 0, "epoch must be positive");
        assert!(cfg.mean_gap_us > 0, "mean gap must be positive");
        assert!(cfg.hot_speedup > 0, "hot speed-up must be positive");
        assert!(cfg.burst_windows > 0, "a burst must carry work");
        let n_epochs = (cfg.horizon_us.div_ceil(cfg.epoch_us)) as usize;
        let mut epochs: Vec<Vec<Arrival>> = vec![Vec::new(); n_epochs];
        let mut total = 0usize;
        for s in 0..cfg.sessions {
            let id = cfg.base_id + s;
            // An independent RNG stream per session, so adding sessions
            // never perturbs existing schedules.
            let mut rng = cfg.seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let hot = unit_f64(&mut rng) < cfg.hot_fraction;
            let gap = if hot {
                (cfg.mean_gap_us / cfg.hot_speedup).max(1)
            } else {
                cfg.mean_gap_us
            };
            // Ramp-in: first arrival uniform within one mean gap.
            let mut t = (unit_f64(&mut rng) * gap as f64) as u64;
            let mut last_epoch = usize::MAX;
            while t < cfg.horizon_us {
                let epoch = (t / cfg.epoch_us) as usize;
                if epoch == last_epoch {
                    // Same epoch: merge into the session's pending
                    // arrival (one fault-in serves the bigger burst).
                    let merged = epochs[epoch]
                        .iter_mut()
                        .rfind(|a| a.session == id)
                        .expect("merged arrival was just pushed");
                    merged.windows = merged.windows.saturating_add(cfg.burst_windows);
                } else {
                    epochs[epoch].push(Arrival {
                        at_us: t,
                        session: id,
                        windows: cfg.burst_windows,
                    });
                    total += 1;
                    last_epoch = epoch;
                }
                // Exponential inter-arrival gap, at least 1 µs so the
                // process always advances.
                let exp = -(1.0 - unit_f64(&mut rng)).ln();
                t += ((exp * gap as f64) as u64).max(1);
            }
        }
        for epoch in &mut epochs {
            epoch.sort_by_key(|a| (a.at_us, a.session));
        }
        Self {
            epochs,
            total_arrivals: total,
            epoch_us: cfg.epoch_us,
        }
    }

    /// A plan containing only the first `n` epochs (for crash-recovery
    /// experiments that stop serving mid-schedule).
    pub fn truncated(&self, n: usize) -> Self {
        Self {
            epochs: self.epochs[..n.min(self.epochs.len())].to_vec(),
            total_arrivals: self.epochs[..n.min(self.epochs.len())]
                .iter()
                .map(Vec::len)
                .sum(),
            epoch_us: self.epoch_us,
        }
    }

    /// Total windows of work across every arrival.
    pub fn total_windows(&self) -> u64 {
        self.epochs
            .iter()
            .flatten()
            .map(|a| u64::from(a.windows))
            .sum()
    }
}

/// SplitMix64 step.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)`.
fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn plan_is_deterministic_per_seed() {
        let cfg = ArrivalConfig::new(200, 0xA11);
        let a = ArrivalPlan::generate(&cfg);
        let b = ArrivalPlan::generate(&cfg);
        assert_eq!(a, b);
        let c = ArrivalPlan::generate(&ArrivalConfig::new(200, 0xA12));
        assert_ne!(a, c, "a different seed reshuffles the schedule");
        assert!(a.total_arrivals > 0);
    }

    #[test]
    fn epochs_are_sorted_and_merged() {
        let plan = ArrivalPlan::generate(&ArrivalConfig::new(500, 7));
        for (i, epoch) in plan.epochs.iter().enumerate() {
            let mut seen = BTreeMap::new();
            for a in epoch {
                assert_eq!(
                    (a.at_us / plan.epoch_us) as usize,
                    i,
                    "arrival quantized into its epoch"
                );
                assert!(
                    seen.insert(a.session, a.at_us).is_none(),
                    "one merged arrival per session per epoch"
                );
            }
            let mut sorted = epoch.clone();
            sorted.sort_by_key(|a| (a.at_us, a.session));
            assert_eq!(&sorted, epoch);
        }
        assert_eq!(
            plan.total_arrivals,
            plan.epochs.iter().map(Vec::len).sum::<usize>()
        );
    }

    #[test]
    fn hot_sessions_arrive_more_often() {
        let cfg = ArrivalConfig {
            sessions: 2_000,
            hot_fraction: 0.1,
            ..ArrivalConfig::new(2_000, 99)
        };
        let plan = ArrivalPlan::generate(&cfg);
        let mut per_session: BTreeMap<u64, u64> = BTreeMap::new();
        for a in plan.epochs.iter().flatten() {
            *per_session.entry(a.session).or_default() += u64::from(a.windows);
        }
        let mut loads: Vec<u64> = per_session.values().copied().collect();
        loads.sort_unstable();
        // The top decile (the hot sessions) carries far more work than
        // the median session.
        let median = loads[loads.len() / 2];
        let p95 = loads[loads.len() * 95 / 100];
        assert!(
            p95 >= median * 3,
            "hot skew missing: median {median}, p95 {p95}"
        );
    }

    #[test]
    fn truncation_keeps_a_prefix() {
        let plan = ArrivalPlan::generate(&ArrivalConfig::new(100, 1));
        let cut = plan.truncated(3);
        assert_eq!(cut.epochs.len(), 3);
        assert_eq!(cut.epochs[..], plan.epochs[..3]);
        assert_eq!(
            cut.total_arrivals,
            cut.epochs.iter().map(Vec::len).sum::<usize>()
        );
    }
}
