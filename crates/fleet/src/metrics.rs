//! Lightweight serving metrics: named counters, gauges, and
//! fixed-bucket latency histograms, exported as JSON.
//!
//! The registry is the fleet's only shared-mutable state on the hot
//! path, so it is built from atomics: workers record a step with two
//! relaxed fetch-adds and no locking. Registration (name → handle) is
//! behind a mutex, but jobs resolve their handles once at construction
//! and never touch the maps while stepping. `BTreeMap` keeps the JSON
//! export deterministically ordered.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time level that can go up and down (resident sessions,
/// swapped sessions, NVM image bytes). Unlike a [`Counter`] it is not
/// monotone; `set` overwrites, `add`/`sub` adjust. `sub` saturates at
/// zero rather than wrapping so a racy decrement cannot report 2^64.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    /// High-water mark of every value ever set (peak occupancy).
    peak: AtomicU64,
}

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.peak.fetch_max(v, Ordering::Relaxed);
    }

    /// Raises the gauge by `n`.
    pub fn add(&self, n: u64) {
        let v = self.value.fetch_add(n, Ordering::Relaxed) + n;
        self.peak.fetch_max(v, Ordering::Relaxed);
    }

    /// Lowers the gauge by `n`, saturating at zero.
    pub fn sub(&self, n: u64) {
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// The current level.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The highest level ever held.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// Upper bounds (µs, inclusive) of the latency buckets. The last bucket
/// is open-ended; the spread covers sub-window steps (tens of µs)
/// through badly overrun steps (tenths of a second).
pub const LATENCY_BOUNDS_US: [u64; 12] = [
    50,
    100,
    200,
    500,
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    u64::MAX,
];

/// A fixed-bucket latency histogram over [`LATENCY_BOUNDS_US`].
#[derive(Debug, Default)]
pub struct Histogram {
    counts: [AtomicU64; LATENCY_BOUNDS_US.len()],
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Histogram {
    /// Records one observation in µs.
    pub fn observe(&self, us: u64) {
        let bucket = LATENCY_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(LATENCY_BOUNDS_US.len() - 1);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observations, µs.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Largest observation, µs.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Mean observation, µs (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us() as f64 / n as f64
        }
    }

    /// Per-bucket counts, in [`LATENCY_BOUNDS_US`] order.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Upper bound (µs) of the bucket containing quantile `q` in 0..=1
    /// (the exact max for the open-ended last bucket; 0 when empty).
    pub fn quantile_us(&self, q: f64) -> u64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == counts.len() - 1 {
                    self.max_us()
                } else {
                    LATENCY_BOUNDS_US[i]
                };
            }
        }
        self.max_us()
    }

    fn to_json(&self) -> String {
        let counts = self.bucket_counts();
        let bounds: Vec<String> = LATENCY_BOUNDS_US
            .iter()
            .map(|&b| {
                if b == u64::MAX {
                    "null".to_string() // open-ended
                } else {
                    b.to_string()
                }
            })
            .collect();
        format!(
            "{{\"bounds_us\":[{}],\"counts\":[{}],\"count\":{},\"sum_us\":{},\"max_us\":{},\"mean_us\":{:.1},\"p50_us\":{},\"p99_us\":{}}}",
            bounds.join(","),
            counts
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(","),
            self.count(),
            self.sum_us(),
            self.max_us(),
            self.mean_us(),
            self.quantile_us(0.50),
            self.quantile_us(0.99),
        )
    }
}

/// The fleet's metric registry: names to shared counter/histogram
/// handles.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    ///
    /// Poisoned registry locks are neutralized (`into_inner`): the maps
    /// only ever grow by inserting `Arc`s, so a panic in another thread
    /// cannot leave them half-updated, and observability should keep
    /// working while that panic propagates.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Serialises every metric as one JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        let counters = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        let gauges = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        let histograms = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::from("{\"counters\":{");
        for (i, (name, c)) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(name), c.get());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, g)) in gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"value\":{},\"peak\":{}}}",
                json_string(name),
                g.get(),
                g.peak()
            );
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(name), h.to_json());
        }
        out.push_str("}}");
        out
    }
}

/// Quotes and escapes `s` as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("fleet.steps");
        c.incr();
        c.add(4);
        assert_eq!(reg.counter("fleet.steps").get(), 5);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        for us in [10, 60, 60, 150, 900, 40_000] {
            h.observe(us);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max_us(), 40_000);
        assert_eq!(h.sum_us(), 10 + 60 + 60 + 150 + 900 + 40_000);
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 1); // ≤50
        assert_eq!(counts[1], 2); // ≤100
        assert_eq!(counts[2], 1); // ≤200
        assert_eq!(counts[4], 1); // ≤1000
        assert_eq!(counts[9], 1); // ≤50_000
        assert_eq!(h.quantile_us(0.5), 100);
        assert_eq!(h.quantile_us(1.0), 50_000);
    }

    #[test]
    fn overflow_bucket_reports_true_max() {
        let h = Histogram::default();
        h.observe(10_000_000);
        assert_eq!(h.quantile_us(0.99), 10_000_000);
    }

    #[test]
    fn gauges_set_add_sub_and_peak() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("fleet.resident_sessions");
        g.set(5);
        g.add(3);
        g.sub(6);
        assert_eq!(g.get(), 2);
        assert_eq!(g.peak(), 8);
        g.sub(100);
        assert_eq!(g.get(), 0, "sub saturates at zero");
        assert_eq!(reg.gauge("fleet.resident_sessions").get(), 0);
    }

    #[test]
    fn json_export_is_wellformed_and_ordered() {
        let reg = MetricsRegistry::new();
        reg.counter("b.steps").add(2);
        reg.counter("a.steps").add(1);
        reg.gauge("fleet.swapped_sessions").set(7);
        reg.histogram("lat").observe(75);
        let json = reg.to_json();
        assert!(json.starts_with("{\"counters\":{\"a.steps\":1,\"b.steps\":2}"));
        assert!(json.contains("\"gauges\":{\"fleet.swapped_sessions\":{\"value\":7,\"peak\":7}}"));
        assert!(json.contains("\"lat\":{\"bounds_us\":[50,100,"));
        assert!(json.contains("\"count\":1"));
        assert!(json.ends_with("}}"));
    }

    #[test]
    fn json_strings_escape() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
