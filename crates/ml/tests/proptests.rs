//! Property-based tests: the distributed decompositions must equal their
//! centralised counterparts on arbitrary inputs, and the matrix algebra
//! must satisfy its identities.

use proptest::prelude::*;
use scalo_ml::matrix::Matrix;
use scalo_ml::nn::{demo_network, DistributedNn};
use scalo_ml::ops::{mad, UnitConfig};
use scalo_ml::svm::{DistributedSvm, LinearSvm};

fn vecf(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0f64..10.0, len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn distributed_svm_equals_central(w in vecf(12), b in -5.0f64..5.0, x in vecf(12), nodes in 1usize..=12) {
        let svm = LinearSvm::new(w, b);
        let central = svm.decision(&x);
        let dist = DistributedSvm::split(&svm, nodes);
        let mut offset = 0;
        let partials: Vec<_> = (0..nodes)
            .map(|n| {
                let len = dist.shard_len(n);
                let p = dist.local_partial(n, &x[offset..offset + len]);
                offset += len;
                p
            })
            .collect();
        let (d, _) = dist.aggregate(&partials);
        prop_assert!((d - central).abs() < 1e-9);
    }

    #[test]
    fn distributed_nn_equals_central(seed in 1u64..5000, x in vecf(10), nodes in 1usize..=10) {
        let nn = demo_network(10, 12, 3, seed);
        let central = nn.forward(&x);
        let dist = DistributedNn::split(&nn, nodes);
        let mut offset = 0;
        let partials: Vec<_> = (0..nodes)
            .map(|n| {
                let len = dist.shard_len(n);
                let p = dist.local_partial(n, &x[offset..offset + len]);
                offset += len;
                p
            })
            .collect();
        let agg = dist.aggregate(&partials);
        for (c, d) in central.iter().zip(&agg) {
            prop_assert!((c - d).abs() < 1e-8);
        }
    }

    #[test]
    fn matrix_transpose_involution_and_mul_assoc(vals in vecf(12)) {
        let a = Matrix::from_vec(3, 4, vals.clone());
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        // (A·Aᵀ)·A == A·(Aᵀ·A)
        let at = a.transpose();
        let left = a.mul(&at).mul(&a);
        let right = a.mul(&at.mul(&a));
        prop_assert!(left.max_abs_diff(&right) < 1e-6);
    }

    #[test]
    fn inverse_of_inverse_is_identity_map(diag in proptest::collection::vec(2.0f64..10.0, 5), off in vecf(20)) {
        let n = 5;
        let mut a = Matrix::zeros(n, n);
        let mut k = 0;
        for (r, &d) in diag.iter().enumerate().take(n) {
            for c in 0..n {
                if r == c {
                    a.set(r, c, d);
                } else {
                    a.set(r, c, off[k % off.len()] * 0.05);
                    k += 1;
                }
            }
        }
        let inv = a.inverse().expect("diagonally dominant");
        let back = inv.inverse().expect("invertible inverse");
        prop_assert!(back.max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn relu_is_idempotent_and_monotone(vals in vecf(9)) {
        let m = Matrix::from_vec(3, 3, vals);
        let relu = UnitConfig::with_relu();
        let once = relu.apply(&m);
        let twice = relu.apply(&once);
        prop_assert_eq!(once.clone(), twice);
        for &v in once.as_slice() {
            prop_assert!(v >= 0.0);
        }
    }

    #[test]
    fn mad_matches_manual_computation(a_vals in vecf(6), x_vals in vecf(3), b_vals in vecf(2)) {
        let a = Matrix::from_vec(2, 3, a_vals.clone());
        let x = Matrix::column(&x_vals);
        let b = Matrix::column(&b_vals);
        let y = mad(&a, &x, Some(&b), UnitConfig::passthrough());
        for r in 0..2 {
            let expect: f64 =
                (0..3).map(|c| a_vals[r * 3 + c] * x_vals[c]).sum::<f64>() + b_vals[r];
            prop_assert!((y.get(r, 0) - expect).abs() < 1e-9);
        }
    }
}

// --- `*_into` scratch-buffer equivalence --------------------------------
//
// The movement-intent hot path drives these forms with dirty scratch
// matrices carried over from the previous decode round; they must equal
// the allocating originals bit-for-bit (exact `==` on every element),
// regardless of the output's prior shape or contents.

use scalo_ml::kalman::{KalmanFilter, KalmanModel, KalmanScratch};
use scalo_ml::nn::NnScratch;
use scalo_ml::ops::mad_into;

/// An output matrix with a deliberately wrong shape and junk contents.
fn junk() -> Matrix {
    Matrix::from_vec(2, 3, vec![f64::MAX, -1.5, 0.0, 3.25, -7.0, 42.0])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mul_into_equals_mul(a in vecf(12), b in vecf(20)) {
        let a = Matrix::from_vec(3, 4, a);
        let b = Matrix::from_vec(4, 5, b);
        let legacy = a.mul(&b);
        let mut out = junk();
        a.mul_into(&b, &mut out);
        prop_assert_eq!(out, legacy);
    }

    #[test]
    fn mad_into_equals_mad(a in vecf(12), x in vecf(4), b in vecf(3), with_bias in any::<bool>()) {
        let a = Matrix::from_vec(3, 4, a);
        let x = Matrix::from_vec(4, 1, x);
        let b = Matrix::from_vec(3, 1, b);
        let bias = if with_bias { Some(&b) } else { None };
        for cfg in [
            UnitConfig::passthrough(),
            UnitConfig::with_relu(),
            UnitConfig::with_normalization(0.5, 2.0),
        ] {
            let legacy = mad(&a, &x, bias, cfg);
            let mut out = junk();
            mad_into(&a, &x, bias, cfg, &mut out);
            prop_assert_eq!(&out, &legacy);
        }
    }

    #[test]
    fn inverse_into_equals_inverse(d in vecf(9)) {
        let mut m = Matrix::from_vec(3, 3, d);
        // Diagonal dominance keeps the matrix invertible.
        for i in 0..3 {
            let v = m.get(i, i) + 50.0;
            m.set(i, i, v);
        }
        let legacy = m.inverse().expect("diagonally dominant");
        let mut work = junk();
        let mut out = junk();
        m.inverse_into(&mut work, &mut out).expect("same matrix");
        prop_assert_eq!(out, legacy);
    }

    #[test]
    fn kalman_step_with_equals_step(zs in proptest::collection::vec(vecf(2), 1..12)) {
        let model = KalmanModel::new(
            Matrix::from_vec(2, 2, vec![1.0, 0.04, 0.0, 0.95]),
            Matrix::identity(2).scale(0.01),
            Matrix::identity(2),
            Matrix::identity(2).scale(0.1),
        );
        let mut legacy = KalmanFilter::new(model.clone());
        let mut reusing = KalmanFilter::new(model);
        let mut scratch = KalmanScratch::new();
        for z in &zs {
            let want = legacy.step(z).expect("regularised model");
            let got = reusing.step_with(z, &mut scratch).expect("same model");
            prop_assert_eq!(got, want.as_slice());
        }
        prop_assert_eq!(legacy.covariance(), reusing.covariance());
    }

    #[test]
    fn nn_forward_into_equals_forward(seed in 1u64..5000, x in vecf(10)) {
        let nn = demo_network(10, 12, 3, seed);
        let legacy = nn.forward(&x);
        let mut scratch = NnScratch::new();
        let mut out = vec![-9.0; 7];
        for _ in 0..2 {
            nn.forward_into(&x, &mut scratch, &mut out);
            prop_assert_eq!(&out, &legacy);
        }
    }
}
