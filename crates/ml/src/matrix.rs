//! Dense row-major matrices with Gauss–Jordan inversion (the INV PE).

/// A dense, row-major `f64` matrix.
///
/// # Example
///
/// ```
/// use scalo_ml::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let inv = a.inverse().unwrap();
/// let id = a.mul(&inv);
/// assert!((id.get(0, 0) - 1.0).abs() < 1e-12);
/// assert!(id.get(0, 1).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Error returned by [`Matrix::inverse`] when the matrix is singular.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrixError;

impl std::fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular (no inverse)")
    }
}

impl std::error::Error for SingularMatrixError {}

impl Matrix {
    /// An all-zero `rows × cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows are empty or ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty() && !rows[0].is_empty(), "empty matrix");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self { rows, cols, data }
    }

    /// A column vector from a slice.
    pub fn column(v: &[f64]) -> Self {
        Self::from_vec(v.len(), 1, v.to_vec())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of the flat row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Re-shapes `self` to `rows × cols`, zero-filled, reusing the
    /// existing allocation where possible.
    fn reshape(&mut self, rows: usize, cols: usize) {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Makes `self` a copy of `src` (shape and data), reusing the
    /// existing allocation where possible.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Makes `self` the `n × n` identity, reusing the allocation.
    pub fn set_identity(&mut self, n: usize) {
        self.reshape(n, n);
        for i in 0..n {
            self.data[i * n + i] = 1.0;
        }
    }

    /// Makes `self` a column vector holding `v`, reusing the allocation.
    pub fn set_column(&mut self, v: &[f64]) {
        assert!(!v.is_empty(), "matrix dimensions must be positive");
        self.rows = v.len();
        self.cols = 1;
        self.data.clear();
        self.data.extend_from_slice(v);
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols.max(1));
        self.mul_into(other, &mut out);
        out
    }

    /// [`Matrix::mul`] written into a caller-provided matrix (re-shaped
    /// first). Bit-identical to the allocating form; allocation-free once
    /// `out` has capacity. The borrow checker guarantees `out` aliases
    /// neither operand.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn mul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "inner dimensions {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.reshape(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.data[k * other.cols + j];
                }
            }
        }
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        self.add_into(other, &mut out);
        out
    }

    /// [`Matrix::add`] written into a caller-provided matrix (re-shaped
    /// first). Bit-identical to the allocating form.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape");
        out.reshape(self.rows, self.cols);
        for ((o, a), b) in out.data.iter_mut().zip(&self.data).zip(&other.data) {
            *o = a + b;
        }
    }

    /// Element-wise in-place sum `self += other`. Bit-identical to
    /// replacing `self` with [`Matrix::add`]'s result.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        self.sub_into(other, &mut out);
        out
    }

    /// [`Matrix::sub`] written into a caller-provided matrix (re-shaped
    /// first). Bit-identical to the allocating form.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape");
        out.reshape(self.rows, self.cols);
        for ((o, a), b) in out.data.iter_mut().zip(&self.data).zip(&other.data) {
            *o = a - b;
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, k: f64) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        self.scale_into(k, &mut out);
        out
    }

    /// [`Matrix::scale`] written into a caller-provided matrix (re-shaped
    /// first). Bit-identical to the allocating form.
    pub fn scale_into(&self, k: f64, out: &mut Matrix) {
        out.reshape(self.rows, self.cols);
        for (o, a) in out.data.iter_mut().zip(&self.data) {
            *o = a * k;
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// [`Matrix::transpose`] written into a caller-provided matrix
    /// (re-shaped first). Bit-identical to the allocating form.
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.reshape(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
    }

    /// Inverse by Gauss–Jordan elimination with partial pivoting — the
    /// algorithm the INV PE implements in hardware (§3.2, citing Quintana
    /// et al.).
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if a pivot underflows.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverse(&self) -> Result<Matrix, SingularMatrixError> {
        let mut work = Matrix::zeros(1, 1);
        let mut out = Matrix::zeros(1, 1);
        self.inverse_into(&mut work, &mut out)?;
        Ok(out)
    }

    /// [`Matrix::inverse`] using caller-provided scratch: `work` holds the
    /// elimination copy of `self`, `out` receives the inverse. Bit-identical
    /// to the allocating form; allocation-free once both have capacity.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] when a pivot magnitude falls below
    /// `1e-12` (`out` is left in an unspecified shape).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverse_into(
        &self,
        work: &mut Matrix,
        out: &mut Matrix,
    ) -> Result<(), SingularMatrixError> {
        assert_eq!(self.rows, self.cols, "inverse of non-square matrix");
        let n = self.rows;
        work.copy_from(self);
        out.set_identity(n);
        let (a, inv) = (work, out);

        for col in 0..n {
            // Partial pivot: largest magnitude in this column.
            let pivot_row = (col..n)
                .max_by(|&r1, &r2| a.get(r1, col).abs().total_cmp(&a.get(r2, col).abs()))
                .expect("non-empty range");
            let pivot = a.get(pivot_row, col);
            if pivot.abs() < 1e-12 {
                return Err(SingularMatrixError);
            }
            if pivot_row != col {
                for j in 0..n {
                    let (x, y) = (a.get(col, j), a.get(pivot_row, j));
                    a.set(col, j, y);
                    a.set(pivot_row, j, x);
                    let (x, y) = (inv.get(col, j), inv.get(pivot_row, j));
                    inv.set(col, j, y);
                    inv.set(pivot_row, j, x);
                }
            }
            let inv_pivot = 1.0 / a.get(col, col);
            for j in 0..n {
                a.set(col, j, a.get(col, j) * inv_pivot);
                inv.set(col, j, inv.get(col, j) * inv_pivot);
            }
            for r in 0..n {
                if r != col {
                    let factor = a.get(r, col);
                    if factor != 0.0 {
                        for j in 0..n {
                            a.set(r, j, a.get(r, j) - factor * a.get(col, j));
                            inv.set(r, j, inv.get(r, j) - factor * inv.get(col, j));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Maximum absolute element difference against `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_anything() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i = Matrix::identity(3);
        assert_eq!(a.mul(&i), a);
    }

    #[test]
    fn mul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.mul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn inverse_of_known_matrix() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = a.inverse().unwrap();
        let expected = Matrix::from_rows(&[&[0.6, -0.7], &[-0.2, 0.4]]);
        assert!(inv.max_abs_diff(&expected) < 1e-12);
    }

    #[test]
    fn inverse_roundtrips_random_like_matrix() {
        // Deterministic well-conditioned matrix.
        let n = 8;
        let mut a = Matrix::identity(n).scale(5.0);
        for r in 0..n {
            for c in 0..n {
                if r != c {
                    a.set(r, c, ((r * 3 + c * 7) % 5) as f64 * 0.3);
                }
            }
        }
        let inv = a.inverse().unwrap();
        let id = a.mul(&inv);
        assert!(id.max_abs_diff(&Matrix::identity(n)) < 1e-9);
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(a.inverse(), Err(SingularMatrixError));
    }

    #[test]
    fn add_sub_inverse_each_other() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
        let b = Matrix::from_rows(&[&[4.0, 1.0], &[-1.0, 2.0]]);
        assert!(a.add(&b).sub(&b).max_abs_diff(&a) < 1e-15);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_mul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.mul(&b);
    }
}
