//! Decoders and dense linear algebra for SCALO.
//!
//! The LIN ALG PE cluster (§3.2) provides matrix multiply-add (MAD, with
//! optional ReLU and normalisation), addition/subtraction, and Gauss–Jordan
//! inversion (INV). On top of those sit the three movement-intent decoders
//! of Figure 1b / Figure 6:
//!
//! * pipeline A — a linear SVM over FFT/filter features ([`svm`]),
//! * pipeline B — a Kalman filter over spike-band power ([`kalman`]),
//! * pipeline C — a shallow feed-forward network ([`nn`]).
//!
//! The distributed decompositions of §3.1 are first-class:
//! [`svm::DistributedSvm`] and [`nn::DistributedNn`] split work across
//! implants and expose exactly the partial outputs that cross the wireless
//! network, so the byte counts the scheduler charges (4 B/node for the SVM,
//! 1 KiB/node for the NN, 4 B per electrode feature for the KF) can be
//! asserted in tests.

pub mod kalman;
pub mod matrix;
pub mod nn;
pub mod ops;
pub mod svm;

pub use matrix::Matrix;
