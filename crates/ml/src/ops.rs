//! The configurable MAD / ADD unit semantics of the LIN ALG cluster.
//!
//! SCALO implements ReLU and normalisation "by adding configurable
//! parameters to the MAD and ADD units. When the ReLU parameter is set, the
//! units suppress negative outputs by replacing them with 0. When
//! normalization is set, the units read the mean and standard deviation as
//! parameters and normalize the output" (§3.2). This module reproduces
//! those unit semantics so NN pipelines compose exactly as on hardware.

use crate::matrix::Matrix;

/// Post-processing configuration applied at the output of a MAD/ADD unit.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UnitConfig {
    /// Replace negative outputs with zero.
    pub relu: bool,
    /// Normalise outputs as `(y - mean) / std` with the given parameters.
    pub normalize: Option<(f64, f64)>,
}

impl UnitConfig {
    /// A pass-through unit (no ReLU, no normalisation).
    pub fn passthrough() -> Self {
        Self::default()
    }

    /// A unit with ReLU enabled.
    pub fn with_relu() -> Self {
        Self {
            relu: true,
            normalize: None,
        }
    }

    /// A unit with output normalisation `(y - mean) / std`.
    ///
    /// # Panics
    ///
    /// Panics if `std` is not strictly positive.
    pub fn with_normalization(mean: f64, std: f64) -> Self {
        assert!(std > 0.0, "normalisation std must be positive");
        Self {
            relu: false,
            normalize: Some((mean, std)),
        }
    }

    fn apply_scalar(&self, y: f64) -> f64 {
        let y = match self.normalize {
            Some((mean, std)) => (y - mean) / std,
            None => y,
        };
        if self.relu {
            y.max(0.0)
        } else {
            y
        }
    }

    /// Applies the configured post-processing to every element of `m`.
    pub fn apply(&self, m: &Matrix) -> Matrix {
        let mut out = m.clone();
        self.apply_in_place(&mut out);
        out
    }

    /// Applies the configured post-processing to every element of `m` in
    /// place — what the hardware unit does to its output register file.
    /// Bit-identical to [`UnitConfig::apply`].
    pub fn apply_in_place(&self, m: &mut Matrix) {
        for y in m.as_mut_slice() {
            *y = self.apply_scalar(*y);
        }
    }
}

/// Multiply-add with constant matrix: `out = a · x + b`, post-processed by
/// `config` — the MAD unit. Pass `b = None` to configure it as MUL only.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn mad(a: &Matrix, x: &Matrix, b: Option<&Matrix>, config: UnitConfig) -> Matrix {
    let mut out = a.mul(x);
    if let Some(b) = b {
        out.add_assign(b);
    }
    config.apply_in_place(&mut out);
    out
}

/// [`mad`] written into a caller-provided matrix (re-shaped first).
/// Bit-identical to the allocating form; allocation-free once `out` has
/// capacity.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn mad_into(a: &Matrix, x: &Matrix, b: Option<&Matrix>, config: UnitConfig, out: &mut Matrix) {
    a.mul_into(x, out);
    if let Some(b) = b {
        out.add_assign(b);
    }
    config.apply_in_place(out);
}

/// Matrix addition with post-processing — the ADD unit.
pub fn add(a: &Matrix, b: &Matrix, config: UnitConfig) -> Matrix {
    config.apply(&a.add(b))
}

/// Matrix subtraction — the SUB unit (no post-processing parameters).
pub fn sub(a: &Matrix, b: &Matrix) -> Matrix {
    a.sub(b)
}

/// Register capacity of each LIN ALG PE (16 KB, §3.2), in `f64` elements
/// under the 16-bit fixed-point hardware representation this corresponds to
/// an 8192-entry matrix tile.
pub const PE_REGISTER_BYTES: usize = 16 * 1024;

/// Maximum matrix elements resident in one PE's registers (16-bit entries).
pub const PE_REGISTER_ELEMENTS: usize = PE_REGISTER_BYTES / 2;

/// Whether a `rows × cols` matrix fits in a single PE's registers; larger
/// operands must stream from the NVM (as the Kalman INV step does, §4).
pub fn fits_in_pe_registers(rows: usize, cols: usize) -> bool {
    rows * cols <= PE_REGISTER_ELEMENTS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mad_computes_ax_plus_b() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let x = Matrix::column(&[3.0, 4.0]);
        let b = Matrix::column(&[10.0]);
        let y = mad(&a, &x, Some(&b), UnitConfig::passthrough());
        assert_eq!(y.get(0, 0), 21.0);
    }

    #[test]
    fn relu_suppresses_negatives() {
        let a = Matrix::from_rows(&[&[1.0], &[-1.0]]);
        let x = Matrix::column(&[2.0]);
        let y = mad(&a, &x, None, UnitConfig::with_relu());
        assert_eq!(y.get(0, 0), 2.0);
        assert_eq!(y.get(1, 0), 0.0);
    }

    #[test]
    fn normalization_applies_before_relu() {
        let cfg = UnitConfig {
            relu: true,
            normalize: Some((4.0, 2.0)),
        };
        let m = Matrix::column(&[2.0, 8.0]);
        let y = cfg.apply(&m);
        assert_eq!(y.get(0, 0), 0.0); // (2-4)/2 = -1 → ReLU 0
        assert_eq!(y.get(1, 0), 2.0); // (8-4)/2 = 2
    }

    #[test]
    fn mad_into_matches_mad_bitwise() {
        let a = Matrix::from_rows(&[&[1.5, -2.0, 0.25], &[0.0, 3.0, -1.0]]);
        let x = Matrix::column(&[0.3, -0.7, 2.0]);
        let b = Matrix::column(&[0.1, -0.2]);
        let mut out = Matrix::zeros(1, 1);
        for cfg in [
            UnitConfig::passthrough(),
            UnitConfig::with_relu(),
            UnitConfig::with_normalization(0.5, 2.0),
        ] {
            let legacy = mad(&a, &x, Some(&b), cfg);
            mad_into(&a, &x, Some(&b), cfg, &mut out);
            assert_eq!(legacy, out);
            let legacy = mad(&a, &x, None, cfg);
            mad_into(&a, &x, None, cfg, &mut out);
            assert_eq!(legacy, out);
        }
    }

    #[test]
    fn register_capacity_boundary() {
        assert!(fits_in_pe_registers(64, 128)); // 8192 elements
        assert!(!fits_in_pe_registers(64, 129));
    }

    #[test]
    #[should_panic(expected = "std must be positive")]
    fn zero_std_panics() {
        let _ = UnitConfig::with_normalization(0.0, 0.0);
    }
}
