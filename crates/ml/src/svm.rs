//! Linear support-vector machines, centralised and hierarchically
//! decomposed across implants.
//!
//! "Decomposing linear SVMs is trivial and does not affect accuracy"
//! (§3.1): each node computes the dot product of its own feature slice with
//! its slice of the weight vector; one aggregator sums the partials, adds
//! the bias, and thresholds. The partial is a single scalar — 4 bytes on
//! the wire — which is the communication cost Figure 8c charges MI-SVM.

/// A trained linear SVM: `decision(x) = w · x + b`, class = sign.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSvm {
    weights: Vec<f64>,
    bias: f64,
}

impl LinearSvm {
    /// Creates an SVM from trained parameters.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty.
    pub fn new(weights: Vec<f64>, bias: f64) -> Self {
        assert!(!weights.is_empty(), "SVM needs at least one weight");
        Self { weights, bias }
    }

    /// Number of input features.
    pub fn num_features(&self) -> usize {
        self.weights.len()
    }

    /// The weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Raw decision value `w · x + b`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_features()`.
    pub fn decision(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "feature length mismatch");
        self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>() + self.bias
    }

    /// Binary prediction: `true` iff the decision value is positive.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.decision(x) > 0.0
    }

    /// Trains a linear SVM with the Pegasos stochastic sub-gradient method.
    /// Adequate for generating test/demo models; SCALO itself is trained
    /// offline and only runs inference on-implant.
    ///
    /// # Panics
    ///
    /// Panics if the training set is empty or ragged.
    pub fn train_pegasos(
        samples: &[(Vec<f64>, bool)],
        lambda: f64,
        epochs: usize,
        seed: u64,
    ) -> Self {
        assert!(!samples.is_empty(), "empty training set");
        let dim = samples[0].0.len();
        assert!(
            samples.iter().all(|(x, _)| x.len() == dim),
            "ragged samples"
        );
        let mut w = vec![0.0; dim];
        let mut b = 0.0;
        let mut state = seed.max(1);
        let mut t = 0usize;
        for _ in 0..epochs {
            for _ in 0..samples.len() {
                t += 1;
                // xorshift64 index selection — deterministic, dependency-free.
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let (x, label) = &samples[(state as usize) % samples.len()];
                let y = if *label { 1.0 } else { -1.0 };
                let eta = 1.0 / (lambda * t as f64);
                let margin = y * (w.iter().zip(x).map(|(w, v)| w * v).sum::<f64>() + b);
                for wi in w.iter_mut() {
                    *wi *= 1.0 - eta * lambda;
                }
                if margin < 1.0 {
                    for (wi, xi) in w.iter_mut().zip(x) {
                        *wi += eta * y * xi;
                    }
                    b += eta * y;
                }
            }
        }
        Self::new(w, b)
    }
}

/// A partial SVM output produced by one implant: the local dot-product sum.
///
/// This is the exact payload that crosses the network — 4 bytes in the
/// 16.16 fixed-point wire encoding ([`PartialDecision::WIRE_BYTES`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartialDecision {
    /// Index of the node that produced this partial.
    pub node: usize,
    /// The local partial sum `w_local · x_local`.
    pub value: f64,
}

impl PartialDecision {
    /// Wire size of one partial classifier output (§6.2: "MI SVM transmits
    /// only 4 B per node").
    pub const WIRE_BYTES: usize = 4;
}

/// A linear SVM split across `n` implants by partitioning the feature
/// vector (features are per-electrode, electrodes are per-implant).
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedSvm {
    shards: Vec<Vec<f64>>, // weight slices per node
    bias: f64,
}

impl DistributedSvm {
    /// Splits `svm` into `nodes` contiguous feature shards (as even as
    /// possible; earlier shards get the remainder).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or exceeds the feature count.
    pub fn split(svm: &LinearSvm, nodes: usize) -> Self {
        assert!(nodes >= 1, "need at least one node");
        assert!(
            nodes <= svm.num_features(),
            "more nodes ({nodes}) than features ({})",
            svm.num_features()
        );
        let dim = svm.num_features();
        let base = dim / nodes;
        let extra = dim % nodes;
        let mut shards = Vec::with_capacity(nodes);
        let mut offset = 0;
        for i in 0..nodes {
            let len = base + usize::from(i < extra);
            shards.push(svm.weights()[offset..offset + len].to_vec());
            offset += len;
        }
        Self {
            shards,
            bias: svm.bias(),
        }
    }

    /// Number of nodes the model is split across.
    pub fn num_nodes(&self) -> usize {
        self.shards.len()
    }

    /// Feature count owned by `node`.
    pub fn shard_len(&self, node: usize) -> usize {
        self.shards[node].len()
    }

    /// The local computation at `node`: the partial dot product over its
    /// feature slice. This runs on the node's SVM PE.
    ///
    /// # Panics
    ///
    /// Panics if the slice length does not match the shard.
    pub fn local_partial(&self, node: usize, x_local: &[f64]) -> PartialDecision {
        let shard = &self.shards[node];
        assert_eq!(x_local.len(), shard.len(), "shard length mismatch");
        PartialDecision {
            node,
            value: shard.iter().zip(x_local).map(|(w, v)| w * v).sum(),
        }
    }

    /// The aggregation step (runs on a single designated node): sums the
    /// partials, adds the bias, thresholds.
    pub fn aggregate(&self, partials: &[PartialDecision]) -> (f64, bool) {
        let d: f64 = partials.iter().map(|p| p.value).sum::<f64>() + self.bias;
        (d, d > 0.0)
    }

    /// Total bytes the distributed evaluation puts on the network
    /// (one partial per non-aggregator node).
    pub fn network_bytes(&self) -> usize {
        (self.num_nodes().saturating_sub(1)) * PartialDecision::WIRE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_svm() -> LinearSvm {
        LinearSvm::new(vec![1.0, -2.0, 0.5, 3.0, -1.0, 0.25], -0.5)
    }

    #[test]
    fn decision_matches_hand_computation() {
        let svm = LinearSvm::new(vec![2.0, -1.0], 0.5);
        assert_eq!(svm.decision(&[3.0, 4.0]), 2.5);
        assert!(svm.predict(&[3.0, 4.0]));
        assert!(!svm.predict(&[0.0, 4.0]));
    }

    #[test]
    fn distributed_equals_centralised_exactly() {
        let svm = toy_svm();
        let x = [0.3, -1.2, 2.0, 0.7, -0.4, 1.5];
        let central = svm.decision(&x);
        for nodes in 1..=6 {
            let dist = DistributedSvm::split(&svm, nodes);
            let mut offset = 0;
            let partials: Vec<_> = (0..nodes)
                .map(|n| {
                    let len = dist.shard_len(n);
                    let p = dist.local_partial(n, &x[offset..offset + len]);
                    offset += len;
                    p
                })
                .collect();
            let (d, _) = dist.aggregate(&partials);
            assert!(
                (d - central).abs() < 1e-12,
                "nodes={nodes}: {d} vs {central}"
            );
        }
    }

    #[test]
    fn shards_cover_all_features() {
        let svm = toy_svm();
        let dist = DistributedSvm::split(&svm, 4);
        let total: usize = (0..4).map(|n| dist.shard_len(n)).sum();
        assert_eq!(total, svm.num_features());
    }

    #[test]
    fn network_bytes_is_four_per_remote_node() {
        let svm = toy_svm();
        let dist = DistributedSvm::split(&svm, 3);
        assert_eq!(dist.network_bytes(), 8);
    }

    #[test]
    fn pegasos_separates_linearly_separable_data() {
        // Class by sign of first coordinate.
        let samples: Vec<(Vec<f64>, bool)> = (0..200)
            .map(|i| {
                let x0 = if i % 2 == 0 { 1.0 } else { -1.0 };
                let x1 = ((i * 7) % 11) as f64 / 11.0;
                (vec![x0 + 0.1 * x1, x1], i % 2 == 0)
            })
            .collect();
        let svm = LinearSvm::train_pegasos(&samples, 0.01, 20, 42);
        let correct = samples.iter().filter(|(x, y)| svm.predict(x) == *y).count();
        assert!(correct >= 190, "only {correct}/200 correct");
    }

    #[test]
    #[should_panic(expected = "more nodes")]
    fn too_many_nodes_panics() {
        let svm = LinearSvm::new(vec![1.0, 2.0], 0.0);
        let _ = DistributedSvm::split(&svm, 3);
    }
}
