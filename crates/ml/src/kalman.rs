//! Kalman-filter movement decoding (movement-intent pipeline B, Figure 6b).
//!
//! The formulation follows Wu et al. (NeurIPS 2002), the paper's citation
//! \[162\]: kinematics `x` (e.g. position + velocity) evolve as
//! `x_t = A·x_{t-1} + w`, and neural features `z` (spike-band power per
//! electrode) observe them as `z_t = H·x_t + q`. The measurement update
//! inverts `(H·P⁻·Hᵀ + Q)` — an *observation-dimension* matrix, which for
//! hundreds of electrodes is why SCALO centralises the filter on one
//! implant and streams the inversion through the NVM (§3.1, §4).

use crate::matrix::{Matrix, SingularMatrixError};

/// Model matrices for a neural-decoding Kalman filter.
#[derive(Debug, Clone, PartialEq)]
pub struct KalmanModel {
    /// State transition (state × state).
    pub a: Matrix,
    /// Process noise covariance (state × state).
    pub w: Matrix,
    /// Observation matrix (obs × state).
    pub h: Matrix,
    /// Observation noise covariance (obs × obs).
    pub q: Matrix,
}

impl KalmanModel {
    /// Validates dimensions and constructs the model.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent dimensions.
    pub fn new(a: Matrix, w: Matrix, h: Matrix, q: Matrix) -> Self {
        let n = a.rows();
        assert_eq!(a.cols(), n, "A must be square");
        assert_eq!((w.rows(), w.cols()), (n, n), "W must be state × state");
        assert_eq!(h.cols(), n, "H must be obs × state");
        let m = h.rows();
        assert_eq!((q.rows(), q.cols()), (m, m), "Q must be obs × obs");
        Self { a, w, h, q }
    }

    /// State dimension.
    pub fn state_dim(&self) -> usize {
        self.a.rows()
    }

    /// Observation dimension (number of electrode features).
    pub fn obs_dim(&self) -> usize {
        self.h.rows()
    }
}

/// Reusable intermediates for [`KalmanFilter::step_with`]: one matrix per
/// temporary the textbook update produces, so a warm filter steps without
/// touching the heap. Shapes adapt on first use; one scratch may be shared
/// across filters of different dimensions (each step re-shapes in place).
#[derive(Debug, Clone)]
pub struct KalmanScratch {
    x_pred: Matrix,
    at: Matrix,
    ap: Matrix,
    apat: Matrix,
    p_pred: Matrix,
    ht: Matrix,
    hp: Matrix,
    hpht: Matrix,
    s: Matrix,
    s_work: Matrix,
    s_inv: Matrix,
    pht: Matrix,
    k: Matrix,
    z: Matrix,
    hx: Matrix,
    innovation: Matrix,
    k_innov: Matrix,
    kh: Matrix,
    eye: Matrix,
    i_kh: Matrix,
}

impl KalmanScratch {
    /// An empty scratch; buffers grow to the model's shapes on first step.
    pub fn new() -> Self {
        let z = || Matrix::zeros(1, 1);
        Self {
            x_pred: z(),
            at: z(),
            ap: z(),
            apat: z(),
            p_pred: z(),
            ht: z(),
            hp: z(),
            hpht: z(),
            s: z(),
            s_work: z(),
            s_inv: z(),
            pht: z(),
            k: z(),
            z: z(),
            hx: z(),
            innovation: z(),
            k_innov: z(),
            kh: z(),
            eye: z(),
            i_kh: z(),
        }
    }
}

impl Default for KalmanScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// A running Kalman filter: model plus `(x, P)` state.
#[derive(Debug, Clone, PartialEq)]
pub struct KalmanFilter {
    model: KalmanModel,
    x: Matrix,
    p: Matrix,
}

impl KalmanFilter {
    /// Starts a filter at state zero with identity covariance.
    pub fn new(model: KalmanModel) -> Self {
        let n = model.state_dim();
        Self {
            model,
            x: Matrix::zeros(n, 1),
            p: Matrix::identity(n),
        }
    }

    /// Current state estimate.
    pub fn state(&self) -> Vec<f64> {
        self.x.as_slice().to_vec()
    }

    /// Current estimate covariance.
    pub fn covariance(&self) -> &Matrix {
        &self.p
    }

    /// The model this filter runs.
    pub fn model(&self) -> &KalmanModel {
        &self.model
    }

    /// Resets to state zero / identity covariance.
    pub fn reset(&mut self) {
        let n = self.model.state_dim();
        self.x = Matrix::zeros(n, 1);
        self.p = Matrix::identity(n);
    }

    /// One predict + update step on observation `z`, returning the new
    /// state estimate.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if the innovation covariance is
    /// singular (degenerate `Q`).
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != obs_dim()`.
    pub fn step(&mut self, z: &[f64]) -> Result<Vec<f64>, SingularMatrixError> {
        let mut scratch = KalmanScratch::new();
        self.step_with(z, &mut scratch)?;
        Ok(self.state())
    }

    /// [`KalmanFilter::step`] using caller-provided scratch, returning a
    /// borrow of the new state estimate. Performs the same floating-point
    /// operations in the same order as the allocating form, so trajectories
    /// are bit-identical; allocation-free once the scratch is warm. Hot
    /// loops hoist one [`KalmanScratch`] and call this per observation.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if the innovation covariance is
    /// singular (degenerate `Q`). The filter state is unchanged on error.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != obs_dim()`.
    pub fn step_with<'a>(
        &'a mut self,
        z: &[f64],
        s: &mut KalmanScratch,
    ) -> Result<&'a [f64], SingularMatrixError> {
        assert_eq!(z.len(), self.model.obs_dim(), "observation length");
        let KalmanModel { a, w, h, q } = &self.model;

        // Predict: x⁻ = A·x, P⁻ = A·P·Aᵀ + W.
        a.mul_into(&self.x, &mut s.x_pred);
        a.mul_into(&self.p, &mut s.ap);
        a.transpose_into(&mut s.at);
        s.ap.mul_into(&s.at, &mut s.apat);
        s.apat.add_into(w, &mut s.p_pred);

        // Innovation covariance S = H P⁻ Hᵀ + Q — the big inversion.
        h.mul_into(&s.p_pred, &mut s.hp);
        h.transpose_into(&mut s.ht);
        s.hp.mul_into(&s.ht, &mut s.hpht);
        s.hpht.add_into(q, &mut s.s);
        s.s.inverse_into(&mut s.s_work, &mut s.s_inv)?;

        // Gain, update.
        s.p_pred.mul_into(&s.ht, &mut s.pht);
        s.pht.mul_into(&s.s_inv, &mut s.k);
        s.z.set_column(z);
        h.mul_into(&s.x_pred, &mut s.hx);
        s.z.sub_into(&s.hx, &mut s.innovation);
        s.k.mul_into(&s.innovation, &mut s.k_innov);
        s.x_pred.add_into(&s.k_innov, &mut self.x);
        let n = self.model.state_dim();
        s.k.mul_into(h, &mut s.kh);
        s.eye.set_identity(n);
        s.eye.sub_into(&s.kh, &mut s.i_kh);
        s.i_kh.mul_into(&s.p_pred, &mut self.p);
        Ok(self.x.as_slice())
    }

    /// Size in bytes of the matrix the update step must invert — the
    /// operand the paper says "is too big to fit in the PE memory" for
    /// realistic electrode counts (§4), charged against NVM bandwidth by
    /// the scheduler.
    pub fn inversion_bytes(&self) -> usize {
        let m = self.model.obs_dim();
        m * m * 2 // 16-bit fixed-point entries
    }
}

/// Fits `A, W, H, Q` from paired kinematics/features trajectories by least
/// squares (the standard Wu et al. training recipe). Adequate for tests and
/// examples; clinical SCALO deployments train offline.
///
/// `states[t]` and `observations[t]` are aligned in time.
///
/// # Errors
///
/// Returns [`SingularMatrixError`] if a regression Gram matrix is singular
/// even after ridge regularisation (degenerate or non-finite trajectories).
///
/// # Panics
///
/// Panics if fewer than 3 time steps, or lengths/dimensions disagree.
pub fn fit_kalman(
    states: &[Vec<f64>],
    observations: &[Vec<f64>],
) -> Result<KalmanModel, SingularMatrixError> {
    assert!(states.len() >= 3, "need at least 3 time steps");
    assert_eq!(states.len(), observations.len(), "length mismatch");
    let n = states[0].len();
    let m = observations[0].len();
    let t = states.len();

    // Stack X1 = states[0..t-1], X2 = states[1..t] as n × (t-1).
    let x1 = stack_cols(&states[..t - 1], n);
    let x2 = stack_cols(&states[1..], n);
    let x_all = stack_cols(states, n);
    let z_all = stack_cols(observations, m);

    // A = X2 X1ᵀ (X1 X1ᵀ)⁻¹ ; H = Z Xᵀ (X Xᵀ)⁻¹ (ridge-regularised).
    let a = regress(&x2, &x1)?;
    let h = regress(&z_all, &x_all)?;

    // Residual covariances.
    let resid_a = x2.sub(&a.mul(&x1));
    let w = resid_a
        .mul(&resid_a.transpose())
        .scale(1.0 / (t - 1) as f64);
    let resid_h = z_all.sub(&h.mul(&x_all));
    let mut q = resid_h.mul(&resid_h.transpose()).scale(1.0 / t as f64);
    // Regularise Q so the innovation covariance stays invertible.
    for i in 0..m {
        q.set(i, i, q.get(i, i) + 1e-6);
    }
    Ok(KalmanModel::new(a, w, h, q))
}

fn stack_cols(rows: &[Vec<f64>], dim: usize) -> Matrix {
    let mut m = Matrix::zeros(dim, rows.len());
    for (c, v) in rows.iter().enumerate() {
        assert_eq!(v.len(), dim, "dimension mismatch at step {c}");
        for (r, &val) in v.iter().enumerate() {
            m.set(r, c, val);
        }
    }
    m
}

/// Ridge regression `Y Xᵀ (X Xᵀ + εI)⁻¹`.
///
/// # Errors
///
/// Returns [`SingularMatrixError`] if the regularised Gram matrix is still
/// singular — possible only for non-finite inputs, since the ridge term
/// bounds pivots away from zero for finite data.
fn regress(y: &Matrix, x: &Matrix) -> Result<Matrix, SingularMatrixError> {
    let xt = x.transpose();
    let mut gram = x.mul(&xt);
    for i in 0..gram.rows() {
        gram.set(i, i, gram.get(i, i) + 1e-9);
    }
    let inv = gram.inverse()?;
    Ok(y.mul(&xt).mul(&inv))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny 1-D constant-velocity world observed through 3 noiseless
    /// linear sensors.
    fn toy_model() -> KalmanModel {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]); // pos += vel
        let w = Matrix::identity(2).scale(1e-4);
        let h = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let q = Matrix::identity(3).scale(1e-2);
        KalmanModel::new(a, w, h, q)
    }

    #[test]
    fn filter_tracks_constant_velocity() {
        let mut kf = KalmanFilter::new(toy_model());
        // True trajectory: pos = t, vel = 1.
        for t in 1..=30 {
            let pos = t as f64;
            let z = [pos, 1.0, pos + 1.0];
            kf.step(&z).unwrap();
        }
        let s = kf.state();
        assert!((s[0] - 30.0).abs() < 0.5, "pos {s:?}");
        assert!((s[1] - 1.0).abs() < 0.2, "vel {s:?}");
    }

    #[test]
    fn covariance_shrinks_with_observations() {
        let mut kf = KalmanFilter::new(toy_model());
        let p0 = kf.covariance().get(0, 0);
        for t in 1..=10 {
            kf.step(&[t as f64, 1.0, t as f64 + 1.0]).unwrap();
        }
        assert!(kf.covariance().get(0, 0) < p0);
    }

    #[test]
    fn inversion_operand_scales_with_electrodes() {
        let m = 384; // 4 nodes × 96 electrodes
        let model = KalmanModel::new(
            Matrix::identity(4),
            Matrix::identity(4),
            Matrix::zeros(m, 4),
            Matrix::identity(m),
        );
        let kf = KalmanFilter::new(model);
        assert_eq!(kf.inversion_bytes(), 384 * 384 * 2);
        // Too big for one PE's 16 KB registers — must stream from NVM.
        assert!(!crate::ops::fits_in_pe_registers(m, m));
    }

    #[test]
    fn fit_recovers_dynamics_from_clean_data() {
        // Generate a clean constant-velocity trajectory with 4 sensors.
        let h_true = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0], &[1.0, 1.0], &[0.5, -1.0]]);
        let mut states = Vec::new();
        let mut obs = Vec::new();
        let mut x = vec![0.0, 0.5];
        for _ in 0..100 {
            states.push(x.clone());
            let xm = Matrix::column(&x);
            obs.push(h_true.mul(&xm).as_slice().to_vec());
            x[0] += x[1];
            x[1] *= 0.99;
        }
        let model = fit_kalman(&states, &obs).unwrap();
        // The fitted filter should track the same trajectory.
        let mut kf = KalmanFilter::new(model);
        let mut last = Vec::new();
        for z in &obs {
            last = kf.step(z).unwrap();
        }
        let true_last = states.last().unwrap();
        assert!(
            (last[0] - true_last[0]).abs() < 1.0,
            "tracked {last:?} vs true {true_last:?}"
        );
    }

    #[test]
    fn step_with_matches_step_bitwise() {
        let mut legacy = KalmanFilter::new(toy_model());
        let mut scratched = KalmanFilter::new(toy_model());
        let mut scratch = KalmanScratch::new();
        for t in 1..=25 {
            let pos = t as f64;
            let z = [pos, 1.0, pos + 1.0];
            let a = legacy.step(&z).unwrap();
            let b = scratched.step_with(&z, &mut scratch).unwrap().to_vec();
            assert_eq!(a, b, "divergence at step {t}");
        }
        assert_eq!(legacy.covariance(), scratched.covariance());
    }

    #[test]
    fn fit_kalman_rejects_degenerate_trajectories() {
        // A constant trajectory at a magnitude where the 1e-9 ridge term is
        // absorbed by rounding leaves the Gram matrix exactly rank-1.
        let states = vec![vec![1e30, 1e30]; 8];
        let obs = vec![vec![0.0; 3]; 8];
        assert!(fit_kalman(&states, &obs).is_err());
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut kf = KalmanFilter::new(toy_model());
        kf.step(&[5.0, 1.0, 6.0]).unwrap();
        kf.reset();
        assert_eq!(kf.state(), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "observation length")]
    fn wrong_observation_length_panics() {
        let mut kf = KalmanFilter::new(toy_model());
        let _ = kf.step(&[1.0]);
    }
}
