//! Kalman-filter movement decoding (movement-intent pipeline B, Figure 6b).
//!
//! The formulation follows Wu et al. (NeurIPS 2002), the paper's citation
//! \[162\]: kinematics `x` (e.g. position + velocity) evolve as
//! `x_t = A·x_{t-1} + w`, and neural features `z` (spike-band power per
//! electrode) observe them as `z_t = H·x_t + q`. The measurement update
//! inverts `(H·P⁻·Hᵀ + Q)` — an *observation-dimension* matrix, which for
//! hundreds of electrodes is why SCALO centralises the filter on one
//! implant and streams the inversion through the NVM (§3.1, §4).

use crate::matrix::{Matrix, SingularMatrixError};

/// Model matrices for a neural-decoding Kalman filter.
#[derive(Debug, Clone, PartialEq)]
pub struct KalmanModel {
    /// State transition (state × state).
    pub a: Matrix,
    /// Process noise covariance (state × state).
    pub w: Matrix,
    /// Observation matrix (obs × state).
    pub h: Matrix,
    /// Observation noise covariance (obs × obs).
    pub q: Matrix,
}

impl KalmanModel {
    /// Validates dimensions and constructs the model.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent dimensions.
    pub fn new(a: Matrix, w: Matrix, h: Matrix, q: Matrix) -> Self {
        let n = a.rows();
        assert_eq!(a.cols(), n, "A must be square");
        assert_eq!((w.rows(), w.cols()), (n, n), "W must be state × state");
        assert_eq!(h.cols(), n, "H must be obs × state");
        let m = h.rows();
        assert_eq!((q.rows(), q.cols()), (m, m), "Q must be obs × obs");
        Self { a, w, h, q }
    }

    /// State dimension.
    pub fn state_dim(&self) -> usize {
        self.a.rows()
    }

    /// Observation dimension (number of electrode features).
    pub fn obs_dim(&self) -> usize {
        self.h.rows()
    }
}

/// A running Kalman filter: model plus `(x, P)` state.
#[derive(Debug, Clone, PartialEq)]
pub struct KalmanFilter {
    model: KalmanModel,
    x: Matrix,
    p: Matrix,
}

impl KalmanFilter {
    /// Starts a filter at state zero with identity covariance.
    pub fn new(model: KalmanModel) -> Self {
        let n = model.state_dim();
        Self {
            model,
            x: Matrix::zeros(n, 1),
            p: Matrix::identity(n),
        }
    }

    /// Current state estimate.
    pub fn state(&self) -> Vec<f64> {
        self.x.as_slice().to_vec()
    }

    /// Current estimate covariance.
    pub fn covariance(&self) -> &Matrix {
        &self.p
    }

    /// The model this filter runs.
    pub fn model(&self) -> &KalmanModel {
        &self.model
    }

    /// Resets to state zero / identity covariance.
    pub fn reset(&mut self) {
        let n = self.model.state_dim();
        self.x = Matrix::zeros(n, 1);
        self.p = Matrix::identity(n);
    }

    /// One predict + update step on observation `z`, returning the new
    /// state estimate.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if the innovation covariance is
    /// singular (degenerate `Q`).
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != obs_dim()`.
    pub fn step(&mut self, z: &[f64]) -> Result<Vec<f64>, SingularMatrixError> {
        assert_eq!(z.len(), self.model.obs_dim(), "observation length");
        let KalmanModel { a, w, h, q } = &self.model;

        // Predict.
        let x_pred = a.mul(&self.x);
        let p_pred = a.mul(&self.p).mul(&a.transpose()).add(w);

        // Innovation covariance S = H P⁻ Hᵀ + Q — the big inversion.
        let s = h.mul(&p_pred).mul(&h.transpose()).add(q);
        let s_inv = s.inverse()?;

        // Gain, update.
        let k = p_pred.mul(&h.transpose()).mul(&s_inv);
        let innovation = Matrix::column(z).sub(&h.mul(&x_pred));
        self.x = x_pred.add(&k.mul(&innovation));
        let n = self.model.state_dim();
        self.p = Matrix::identity(n).sub(&k.mul(h)).mul(&p_pred);
        Ok(self.state())
    }

    /// Size in bytes of the matrix the update step must invert — the
    /// operand the paper says "is too big to fit in the PE memory" for
    /// realistic electrode counts (§4), charged against NVM bandwidth by
    /// the scheduler.
    pub fn inversion_bytes(&self) -> usize {
        let m = self.model.obs_dim();
        m * m * 2 // 16-bit fixed-point entries
    }
}

/// Fits `A, W, H, Q` from paired kinematics/features trajectories by least
/// squares (the standard Wu et al. training recipe). Adequate for tests and
/// examples; clinical SCALO deployments train offline.
///
/// `states[t]` and `observations[t]` are aligned in time.
///
/// # Panics
///
/// Panics if fewer than 3 time steps, or lengths/dimensions disagree.
pub fn fit_kalman(states: &[Vec<f64>], observations: &[Vec<f64>]) -> KalmanModel {
    assert!(states.len() >= 3, "need at least 3 time steps");
    assert_eq!(states.len(), observations.len(), "length mismatch");
    let n = states[0].len();
    let m = observations[0].len();
    let t = states.len();

    // Stack X1 = states[0..t-1], X2 = states[1..t] as n × (t-1).
    let x1 = stack_cols(&states[..t - 1], n);
    let x2 = stack_cols(&states[1..], n);
    let x_all = stack_cols(states, n);
    let z_all = stack_cols(observations, m);

    // A = X2 X1ᵀ (X1 X1ᵀ)⁻¹ ; H = Z Xᵀ (X Xᵀ)⁻¹ (ridge-regularised).
    let a = regress(&x2, &x1);
    let h = regress(&z_all, &x_all);

    // Residual covariances.
    let resid_a = x2.sub(&a.mul(&x1));
    let w = resid_a
        .mul(&resid_a.transpose())
        .scale(1.0 / (t - 1) as f64);
    let resid_h = z_all.sub(&h.mul(&x_all));
    let mut q = resid_h.mul(&resid_h.transpose()).scale(1.0 / t as f64);
    // Regularise Q so the innovation covariance stays invertible.
    for i in 0..m {
        q.set(i, i, q.get(i, i) + 1e-6);
    }
    KalmanModel::new(a, w, h, q)
}

fn stack_cols(rows: &[Vec<f64>], dim: usize) -> Matrix {
    let mut m = Matrix::zeros(dim, rows.len());
    for (c, v) in rows.iter().enumerate() {
        assert_eq!(v.len(), dim, "dimension mismatch at step {c}");
        for (r, &val) in v.iter().enumerate() {
            m.set(r, c, val);
        }
    }
    m
}

/// Ridge regression `Y Xᵀ (X Xᵀ + εI)⁻¹`.
fn regress(y: &Matrix, x: &Matrix) -> Matrix {
    let xt = x.transpose();
    let mut gram = x.mul(&xt);
    for i in 0..gram.rows() {
        gram.set(i, i, gram.get(i, i) + 1e-9);
    }
    let inv = gram
        .inverse()
        .expect("regularised Gram matrix is invertible");
    y.mul(&xt).mul(&inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny 1-D constant-velocity world observed through 3 noiseless
    /// linear sensors.
    fn toy_model() -> KalmanModel {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]); // pos += vel
        let w = Matrix::identity(2).scale(1e-4);
        let h = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let q = Matrix::identity(3).scale(1e-2);
        KalmanModel::new(a, w, h, q)
    }

    #[test]
    fn filter_tracks_constant_velocity() {
        let mut kf = KalmanFilter::new(toy_model());
        // True trajectory: pos = t, vel = 1.
        for t in 1..=30 {
            let pos = t as f64;
            let z = [pos, 1.0, pos + 1.0];
            kf.step(&z).unwrap();
        }
        let s = kf.state();
        assert!((s[0] - 30.0).abs() < 0.5, "pos {s:?}");
        assert!((s[1] - 1.0).abs() < 0.2, "vel {s:?}");
    }

    #[test]
    fn covariance_shrinks_with_observations() {
        let mut kf = KalmanFilter::new(toy_model());
        let p0 = kf.covariance().get(0, 0);
        for t in 1..=10 {
            kf.step(&[t as f64, 1.0, t as f64 + 1.0]).unwrap();
        }
        assert!(kf.covariance().get(0, 0) < p0);
    }

    #[test]
    fn inversion_operand_scales_with_electrodes() {
        let m = 384; // 4 nodes × 96 electrodes
        let model = KalmanModel::new(
            Matrix::identity(4),
            Matrix::identity(4),
            Matrix::zeros(m, 4),
            Matrix::identity(m),
        );
        let kf = KalmanFilter::new(model);
        assert_eq!(kf.inversion_bytes(), 384 * 384 * 2);
        // Too big for one PE's 16 KB registers — must stream from NVM.
        assert!(!crate::ops::fits_in_pe_registers(m, m));
    }

    #[test]
    fn fit_recovers_dynamics_from_clean_data() {
        // Generate a clean constant-velocity trajectory with 4 sensors.
        let h_true = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0], &[1.0, 1.0], &[0.5, -1.0]]);
        let mut states = Vec::new();
        let mut obs = Vec::new();
        let mut x = vec![0.0, 0.5];
        for _ in 0..100 {
            states.push(x.clone());
            let xm = Matrix::column(&x);
            obs.push(h_true.mul(&xm).as_slice().to_vec());
            x[0] += x[1];
            x[1] *= 0.99;
        }
        let model = fit_kalman(&states, &obs);
        // The fitted filter should track the same trajectory.
        let mut kf = KalmanFilter::new(model);
        let mut last = Vec::new();
        for z in &obs {
            last = kf.step(z).unwrap();
        }
        let true_last = states.last().unwrap();
        assert!(
            (last[0] - true_last[0]).abs() < 1.0,
            "tracked {last:?} vs true {true_last:?}"
        );
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut kf = KalmanFilter::new(toy_model());
        kf.step(&[5.0, 1.0, 6.0]).unwrap();
        kf.reset();
        assert_eq!(kf.state(), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "observation length")]
    fn wrong_observation_length_panics() {
        let mut kf = KalmanFilter::new(toy_model());
        let _ = kf.step(&[1.0]);
    }
}
