//! Shallow feed-forward networks, centralised and row-decomposed across
//! implants (movement-intent pipeline C, Figure 6c).
//!
//! "NNs are similarly decomposed by distributing the rows of the weight
//! matrices" (§3.1). Each implant owns the *columns* of the first-layer
//! weight matrix corresponding to its local electrodes (equivalently, the
//! rows of `W₁ᵀ`), computes a partial hidden pre-activation, and ships that
//! vector (the ~1 KiB/node payload Figure 8c charges MI-NN) to an
//! aggregator, which sums the partials, applies bias + ReLU, and evaluates
//! the output layer.

use crate::matrix::Matrix;
use crate::ops::{mad, mad_into, UnitConfig};

/// Reusable intermediates for [`ShallowNn::forward_into`]: the input
/// column, hidden activation, and output column. Shapes adapt on first
/// use, so one scratch serves networks of different dimensions.
#[derive(Debug, Clone)]
pub struct NnScratch {
    x: Matrix,
    h: Matrix,
    y: Matrix,
}

impl NnScratch {
    /// An empty scratch; buffers grow to the network's shapes on first use.
    pub fn new() -> Self {
        Self {
            x: Matrix::zeros(1, 1),
            h: Matrix::zeros(1, 1),
            y: Matrix::zeros(1, 1),
        }
    }
}

impl Default for NnScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// A two-layer (input → hidden ReLU → output) feed-forward network.
#[derive(Debug, Clone, PartialEq)]
pub struct ShallowNn {
    w1: Matrix, // hidden × input
    b1: Matrix, // hidden × 1
    w2: Matrix, // output × hidden
    b2: Matrix, // output × 1
}

impl ShallowNn {
    /// Creates a network from trained parameters.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent dimensions.
    pub fn new(w1: Matrix, b1: Matrix, w2: Matrix, b2: Matrix) -> Self {
        assert_eq!(b1.rows(), w1.rows(), "b1/w1 dimension mismatch");
        assert_eq!(w2.cols(), w1.rows(), "w2/w1 dimension mismatch");
        assert_eq!(b2.rows(), w2.rows(), "b2/w2 dimension mismatch");
        assert_eq!(b1.cols(), 1, "b1 must be a column vector");
        assert_eq!(b2.cols(), 1, "b2 must be a column vector");
        Self { w1, b1, w2, b2 }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.w1.cols()
    }

    /// Hidden dimension.
    pub fn hidden_dim(&self) -> usize {
        self.w1.rows()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.w2.rows()
    }

    /// Full forward pass (as a single implant would run it on the LIN ALG
    /// cluster: MAD+ReLU, then MAD).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != input_dim()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut scratch = NnScratch::new();
        let mut out = Vec::new();
        self.forward_into(x, &mut scratch, &mut out);
        out
    }

    /// [`ShallowNn::forward`] using caller-provided scratch, writing the
    /// output vector into `out` (cleared first). Bit-identical to the
    /// allocating form; allocation-free once the scratch is warm.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != input_dim()`.
    pub fn forward_into(&self, x: &[f64], scratch: &mut NnScratch, out: &mut Vec<f64>) {
        assert_eq!(x.len(), self.input_dim(), "input length mismatch");
        scratch.x.set_column(x);
        mad_into(
            &self.w1,
            &scratch.x,
            Some(&self.b1),
            UnitConfig::with_relu(),
            &mut scratch.h,
        );
        mad_into(
            &self.w2,
            &scratch.h,
            Some(&self.b2),
            UnitConfig::passthrough(),
            &mut scratch.y,
        );
        out.clear();
        out.extend_from_slice(scratch.y.as_slice());
    }

    /// Index of the maximum output (class decision). Infallible: matrix
    /// dimensions are strictly positive, so the output is never empty.
    pub fn classify(&self, x: &[f64]) -> usize {
        let y = self.forward(x);
        y.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("output_dim() >= 1 by Matrix invariant")
    }
}

/// A partial hidden pre-activation computed by one implant.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialHidden {
    /// Node that produced the partial.
    pub node: usize,
    /// Partial pre-activation vector (`hidden_dim` entries).
    pub values: Vec<f64>,
}

impl PartialHidden {
    /// Wire bytes for this partial under the 16-bit fixed-point encoding.
    pub fn wire_bytes(&self) -> usize {
        self.values.len() * 2
    }
}

/// A [`ShallowNn`] split column-wise over implants.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedNn {
    /// Per-node first-layer blocks (hidden × local_inputs).
    blocks: Vec<Matrix>,
    b1: Matrix,
    w2: Matrix,
    b2: Matrix,
}

impl DistributedNn {
    /// Splits `nn`'s input features into `nodes` contiguous shards.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or exceeds the input dimension.
    pub fn split(nn: &ShallowNn, nodes: usize) -> Self {
        assert!(nodes >= 1, "need at least one node");
        assert!(
            nodes <= nn.input_dim(),
            "more nodes ({nodes}) than inputs ({})",
            nn.input_dim()
        );
        let dim = nn.input_dim();
        let hidden = nn.hidden_dim();
        let base = dim / nodes;
        let extra = dim % nodes;
        let mut blocks = Vec::with_capacity(nodes);
        let mut offset = 0;
        for i in 0..nodes {
            let len = base + usize::from(i < extra);
            let mut block = Matrix::zeros(hidden, len);
            for r in 0..hidden {
                for c in 0..len {
                    block.set(r, c, nn.w1.get(r, offset + c));
                }
            }
            blocks.push(block);
            offset += len;
        }
        Self {
            blocks,
            b1: nn.b1.clone(),
            w2: nn.w2.clone(),
            b2: nn.b2.clone(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.blocks.len()
    }

    /// Input features owned by `node`.
    pub fn shard_len(&self, node: usize) -> usize {
        self.blocks[node].cols()
    }

    /// Hidden width of the network.
    pub fn hidden_dim(&self) -> usize {
        self.b1.rows()
    }

    /// Local computation at `node`: partial hidden pre-activation
    /// `W₁[:, local] · x_local` (no bias, no ReLU — those happen once, at
    /// the aggregator).
    ///
    /// # Panics
    ///
    /// Panics if the slice length does not match the shard.
    pub fn local_partial(&self, node: usize, x_local: &[f64]) -> PartialHidden {
        let block = &self.blocks[node];
        assert_eq!(x_local.len(), block.cols(), "shard length mismatch");
        let v = block.mul(&Matrix::column(x_local));
        PartialHidden {
            node,
            values: v.as_slice().to_vec(),
        }
    }

    /// Aggregation at the designated node: sum partials, bias + ReLU,
    /// output layer.
    ///
    /// # Panics
    ///
    /// Panics if `partials` is empty or lengths disagree.
    pub fn aggregate(&self, partials: &[PartialHidden]) -> Vec<f64> {
        assert!(!partials.is_empty(), "no partials to aggregate");
        let hidden = self.hidden_dim();
        let mut pre = vec![0.0; hidden];
        for p in partials {
            assert_eq!(p.values.len(), hidden, "partial length mismatch");
            for (acc, v) in pre.iter_mut().zip(&p.values) {
                *acc += v;
            }
        }
        let pre = Matrix::column(&pre).add(&self.b1);
        let h = UnitConfig::with_relu().apply(&pre);
        let y = mad(&self.w2, &h, Some(&self.b2), UnitConfig::passthrough());
        y.as_slice().to_vec()
    }

    /// Total bytes on the network for one distributed inference: one
    /// hidden-width partial from every non-aggregator node.
    pub fn network_bytes(&self) -> usize {
        (self.num_nodes().saturating_sub(1)) * self.hidden_dim() * 2
    }
}

/// Builds a deterministic demo network (useful for examples and tests):
/// weights derived from a seed via xorshift, scaled small.
pub fn demo_network(input: usize, hidden: usize, output: usize, seed: u64) -> ShallowNn {
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state % 2000) as f64 / 1000.0) - 1.0
    };
    let w1 = Matrix::from_vec(
        hidden,
        input,
        (0..hidden * input).map(|_| next() * 0.3).collect(),
    );
    let b1 = Matrix::from_vec(hidden, 1, (0..hidden).map(|_| next() * 0.1).collect());
    let w2 = Matrix::from_vec(
        output,
        hidden,
        (0..output * hidden).map(|_| next() * 0.3).collect(),
    );
    let b2 = Matrix::from_vec(output, 1, (0..output).map(|_| next() * 0.1).collect());
    ShallowNn::new(w1, b1, w2, b2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_runs_and_classifies() {
        let nn = demo_network(12, 8, 3, 7);
        let x: Vec<f64> = (0..12).map(|i| (i as f64 * 0.3).sin()).collect();
        let y = nn.forward(&x);
        assert_eq!(y.len(), 3);
        assert!(nn.classify(&x) < 3);
    }

    #[test]
    fn distributed_equals_centralised() {
        let nn = demo_network(10, 16, 4, 99);
        let x: Vec<f64> = (0..10).map(|i| (i as f64 * 0.7).cos()).collect();
        let central = nn.forward(&x);
        for nodes in [1, 2, 3, 5, 10] {
            let dist = DistributedNn::split(&nn, nodes);
            let mut offset = 0;
            let partials: Vec<_> = (0..nodes)
                .map(|n| {
                    let len = dist.shard_len(n);
                    let p = dist.local_partial(n, &x[offset..offset + len]);
                    offset += len;
                    p
                })
                .collect();
            let agg = dist.aggregate(&partials);
            for (c, d) in central.iter().zip(&agg) {
                assert!((c - d).abs() < 1e-9, "nodes={nodes}");
            }
        }
    }

    #[test]
    fn network_bytes_scale_with_hidden_width() {
        // The paper charges MI-NN 1024 B per node: a 512-wide hidden layer
        // at 2 B per entry.
        let nn = demo_network(1024, 512, 8, 3);
        let dist = DistributedNn::split(&nn, 4);
        assert_eq!(dist.network_bytes(), 3 * 1024);
        let p = dist.local_partial(0, &vec![0.0; dist.shard_len(0)]);
        assert_eq!(p.wire_bytes(), 1024);
    }

    #[test]
    fn relu_happens_only_at_aggregator() {
        // A partial must be allowed to go negative; ReLU too early would
        // break equality with the centralised network.
        let w1 = Matrix::from_rows(&[&[-1.0, -1.0]]);
        let b1 = Matrix::column(&[0.5]);
        let w2 = Matrix::from_rows(&[&[1.0]]);
        let b2 = Matrix::column(&[0.0]);
        let nn = ShallowNn::new(w1, b1, w2, b2);
        let dist = DistributedNn::split(&nn, 2);
        let p0 = dist.local_partial(0, &[1.0]);
        assert!(p0.values[0] < 0.0, "partial should be negative pre-ReLU");
        let p1 = dist.local_partial(1, &[-2.0]);
        let y = dist.aggregate(&[p0, p1]);
        assert_eq!(y, nn.forward(&[1.0, -2.0]));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn inconsistent_layers_panic() {
        let _ = ShallowNn::new(
            Matrix::zeros(4, 3),
            Matrix::zeros(4, 1),
            Matrix::zeros(2, 5), // wrong hidden
            Matrix::zeros(2, 1),
        );
    }
}
