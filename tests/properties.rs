//! Property-based tests over the core data structures and invariants,
//! spanning crates through the `scalo` facade.

use proptest::prelude::*;
use scalo::ilp::{Model, Sense};
use scalo::lsh::SignalHash;
use scalo::ml::Matrix;
use scalo::net::compress::{dcomp_decompress, hcomp_compress, BitReader, BitWriter};
use scalo::net::crc::{crc32, verify};
use scalo::net::packet::{receive, Header, Packet, PayloadKind, Received};
use scalo::signal::dtw::{dtw_distance, DtwParams};
use scalo::signal::emd::emd_1d;
use scalo::signal::stats::{euclidean, z_normalize};
use scalo::storage::partition::{Partition, PartitionKind, Record};

fn signal(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0f64..10.0, len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- DTW ----

    #[test]
    fn dtw_is_symmetric(a in signal(40), b in signal(40)) {
        let d1 = dtw_distance(&a, &b, DtwParams::with_band(6));
        let d2 = dtw_distance(&b, &a, DtwParams::with_band(6));
        prop_assert!((d1 - d2).abs() < 1e-9, "{d1} vs {d2}");
    }

    #[test]
    fn dtw_identity_is_zero(a in signal(50)) {
        prop_assert_eq!(dtw_distance(&a, &a, DtwParams::default()), 0.0);
    }

    #[test]
    fn dtw_band_is_monotone(a in signal(30), b in signal(30)) {
        let mut last = f64::INFINITY;
        for band in [1usize, 3, 9, 30] {
            let d = dtw_distance(&a, &b, DtwParams::with_band(band));
            prop_assert!(d <= last + 1e-9, "band {band}: {d} > {last}");
            last = d;
        }
    }

    #[test]
    fn dtw_never_exceeds_euclidean(a in signal(32), b in signal(32)) {
        let d = dtw_distance(&a, &b, DtwParams::with_band(8));
        prop_assert!(d <= euclidean(&a, &b) + 1e-9);
    }

    // ---- EMD ----

    #[test]
    fn emd_metric_properties(
        a in proptest::collection::vec(0.01f64..5.0, 16..=16),
        b in proptest::collection::vec(0.01f64..5.0, 16..=16),
        c in proptest::collection::vec(0.01f64..5.0, 16..=16),
    ) {
        let ab = emd_1d(&a, &b);
        let ba = emd_1d(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9, "symmetry");
        prop_assert!(emd_1d(&a, &a) < 1e-9, "identity");
        prop_assert!(ab <= emd_1d(&a, &c) + emd_1d(&c, &b) + 1e-9, "triangle");
    }

    // ---- z-normalisation ----

    #[test]
    fn z_normalize_is_scale_invariant(a in signal(24), k in 0.1f64..50.0) {
        let scaled: Vec<f64> = a.iter().map(|&x| k * x + 3.0).collect();
        let za = z_normalize(&a);
        let zs = z_normalize(&scaled);
        for (x, y) in za.iter().zip(&zs) {
            prop_assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    // ---- CRC / packets ----

    #[test]
    fn crc_detects_any_single_bit_flip(data in proptest::collection::vec(any::<u8>(), 1..128), byte_idx in 0usize..128, bit in 0u8..8) {
        let crc = crc32(&data);
        let mut corrupted = data.clone();
        let idx = byte_idx % corrupted.len();
        corrupted[idx] ^= 1 << bit;
        prop_assert!(!verify(&corrupted, crc));
    }

    #[test]
    fn packet_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..256), src in any::<u8>(), seq in any::<u16>()) {
        let p = Packet::new(
            Header { src, dst: 0xFF, flow: 2, seq, len: 0, kind: PayloadKind::Signal, timestamp_us: 77 },
            payload.clone(),
        );
        match receive(&p.to_wire()) {
            Received::Clean(q) => {
                prop_assert_eq!(q.payload, payload);
                prop_assert_eq!(q.header.src, src);
                prop_assert_eq!(q.header.seq, seq);
            }
            other => prop_assert!(false, "{other:?}"),
        }
    }

    // ---- Compression ----

    #[test]
    fn hcomp_preserves_multiset(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let c = hcomp_compress(&data);
        let mut got = dcomp_decompress(&c).expect("well-formed stream");
        let mut want = data.clone();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn elias_gamma_roundtrip(values in proptest::collection::vec(1u32..1_000_000, 1..64)) {
        let mut w = BitWriter::new();
        for &v in &values {
            w.push_gamma(v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            prop_assert_eq!(r.read_gamma(), Some(v));
        }
    }

    // ---- Hashes ----

    #[test]
    fn hamming_is_a_metric(a in proptest::collection::vec(any::<u8>(), 2..4)) {
        let ha = SignalHash(a.clone());
        prop_assert_eq!(ha.hamming(&ha), 0);
        for n in ha.neighbors(1) {
            prop_assert!(ha.hamming(&n) <= 1);
            prop_assert_eq!(n.hamming(&ha), ha.hamming(&n));
        }
    }

    // ---- Matrix ----

    #[test]
    fn inverse_roundtrips_diag_dominant(vals in proptest::collection::vec(-1.0f64..1.0, 16..=16)) {
        let n = 4;
        let mut m = Matrix::identity(n).scale(5.0);
        for r in 0..n {
            for c in 0..n {
                if r != c {
                    m.set(r, c, vals[r * n + c]);
                }
            }
        }
        let inv = m.inverse().expect("diagonally dominant");
        let id = m.mul(&inv);
        prop_assert!(id.max_abs_diff(&Matrix::identity(n)) < 1e-8);
    }

    // ---- LP solver ----

    #[test]
    fn lp_solution_is_feasible_and_binding(c1 in 0.5f64..5.0, c2 in 0.5f64..5.0, b1 in 1.0f64..50.0, b2 in 1.0f64..50.0) {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, None, false);
        let y = m.add_var("y", 0.0, None, false);
        m.add_constraint(m.expr(&[(x, c1), (y, 1.0)]), Sense::Le, b1);
        m.add_constraint(m.expr(&[(x, 1.0), (y, c2)]), Sense::Le, b2);
        m.maximize(m.expr(&[(x, 1.0), (y, 1.0)]));
        let sol = m.solve().expect("bounded feasible LP");
        let (xv, yv) = (sol.value(x), sol.value(y));
        prop_assert!(xv >= -1e-9 && yv >= -1e-9);
        prop_assert!(c1 * xv + yv <= b1 + 1e-6);
        prop_assert!(xv + c2 * yv <= b2 + 1e-6);
        // Optimality: at least one constraint binds.
        let binds = (c1 * xv + yv > b1 - 1e-6) || (xv + c2 * yv > b2 - 1e-6);
        prop_assert!(binds, "x={xv} y={yv}");
    }

    // ---- Storage partitions ----

    #[test]
    fn partition_never_exceeds_capacity(sizes in proptest::collection::vec(1usize..64, 1..40)) {
        let mut p = Partition::new(PartitionKind::Signals, 256);
        for (i, &sz) in sizes.iter().enumerate() {
            p.append(Record { timestamp_us: i as u64, key: 0, data: vec![0; sz] });
            prop_assert!(p.used_bytes() <= 256);
        }
        // Records remain time-ordered (oldest-first eviction).
        let all = p.range(0, u64::MAX);
        for pair in all.windows(2) {
            prop_assert!(pair[0].timestamp_us <= pair[1].timestamp_us);
        }
    }
}
