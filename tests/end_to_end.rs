//! Cross-crate integration tests: whole-stack scenarios through the
//! `scalo` facade.

use scalo::core::apps::seizure::SeizureApp;
use scalo::core::arch::{architecture_throughput, Architecture, Fig8Task};
use scalo::core::runtime::McRuntime;
use scalo::core::{Scalo, ScaloConfig};
use scalo::data::ieeg::{generate, IeegConfig, SeizureEvent};
use scalo::sched::Scenario;

#[test]
fn three_node_seizure_propagation_end_to_end() {
    let nodes = 3;
    let recording = |seed| {
        generate(&IeegConfig {
            nodes,
            electrodes_per_node: 4,
            duration_s: 0.9,
            seizures: vec![SeizureEvent::uniform(0.25, 0.55, 0, nodes, 0.02)],
            seed,
            ..Default::default()
        })
    };
    let mut app = SeizureApp::new(
        ScaloConfig::default()
            .with_nodes(nodes)
            .with_electrodes(4)
            .with_seed(314),
    );
    app.train_detectors(&recording(1));
    let run = app.run(&recording(2));
    assert!(run.origin_detect_window.is_some());
    assert!(
        !run.confirmations.is_empty(),
        "at least one remote site confirms: {run:?}"
    );
    for c in &run.confirmations {
        assert!(c.delay_ms <= 120.0, "confirmation {c:?} unreasonably late");
    }
}

#[test]
fn query_language_to_fabric_deployment() {
    // Listing 1 (movement decoding) and Listing 2 (interactive query)
    // both compile, schedule and deploy onto one fabric.
    let mut rt = McRuntime::new();
    let l1 = rt
        .deploy(
            "var movements = stream.window(wsize=50ms).sbp().kf(kf_params).call_runtime()",
            &Scenario::new(4, 15.0),
            50.0,
            4.0,
        )
        .unwrap();
    assert!(l1.schedule.electrodes >= 96, "{:?}", l1.schedule);
    let l2 = rt
        .deploy(
            "var seizure_data = stream.Map( s => s.select(s => s.data), s.locID)\
             .window(wsize=4ms).select(w => w.time >= -5000)\
             .select(w => w.seizure_detect(), w[-100ms:100ms])",
            &Scenario::new(4, 15.0),
            300.0,
            0.0,
        )
        .unwrap();
    assert!(l2.schedule.electrodes > 0);
    // Both pipelines coexist on one fabric (different PEs).
    assert_eq!(rt.fabric().pipelines().len(), 2);
}

#[test]
fn figure8a_invariants_hold_across_node_counts() {
    for nodes in [4usize, 11, 16] {
        for task in Fig8Task::ALL {
            let scalo = architecture_throughput(Architecture::Scalo, task, nodes, 15.0);
            for arch in [
                Architecture::ScaloNoHash,
                Architecture::Central,
                Architecture::CentralNoHash,
                Architecture::HaloNvm,
            ] {
                let other = architecture_throughput(arch, task, nodes, 15.0);
                assert!(
                    scalo >= other * 0.99,
                    "{task} @ {nodes} nodes: SCALO {scalo} vs {arch} {other}"
                );
            }
        }
    }
}

#[test]
fn system_survives_harsh_network() {
    // A harsh BER does not wedge the system; hash packets drop, the run
    // completes.
    let mut app = SeizureApp::new(
        ScaloConfig::default()
            .with_nodes(2)
            .with_electrodes(4)
            .with_ber(5e-4)
            .with_seed(99),
    );
    let rec = generate(&IeegConfig {
        nodes: 2,
        electrodes_per_node: 4,
        duration_s: 0.6,
        seizures: vec![SeizureEvent::uniform(0.2, 0.35, 0, 2, 0.0)],
        seed: 5,
        ..Default::default()
    });
    app.train_detectors(&rec);
    let run = app.run(&rec);
    assert!(app.system().stats().transmissions > 0);
    // The run itself must complete regardless of confirmation outcome.
    let _ = run.max_delay_ms();
}

#[test]
fn sntp_then_exchange() {
    // Clock sync converges, then the system still broadcasts normally.
    let mut offsets = vec![120_000i64, -75_000, 3_000];
    let report = scalo::core::sntp::synchronize(&mut offsets, &scalo::net::radio::LOW_POWER);
    assert!(report.converged);
    let mut sys = Scalo::new(ScaloConfig::default().with_nodes(4).with_ber(0.0));
    let pkt = scalo::net::packet::Packet::new(
        scalo::net::packet::Header {
            src: 0,
            dst: scalo::net::packet::BROADCAST,
            flow: 0,
            seq: 0,
            len: 0,
            kind: scalo::net::packet::PayloadKind::Control,
            timestamp_us: 0,
        },
        vec![1, 2, 3],
    );
    assert_eq!(sys.broadcast(0, &pkt).len(), 3);
}

#[test]
fn facade_reexports_compose() {
    // The facade exposes every layer; a cross-layer one-liner compiles
    // and behaves.
    let window: Vec<f64> = (0..120).map(|i| (i as f64 * 0.2).sin()).collect();
    let hasher = scalo::lsh::SshHasher::new(scalo::lsh::HashConfig::for_measure(
        scalo::lsh::Measure::Dtw,
    ));
    let hash = hasher.hash(&window);
    let compressed = scalo::net::compress::hcomp_compress(hash.as_ref());
    let restored = scalo::net::compress::dcomp_decompress(&compressed).unwrap();
    let mut a = hash.as_ref().to_vec();
    let mut b = restored;
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
}
