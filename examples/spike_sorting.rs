//! Online spike sorting with hash-filtered template matching on three
//! synthetic datasets shaped like the paper's (SpikeForest / MEArec /
//! Kilosort).
//!
//! Run with: `cargo run --example spike_sorting`

use scalo::core::apps::spike_sort::{modeled_sort_rate_per_node, sort_dataset};
use scalo::data::spikes::{generate, SpikeConfig};

fn main() {
    println!(
        "{:<18} {:>7} {:>9} {:>12} {:>12} {:>10}",
        "dataset", "neurons", "spikes", "hash acc", "exact acc", "cmp ↓"
    );
    for (name, cfg) in [
        ("SpikeForest-like", SpikeConfig::spikeforest_like()),
        ("MEArec-like", SpikeConfig::mearec_like()),
        ("Kilosort-like", SpikeConfig::kilosort_like()),
    ] {
        let ds = generate(&cfg);
        let r = sort_dataset(&ds);
        println!(
            "{name:<18} {:>7} {:>9} {:>11.1}% {:>11.1}% {:>9.1}×",
            cfg.neurons,
            r.labelled,
            r.hash_accuracy() * 100.0,
            r.exact_accuracy() * 100.0,
            r.comparison_reduction(),
        );
    }
    println!(
        "\nModelled on-implant sorting rate: {:.0} spikes/s/node",
        modeled_sort_rate_per_node()
    );
    println!("(The paper reports 12,250 spikes/s/node, within 5% of exact matching accuracy;");
    println!(" leading off-device exact sorters reach ~15,000 spikes/s on CPUs/GPUs.)");
}
