//! Quickstart: build a SCALO system, look at its hardware, schedule an
//! application, and hash a signal.
//!
//! Run with: `cargo run --example quickstart`

use scalo::core::{Scalo, ScaloConfig};
use scalo::hw::fabric::NodeFabric;
use scalo::hw::pe::{catalog, spec, PeKind};
use scalo::lsh::{HashConfig, Measure, SshHasher};
use scalo::sched::{max_aggregate_throughput_mbps, Scenario, TaskKind};

fn main() {
    // 1. A SCALO deployment: the paper's headline 11 implants at 15 mW.
    let system = Scalo::new(ScaloConfig::default());
    println!(
        "SCALO system: {} implants, {} electrodes each, {} mW per implant",
        system.node_count(),
        system.config().electrodes_per_node,
        system.config().power_limit_mw
    );

    // 2. The per-implant hardware: 31 PEs in their own clock domains.
    let fabric = NodeFabric::new();
    println!(
        "\nPer-implant fabric: {} PE kinds, {:.0} KGE, {:.2} mW leakage floor",
        catalog().len(),
        fabric.total_area_kge(),
        fabric.leakage_floor_uw() / 1_000.0
    );
    for pe in [PeKind::Dtw, PeKind::Fft, PeKind::Hconv, PeKind::Ccheck] {
        let s = spec(pe);
        println!(
            "  {:8} {:>7.3} MHz  {:>8.2} µW dynamic @96 elec",
            s.name,
            s.max_freq_mhz,
            s.dyn_per_electrode_uw * 96.0
        );
    }

    // 3. Hash a neural window the way the HCONV/NGRAM PEs do.
    let hasher = SshHasher::new(HashConfig::for_measure(Measure::Dtw));
    let window: Vec<f64> = (0..120).map(|i| (i as f64 * 0.21).sin()).collect();
    let shifted: Vec<f64> = (0..120).map(|i| ((i + 2) as f64 * 0.21).sin()).collect();
    let h = hasher.hash(&window);
    println!(
        "\nDTW hash of a 4 ms window: {:02x?} ({} byte on the wire)",
        h.as_ref(),
        h.wire_bytes()
    );
    println!(
        "2-sample-shifted copy collides: {}",
        hasher.collide(&window, &shifted)
    );

    // 4. What the scheduler says this deployment sustains.
    println!("\nMax aggregate throughput at 11 nodes / 15 mW:");
    for task in [
        TaskKind::SeizureDetection,
        TaskKind::HashAllAll,
        TaskKind::DtwAllAll,
        TaskKind::MiSvm,
        TaskKind::MiKf,
        TaskKind::SpikeSorting,
    ] {
        let thr = max_aggregate_throughput_mbps(task, &Scenario::headline());
        println!("  {:18} {:>9.1} Mbps", task.name(), thr);
    }
}
