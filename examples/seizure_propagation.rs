//! End-to-end seizure propagation: synthetic multi-site iEEG, per-node
//! detection, hash broadcast, collision check, DTW confirmation.
//!
//! Run with: `cargo run --example seizure_propagation`

use scalo::core::apps::seizure::SeizureApp;
use scalo::core::ScaloConfig;
use scalo::data::ieeg::{generate, IeegConfig, SeizureEvent};

fn main() {
    let nodes = 3;
    let electrodes = 4;

    // A seizure starting at node 0 at t = 0.25 s, reaching the other
    // sites with 20 ms propagation lag per hop.
    let recording = |seed| {
        generate(&IeegConfig {
            nodes,
            electrodes_per_node: electrodes,
            duration_s: 1.0,
            seizures: vec![SeizureEvent::uniform(0.25, 0.6, 0, nodes, 0.02)],
            seed,
            ..Default::default()
        })
    };

    let config = ScaloConfig::default()
        .with_nodes(nodes)
        .with_electrodes(electrodes)
        .with_seed(2026);
    let mut app = SeizureApp::new(config);

    println!("Training per-node seizure detectors on a calibration recording…");
    app.train_detectors(&recording(1));

    println!("Streaming a test recording through the distributed protocol…\n");
    let run = app.run(&recording(2));

    match run.origin_detect_window {
        Some(w) => println!(
            "Origin detected the seizure at window {w} (t = {} ms)",
            w * 4
        ),
        None => {
            println!("No seizure detected — nothing to propagate.");
            return;
        }
    }
    if run.confirmations.is_empty() {
        println!("No propagation confirmed at other sites.");
    }
    for c in &run.confirmations {
        println!(
            "Node {} confirmed seizure propagation {} ms after origin detection → stimulate",
            c.node, c.delay_ms
        );
    }
    println!(
        "\nNetwork: {} transmissions, {} corrupted, {} dropped (BER {})",
        app.system().stats().transmissions,
        app.system().stats().corrupted,
        app.system().stats().dropped,
        app.system().config().ber
    );
    if let Some(d) = run.max_delay_ms() {
        println!("Worst confirmation delay: {d} ms (paper target: 10 ms from a matched detection)");
    }
}
