//! Human-in-the-loop querying: compile a TrillDSP-style query, deploy it
//! through the MC runtime, and run the three §6.4 queries against stored
//! data.
//!
//! Run with: `cargo run --example interactive_query`

use scalo::core::apps::queries::{q1_seizure_signals, q2_template_match, q3_all_data};
use scalo::core::runtime::McRuntime;
use scalo::core::{Scalo, ScaloConfig};
use scalo::lsh::eval::MeasureHasher;
use scalo::ml::svm::LinearSvm;
use scalo::sched::Scenario;

fn main() {
    // 1. The programming interface: Listing 2 of the paper.
    let source = "var seizure_data = stream.Map( s => s.select(s => s.data), s.locID)\
                  .window(wsize=4ms).select(w => w.time >= -5000)\
                  .select(w => w.seizure_detect(), w[-100ms:100ms])";
    let mut runtime = McRuntime::new();
    let app = runtime
        .deploy(source, &Scenario::new(4, 15.0), 300.0, 0.0)
        .expect("query compiles and schedules");
    println!(
        "Compiled Listing 2 → {} operators, scheduled {} electrodes at {:.2} mW, latency {:.2} ms",
        app.dag.operators.len(),
        app.schedule.electrodes,
        app.schedule.power_mw,
        app.schedule.latency_ms
    );

    // 2. Load a small system with quiet and ictal windows.
    let mut sys = Scalo::new(ScaloConfig::default().with_nodes(4).with_electrodes(4));
    for id in 0..4 {
        let feats = scalo::core::node::Node::detection_features(&vec![0.1; 120]);
        let mut w = vec![0.0; feats.len()];
        w[feats.len() - 1] = 1.0;
        sys.node_mut(id).install_detector(LinearSvm::new(w, -0.5));
    }
    for t in 0..25u64 {
        for node in 0..4 {
            for e in 0..4 {
                let amp = if (10..18).contains(&t) { 2.0 } else { 0.05 };
                let w: Vec<f64> = (0..120)
                    .map(|i| amp * (i as f64 * 0.2 + e as f64).sin())
                    .collect();
                sys.node_mut(node).ingest_window(e, t * 4_000, &w);
            }
        }
    }

    // 3. The three queries.
    let q1 = q1_seizure_signals(&sys, 0, 100_000);
    println!(
        "\nQ1 (seizure windows):   {:>4} matches, {:>7} B, {:>6.2} QPS, {:>5.2} mW",
        q1.matches.len(),
        q1.bytes,
        q1.cost.qps,
        q1.cost.power_mw
    );

    let template: Vec<f64> = (0..120).map(|i| 2.0 * (i as f64 * 0.2).sin()).collect();
    let template_hash = match sys.node(0).hasher() {
        MeasureHasher::Ssh(h) => h.hash(&template),
        MeasureHasher::Emd(h) => h.hash(&template),
    };
    let q2 = q2_template_match(&sys, &template_hash, 0, 100_000);
    println!(
        "Q2 (template by hash):  {:>4} matches, {:>7} B, {:>6.2} QPS, {:>5.2} mW",
        q2.matches.len(),
        q2.bytes,
        q2.cost.qps,
        q2.cost.power_mw
    );

    let q3 = q3_all_data(&sys, 0, 100_000);
    println!(
        "Q3 (everything):        {:>4} matches, {:>7} B, {:>6.2} QPS, {:>5.2} mW",
        q3.matches.len(),
        q3.bytes,
        q3.cost.qps,
        q3.cost.power_mw
    );

    println!("\n(§6.4: 9 QPS over 7 MB at 5% match; Q3 is external-radio-bound at ~0.8 QPS.)");
}
