//! Movement-intent decoding with the three pipelines of Figure 6:
//! decomposed SVM (A), centralised Kalman filter (B), decomposed NN (C).
//!
//! Run with: `cargo run --example movement_intent`

use scalo::core::apps::movement::{
    generate_session, kalman_velocity_error, nn_decomposition_error, svm_accuracy,
};
use scalo::sched::movement::intents_per_second;
use scalo::sched::{Scenario, TaskKind};

fn main() {
    let nodes = 4;
    let session = generate_session(240, 32, 7);
    println!(
        "Synthetic centre-out session: {} windows of 50 ms, {} electrodes over {} implants\n",
        session.features.len(),
        session.electrodes,
        nodes
    );

    // Pipeline A: hierarchically decomposed one-vs-rest SVMs.
    let acc = svm_accuracy(&session, nodes);
    println!(
        "Pipeline A (decomposed SVM): direction accuracy {:.1}% (chance 25%)",
        acc * 100.0
    );

    // Pipeline B: the centralised Kalman filter.
    match kalman_velocity_error(&session) {
        Ok(err) => println!("Pipeline B (centralised KF): mean |velocity error| {err:.3}"),
        Err(e) => println!("Pipeline B (centralised KF): fit failed ({e})"),
    }

    // Pipeline C: the decomposed shallow NN is *exactly* the centralised
    // network.
    let diff = nn_decomposition_error(&session, nodes);
    println!("Pipeline C (decomposed NN): max centralised-vs-distributed difference {diff:.2e}");

    // What the scheduler says about intent rates (Figure 9b).
    println!("\nMax intents per second at 15 mW:");
    println!("{:>7} {:>10} {:>10} {:>10}", "nodes", "SVM", "NN", "KF");
    for k in [1usize, 2, 4, 8, 16] {
        let s = Scenario::new(k, 15.0);
        println!(
            "{k:>7} {:>10.1} {:>10.1} {:>10.1}",
            intents_per_second(TaskKind::MiSvm, &s),
            intents_per_second(TaskKind::MiNn, &s),
            intents_per_second(TaskKind::MiKf, &s),
        );
    }
    println!("\n(Conventional fixed-window decoders cap at 20 intents/s; the KF keeps that");
    println!("cadence but scales to ~384 electrodes before its NVM-streamed inversion binds.)");
}
