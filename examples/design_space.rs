//! Design-space exploration: radio choice (§7), power limits (§5),
//! implant placement/thermal spacing (§5), and the charging duty cycle
//! (§3.6).
//!
//! Run with: `cargo run --example design_space`

use scalo::core::stim::ChargingSchedule;
use scalo::hw::placement::{aggregate_coupling, derated_power_mw, max_implants};
use scalo::net::radio::TABLE3;
use scalo::sched::{max_aggregate_throughput_mbps, Scenario, TaskKind};

fn main() {
    // 1. Radio trade-offs at a communication-bound deployment.
    println!("Radios at 16 nodes / 15 mW (Figure 13's sweep):");
    println!(
        "{:>14} {:>7} {:>14} {:>14}",
        "radio", "mW", "Hash All-All", "DTW One-All"
    );
    for radio in &TABLE3 {
        let s = Scenario::new(16, 15.0).with_radio(*radio);
        println!(
            "{:>14} {:>7.2} {:>12.1} M {:>12.1} M",
            radio.name,
            radio.power_mw,
            max_aggregate_throughput_mbps(TaskKind::HashAllAll, &s),
            max_aggregate_throughput_mbps(TaskKind::DtwOneAll, &s),
        );
    }

    // 2. How much compute each power point buys (per-node seizure det.).
    println!("\nPer-node seizure detection vs power limit:");
    for p in Scenario::power_sweep() {
        let t = max_aggregate_throughput_mbps(TaskKind::SeizureDetection, &Scenario::new(1, p));
        println!("  {p:>4} mW → {t:>6.1} Mbps");
    }

    // 3. Placement: spacing vs capacity vs thermal coupling.
    println!("\nImplant placement on the 86 mm hemisphere:");
    println!(
        "{:>12} {:>10} {:>16} {:>16}",
        "spacing mm", "max nodes", "coupling @60", "derated mW"
    );
    for spacing in [10.0, 15.0, 20.0, 30.0] {
        println!(
            "{spacing:>12} {:>10} {:>15.3}% {:>16.2}",
            max_implants(spacing),
            aggregate_coupling(60, spacing) * 100.0,
            derated_power_mw(15.0, 60, spacing),
        );
    }
    println!("(§5: 60 implants at 20 mm spacing run at full 15 mW — negligible coupling.)");

    // 4. The charging duty cycle.
    let c = ChargingSchedule::paper_reference();
    println!(
        "\nCharging (§3.6): {}h on / {}h charge → {:.1}% availability; a 15 mW implant\nneeds {:.0} J per cycle ≈ {:.0} mW of wireless transfer while charging.",
        c.operate_h,
        c.charge_h,
        c.availability() * 100.0,
        c.energy_per_cycle_j(15.0),
        c.charge_power_mw(15.0),
    );
}
