//! # SCALO — a distributed, accelerator-rich brain-computer interface
//!
//! This is the facade crate for an open-source reproduction of
//! *"SCALO: An Accelerator-Rich Distributed System for Scalable
//! Brain-Computer Interfacing"* (ISCA 2023). It re-exports every layer of the
//! stack under one roof so that examples and downstream users can write
//! `use scalo::core::Scalo` instead of juggling eleven crates.
//!
//! The layers, bottom-up:
//!
//! * [`signal`] — DSP kernels (FFT, Butterworth filters, DTW, EMD, XCOR, …).
//! * [`lsh`] — locality-sensitive hashing for fast signal similarity.
//! * [`ml`] — SVM / shallow NN / Kalman-filter decoders and dense linear algebra.
//! * [`hw`] — the per-implant processing-element (PE) fabric model.
//! * [`net`] — intra-BCI wireless network: packets, CRC, compression, TDMA, radios.
//! * [`storage`] — per-implant NVM model and storage controller.
//! * [`ilp`] — an exact LP/MILP solver (simplex + branch & bound).
//! * [`data`] — synthetic electrophysiology (iEEG and spike-train) generators.
//! * [`query`] — the Trill-like query language and dataflow-DAG lowering.
//! * [`sched`] — the ILP-based system scheduler and throughput models.
//! * [`core`] — the distributed system itself: nodes, applications, simulation.
//! * [`trace`] — per-window span tracing and deadline-miss attribution.
//! * [`fleet`] — the multi-patient serving layer (worker pool, admission
//!   control, metrics).
//!
//! # Quickstart
//!
//! ```
//! use scalo::core::{Scalo, ScaloConfig};
//!
//! let system = Scalo::new(ScaloConfig::default().with_nodes(4));
//! assert_eq!(system.node_count(), 4);
//! ```

pub use scalo_core as core;
pub use scalo_data as data;
pub use scalo_fleet as fleet;
pub use scalo_hw as hw;
pub use scalo_ilp as ilp;
pub use scalo_lsh as lsh;
pub use scalo_ml as ml;
pub use scalo_net as net;
pub use scalo_query as query;
pub use scalo_sched as sched;
pub use scalo_signal as signal;
pub use scalo_storage as storage;
pub use scalo_trace as trace;
